"""Layer 2: custom ``ast``-based lint for project concurrency/purity invariants.

The serving layer introduced invariants that plain review keeps missing:
shared mutable state must be touched under its lock, time must flow
through the injectable ``clock``, errors must not be silently swallowed,
and request handlers must not block on file I/O.  These checkers encode
them mechanically.

Diagnostic codes
----------------
======  ========================  ==========================================
L001    unlocked-shared-mutation  ``self.x`` mutated outside ``with self._lock``
L002    direct-clock-call         ``time.time()`` etc. in a clock-injected module
L003    swallowed-exception       broad ``except`` that neither uses nor re-raises
L004    blocking-io-in-handler    file I/O inside a request-handler method
======  ========================  ==========================================

Conventions honoured by L001 (so correct existing code stays clean):

* ``__init__``/``__post_init__`` run before the object is shared and are
  exempt;
* a method whose name ends in ``_locked`` documents that its *caller*
  holds the lock and is exempt;
* only mutations of direct ``self`` attributes (``self.x = ...``,
  ``self.x += ...``, ``self.x[k] = ...``, ``del self.x[k]``) are
  considered — the checker never guesses about aliased objects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    Location,
    Severity,
)

#: ``module.attr`` call targets that bypass an injectable clock.
CLOCK_CALLS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: Call names that perform blocking file I/O.
BLOCKING_IO_NAMES = {"open"}
BLOCKING_IO_ATTRS = {
    "read_text", "write_text", "read_bytes", "write_bytes", "unlink",
}
BLOCKING_IO_QUALIFIED = {
    ("json", "dump"), ("json", "load"),
    ("os", "replace"), ("os", "rename"), ("os", "remove"),
}


@dataclass(frozen=True)
class LintConfig:
    """Tunable scope of the lint pass."""

    #: Methods treated as request handlers wherever L004 applies, in
    #: addition to ``do_*`` methods of ``*HTTPRequestHandler`` classes.
    handler_methods: tuple[str, ...] = (
        "handle", "chat", "feedback", "health", "_turn", "_dispatch",
        "forward",
    )
    #: Path substrings whose modules are in L004's blast radius (the
    #: request path); ``*HTTPRequestHandler`` subclasses are always in.
    #: ``persistence`` is in scope because the router's forward path
    #: (``persistence/router.py``) serves requests too.
    handler_modules: tuple[str, ...] = ("serving", "persistence")


@dataclass
class ModuleUnderLint:
    """One parsed module plus the context the checkers need."""

    path: str
    source: str
    tree: ast.Module
    config: LintConfig = field(default_factory=LintConfig)

    @classmethod
    def parse(
        cls, source: str, path: str, config: LintConfig | None = None
    ) -> "ModuleUnderLint":
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source),
            config=config or LintConfig(),
        )


def _is_self_attribute(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _self_attribute_name(target: ast.expr) -> str | None:
    """``self.x`` or ``self.x[...]`` → ``"x"``; anything else → None."""
    if _is_self_attribute(target):
        return target.attr  # type: ignore[union-attr]
    if isinstance(target, ast.Subscript) and _is_self_attribute(target.value):
        return target.value.attr  # type: ignore[union-attr]
    return None


def _dotted_call_name(func: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c(...)`` → ("a", "b", "c"); non-dotted-name calls → None."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# L001 — unlocked shared mutation
# ---------------------------------------------------------------------------


def _lock_attributes(class_node: ast.ClassDef) -> set[str]:
    """Attributes assigned a ``threading.Lock()``/``RLock()`` anywhere in
    the class (typically ``__init__``)."""
    locks: set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        name = _dotted_call_name(value.func) if isinstance(value, ast.Call) else None
        if name is None or name[-1] not in ("Lock", "RLock"):
            continue
        if name[0] not in ("threading", "Lock", "RLock"):
            continue
        for target in node.targets:
            attr = _self_attribute_name(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _with_holds_self_lock(node: ast.With, lock_attrs: set[str]) -> bool:
    for item in node.items:
        expr = item.context_expr
        if _is_self_attribute(expr) and expr.attr in lock_attrs:  # type: ignore[union-attr]
            return True
    return False


def _check_unlocked_mutation(
    module: ModuleUnderLint, out: DiagnosticCollector
) -> None:
    for class_node in ast.walk(module.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        lock_attrs = _lock_attributes(class_node)
        if not lock_attrs:
            continue
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__post_init__"):
                continue
            if method.name.endswith("_locked"):
                continue  # convention: the caller holds the lock
            symbol = f"{class_node.name}.{method.name}"
            _walk_method(method, lock_attrs, module, symbol, out)


def _walk_method(
    node: ast.AST,
    lock_attrs: set[str],
    module: ModuleUnderLint,
    symbol: str,
    out: DiagnosticCollector,
    under_lock: bool = False,
) -> None:
    for child in ast.iter_child_nodes(node):
        child_locked = under_lock
        if isinstance(child, ast.With) and _with_holds_self_lock(
            child, lock_attrs
        ):
            child_locked = True
        if not child_locked:
            targets: list[ast.expr] = []
            if isinstance(child, ast.Assign):
                targets = child.targets
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                targets = [child.target]
            elif isinstance(child, ast.Delete):
                targets = child.targets
            for target in targets:
                attr = _self_attribute_name(target)
                if attr is None or attr in lock_attrs:
                    continue
                out.error(
                    "L001",
                    f"self.{attr} is mutated outside a 'with self."
                    f"{sorted(lock_attrs)[0]}:' block in a class that "
                    "guards its state with a lock",
                    Location(module.path, child.lineno, symbol),
                    rule="unlocked-shared-mutation",
                )
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested defs run later, in an unknown lock context
        _walk_method(child, lock_attrs, module, symbol, out, child_locked)


# ---------------------------------------------------------------------------
# L002 — direct clock calls in clock-injected modules
# ---------------------------------------------------------------------------


def _module_takes_clock(module: ModuleUnderLint) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            every = (
                args.posonlyargs + args.args + args.kwonlyargs
            )
            if any(arg.arg == "clock" for arg in every):
                return True
    return False


def _default_expr_nodes(module: ModuleUnderLint) -> set[int]:
    """ids of AST nodes inside default-argument expressions (a default of
    ``clock=time.monotonic`` is the injection point itself, not a call)."""
    out: set[int] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for default in (*node.args.defaults, *node.args.kw_defaults):
                if default is None:
                    continue
                for sub in ast.walk(default):
                    out.add(id(sub))
    return out


def _enclosing_symbols(module: ModuleUnderLint) -> dict[int, str]:
    """Map node id → dotted enclosing definition name."""
    symbols: dict[int, str] = {}

    def visit(node: ast.AST, stack: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            child_stack = stack
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                child_stack = stack + (child.name,)
            symbols[id(child)] = ".".join(child_stack) or "<module>"
            visit(child, child_stack)

    visit(module.tree, ())
    return symbols


def _check_direct_clock(
    module: ModuleUnderLint, out: DiagnosticCollector
) -> None:
    if not _module_takes_clock(module):
        return
    defaults = _default_expr_nodes(module)
    symbols = _enclosing_symbols(module)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or id(node) in defaults:
            continue
        name = _dotted_call_name(node.func)
        if name is None or len(name) < 2:
            continue
        if (name[-2], name[-1]) in CLOCK_CALLS:
            out.error(
                "L002",
                f"direct {'.'.join(name)}() call in a module with an "
                "injectable clock; thread the clock through instead",
                Location(module.path, node.lineno, symbols.get(id(node))),
                rule="direct-clock-call",
            )


# ---------------------------------------------------------------------------
# L003 — swallowed exceptions
# ---------------------------------------------------------------------------


def _is_broad_exception_type(type_node: ast.expr | None) -> bool:
    if type_node is None:
        return True  # bare except:
    if isinstance(type_node, ast.Name):
        return type_node.id in ("Exception", "BaseException")
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad_exception_type(e) for e in type_node.elts)
    return False


def _check_swallowed_exception(
    module: ModuleUnderLint, out: DiagnosticCollector
) -> None:
    symbols = _enclosing_symbols(module)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad_exception_type(node.type):
            continue
        uses_exception = node.name is not None and any(
            isinstance(sub, ast.Name) and sub.id == node.name
            for stmt in node.body
            for sub in ast.walk(stmt)
        )
        reraises = any(
            isinstance(sub, ast.Raise)
            for stmt in node.body
            for sub in ast.walk(stmt)
        )
        if uses_exception or reraises:
            continue
        caught = "bare except" if node.type is None else "except Exception"
        out.error(
            "L003",
            f"{caught} neither inspects nor re-raises the error — narrow "
            "the exception type or handle it explicitly",
            Location(module.path, node.lineno, symbols.get(id(node))),
            rule="swallowed-exception",
        )


# ---------------------------------------------------------------------------
# L004 — blocking file I/O in request handlers
# ---------------------------------------------------------------------------


def _is_handler_class(class_node: ast.ClassDef) -> bool:
    for base in class_node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name.endswith("HTTPRequestHandler") or name.endswith("_Handler"):
            return True
    return False


def _handler_methods(module: ModuleUnderLint) -> list[tuple[str, ast.FunctionDef]]:
    """(symbol, method) pairs that run on the request path."""
    in_scope_module = any(
        fragment in module.path for fragment in module.config.handler_modules
    )
    handlers: list[tuple[str, ast.FunctionDef]] = []
    for class_node in ast.walk(module.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        handler_class = _is_handler_class(class_node)
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            named_handler = method.name.startswith("do_") or (
                in_scope_module
                and method.name in module.config.handler_methods
            )
            if handler_class and method.name.startswith("do_"):
                named_handler = True
            if (handler_class or in_scope_module) and named_handler:
                handlers.append((f"{class_node.name}.{method.name}", method))
    return handlers


def _is_blocking_io_call(node: ast.Call) -> str | None:
    name = _dotted_call_name(node.func)
    if name is None:
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in BLOCKING_IO_ATTRS:
                return node.func.attr
        return None
    if len(name) == 1 and name[0] in BLOCKING_IO_NAMES:
        return name[0]
    if name[-1] in BLOCKING_IO_ATTRS:
        return ".".join(name)
    if len(name) >= 2 and (name[-2], name[-1]) in BLOCKING_IO_QUALIFIED:
        return ".".join(name)
    return None


def _check_blocking_io(module: ModuleUnderLint, out: DiagnosticCollector) -> None:
    for symbol, method in _handler_methods(module):
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            what = _is_blocking_io_call(node)
            if what is not None:
                out.error(
                    "L004",
                    f"blocking file I/O ({what}) inside request handler "
                    f"{symbol}; move it off the request path (e.g. to "
                    "shutdown/flush)",
                    Location(module.path, node.lineno, symbol),
                    rule="blocking-io-in-handler",
                )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

CHECKERS = (
    _check_unlocked_mutation,
    _check_direct_clock,
    _check_swallowed_exception,
    _check_blocking_io,
)


def lint_source(
    source: str, path: str = "<string>", config: LintConfig | None = None
) -> list[Diagnostic]:
    """Lint one module given as source text (the unit-test entry point)."""
    out = DiagnosticCollector()
    try:
        module = ModuleUnderLint.parse(source, path, config)
    except SyntaxError as exc:
        out.emit(
            "L000",
            Severity.ERROR,
            f"cannot parse module: {exc.msg}",
            Location(path, exc.lineno),
            rule="syntax-error",
        )
        return out.sorted()
    for checker in CHECKERS:
        checker(module, out)
    return out.sorted()


def lint_paths(
    paths: list[str | Path], config: LintConfig | None = None
) -> list[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    diagnostics: list[Diagnostic] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        diagnostics.extend(lint_source(source, str(file), config))
    return diagnostics
