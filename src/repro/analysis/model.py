"""Phase 1 of ``repro race``: the whole-program concurrency model.

The intra-method lint (:mod:`repro.analysis.linter`) sees one method at
a time; the race analyzer needs the *global* structure those methods
imply — the same move MedTQ makes when it derives a predicate graph
from local declarations.  This module builds that structure from the
AST alone:

* every class's **lock attributes** (``self._lock = threading.Lock()``
  declarations, dataclass ``field(default_factory=threading.Lock)``
  fields, inherited locks), giving each lock a stable project-wide
  identity ``ClassName.attr``;
* a light **type environment** — parameter/return annotations,
  ``self.x = ClassName(...)`` constructor assignments, ``list``/``dict``
  element types — so ``entry.lock`` resolves to ``SessionEntry.lock``
  and ``self.durable.commit_turn(...)`` resolves to a real callee;
* per-function **effect records**: which locks are acquired (and which
  were already held — the raw material of the lock-order graph), every
  resolvable ``obj.field`` read/write with the lock set held at that
  site, every call site, every blocking syscall, and the ordered
  file-I/O events (write / flush / fsync / rename / journal append /
  return) the durability rules D001–D003 check.

Conventions honoured (mirroring the L001 lint so correct code models
cleanly):

* ``__init__``/``__post_init__`` run before the object is shared;
* a method named ``*_locked`` documents that its caller holds the
  class's lock — with exactly one lock that lock is assumed held, with
  several the sites are marked :data:`CALLER_HELD` (satisfies any
  guard, creates no order edges);
* a ``# locks: ClassName.attr[, ...]`` comment on a ``def`` line
  declares caller-held locks explicitly, for cross-object or multi-lock
  cases the naming convention cannot express.

The model never guesses: an unresolvable receiver or callee is simply
omitted, so every edge and site the phase-2 rules reason about is
backed by a declaration the code actually makes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Marker lock id meaning "whatever lock the caller holds" — satisfies
#: any guard requirement but never participates in ordering rules.
CALLER_HELD = "<caller>"

#: ``def`` line annotation declaring caller-held locks.
_LOCKS_PRAGMA = re.compile(r"#\s*locks:\s*([A-Za-z0-9_.\[\]<>, ]+)")

#: Dotted calls that block the calling thread (syscalls, sleeps).
BLOCKING_QUALIFIED = {
    ("os", "fsync"), ("os", "replace"), ("os", "rename"),
    ("os", "remove"), ("os", "unlink"),
    ("time", "sleep"),
    ("subprocess", "Popen"), ("subprocess", "run"), ("subprocess", "call"),
    ("subprocess", "check_call"), ("subprocess", "check_output"),
    ("socket", "create_connection"),
    ("request", "urlopen"),
    ("json", "dump"), ("json", "load"),
}
BLOCKING_BARE = {"open"}
BLOCKING_ATTRS = {
    "read_text", "write_text", "read_bytes", "write_bytes", "mkdir",
}

#: Attribute calls that write bytes out (D001's "write before rename").
WRITE_ATTRS = {"write", "writelines", "write_text", "write_bytes"}

#: Method calls that mutate their receiver in place — a call through a
#: field (``self.x.setdefault(...)``) is a *write* to that field's state.
MUTATING_ATTRS = {
    "setdefault", "pop", "popitem", "append", "extend", "add", "insert",
    "remove", "discard", "clear", "update", "move_to_end",
}

#: Calls whose results vary across runs or processes — the raw material
#: of the replay-determinism rules (P001/P004).  ``clock``/``random``/
#: ``uuid``/``entropy`` values diverge between the original turn and its
#: journal replay; ``env``/``fs`` values depend on the host environment.
NONDET_QUALIFIED = {
    ("time", "time"): "clock", ("time", "time_ns"): "clock",
    ("time", "monotonic"): "clock", ("time", "monotonic_ns"): "clock",
    ("time", "perf_counter"): "clock", ("time", "perf_counter_ns"): "clock",
    ("datetime", "now"): "clock", ("datetime", "utcnow"): "clock",
    ("datetime", "today"): "clock", ("date", "today"): "clock",
    ("random", "random"): "random", ("random", "randint"): "random",
    ("random", "randrange"): "random", ("random", "choice"): "random",
    ("random", "choices"): "random", ("random", "shuffle"): "random",
    ("random", "sample"): "random", ("random", "uniform"): "random",
    ("random", "getrandbits"): "random", ("random", "seed"): "random",
    ("uuid", "uuid1"): "uuid", ("uuid", "uuid4"): "uuid",
    ("os", "urandom"): "entropy", ("secrets", "token_bytes"): "entropy",
    ("secrets", "token_hex"): "entropy",
    ("secrets", "token_urlsafe"): "entropy",
    ("os", "getenv"): "env",
    ("os", "listdir"): "fs", ("os", "scandir"): "fs", ("os", "walk"): "fs",
    ("glob", "glob"): "fs", ("glob", "iglob"): "fs",
}

#: Receiver-typed directory enumeration (``Path.iterdir`` — no module
#: prefix to resolve, so these go by attribute name alone).
NONDET_ATTRS = {"iterdir": "fs"}

#: Wrapping a filesystem enumeration (or a set) in one of these fixes
#: its order, so the wrapped call is no longer an order hazard.
ORDER_SANITIZERS = {"sorted"}

#: Calls that consume an unordered collection without exposing its
#: iteration order (aggregates, membership, emptiness).
ORDER_NEUTRAL_CALLS = {
    "sorted", "len", "min", "max", "sum", "any", "all", "bool",
}


# ---------------------------------------------------------------------------
# Type references
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassType:
    """A value known to be an instance of a project class."""

    name: str


@dataclass(frozen=True)
class ListType:
    elem: object  # TypeRef | None


@dataclass(frozen=True)
class DictType:
    value: object  # TypeRef | None


@dataclass(frozen=True)
class TupleType:
    elems: tuple


@dataclass(frozen=True)
class LockValue:
    """A raw ``threading.Lock`` value; ``family`` names where it lives
    (``"Store._resuming[]"`` for locks handed out of a dict)."""

    family: str | None = None


@dataclass(frozen=True)
class TempFile:
    """A path produced by a temp-file idiom; ``same_dir`` records
    whether it provably lives in the rename target's directory."""

    same_dir: bool


# ---------------------------------------------------------------------------
# Effect records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Acquisition:
    lock: str
    line: int
    held: frozenset


@dataclass(frozen=True)
class FieldAccess:
    cls: str
    attr: str
    write: bool
    line: int
    held: frozenset


@dataclass
class CallSite:
    callee: "FunctionModel | None"
    line: int
    held: frozenset
    #: Exception type names caught by enclosing non-re-raising ``try``
    #: handlers at this call site (``"<bare>"`` for a bare ``except:``).
    caught: tuple = ()


@dataclass(frozen=True)
class NondetCall:
    """One call whose result varies across runs/processes."""

    kind: str  # clock | random | uuid | entropy | env | fs
    what: str  # "time.perf_counter", "os.environ", ...
    line: int


@dataclass(frozen=True)
class RaiseSite:
    """One explicit ``raise`` with its resolved exception type."""

    type_name: str  # bare class name, or "<unknown>" for dynamic raises
    line: int
    #: Type names caught by enclosing non-re-raising handlers at the
    #: raise site (the raise only escapes past these).
    caught: tuple = ()


@dataclass(frozen=True)
class GlobalWrite:
    """A mutation of module-level state from inside a function."""

    target: str  # "pkg.module:NAME"
    line: int


@dataclass(frozen=True)
class OrderEscape:
    """An unordered collection whose iteration order leaves the function
    (into a returned/yielded value or an object field) — byte-unstable
    across processes under str-hash randomization."""

    source: str  # description of the unordered expression
    line: int
    via: str  # "return" | "yield" | "state"


@dataclass(frozen=True)
class ExceptClause:
    """One ``except`` handler clause."""

    types: tuple  # caught type names; () means a bare ``except:``
    line: int
    reraises: bool  # the handler body re-raises the caught exception


@dataclass
class TryBlock:
    """One ``try`` statement: its handlers plus what the protected body
    can actually raise (X002's raw material)."""

    line: int
    clauses: list = field(default_factory=list)  # ExceptClause
    callees: list = field(default_factory=list)  # resolved FunctionModel
    raise_types: list = field(default_factory=list)  # direct raises in body
    #: True when every call in the body resolved to a project function
    #: or a bare-name builtin — only then can a handler be proven dead.
    complete: bool = True


@dataclass(frozen=True)
class BlockingCall:
    what: str
    line: int
    held: frozenset


@dataclass(frozen=True)
class IOEvent:
    """One ordered durability-relevant event (D001–D003 raw material)."""

    kind: str  # write | flush | fsync | replace | commit_append
    line: int
    origin: object = None  # for replace: the source path's TempFile, if known


@dataclass
class Registration:
    """A function handed to ``signal.signal`` or ``atexit.register``."""

    kind: str  # "signal" | "atexit"
    target: "FunctionModel | None"
    line: int


@dataclass
class FunctionModel:
    """One function/method plus everything the rules need to know."""

    path: str
    module: str
    name: str
    qualname: str  # "Class.method" or bare function name
    lineno: int
    node: ast.AST
    class_model: "ClassModel | None" = None
    declared_locks: frozenset = frozenset()
    return_type: object = None
    acquisitions: list = field(default_factory=list)
    accesses: list = field(default_factory=list)
    calls: list = field(default_factory=list)
    blocking: list = field(default_factory=list)
    io_events: list = field(default_factory=list)
    returns: list = field(default_factory=list)
    registrations: list = field(default_factory=list)
    nondet_calls: list = field(default_factory=list)
    raises: list = field(default_factory=list)
    global_writes: list = field(default_factory=list)
    order_escapes: list = field(default_factory=list)
    except_clauses: list = field(default_factory=list)
    try_blocks: list = field(default_factory=list)
    #: Calls that did not resolve to a project function and were not
    #: bare-name builtins — while any are reachable, the raise-set of
    #: this function cannot be proven complete (gates X002).
    unresolved_calls: int = 0

    @property
    def is_init(self) -> bool:
        return self.name in ("__init__", "__post_init__")

    @property
    def location(self) -> str:
        return f"{self.path}::{self.qualname}"


@dataclass
class ClassModel:
    path: str
    module: str
    name: str
    lineno: int
    node: ast.ClassDef
    base_names: list = field(default_factory=list)
    bases: list = field(default_factory=list)  # resolved ClassModel refs
    own_locks: set = field(default_factory=set)
    attr_types: dict = field(default_factory=dict)  # attr -> TypeRef | None
    methods: dict = field(default_factory=dict)  # name -> FunctionModel

    def mro(self) -> list:
        """This class followed by its resolvable project bases."""
        out, queue, seen = [], [self], set()
        while queue:
            cls = queue.pop(0)
            if id(cls) in seen:
                continue
            seen.add(id(cls))
            out.append(cls)
            queue.extend(cls.bases)
        return out

    def lock_attrs(self) -> dict:
        """lock attribute name -> stable lock id ``DeclaringClass.attr``."""
        locks: dict[str, str] = {}
        for cls in reversed(self.mro()):
            for attr in cls.own_locks:
                locks[attr] = f"{cls.name}.{attr}"
        return locks

    def find_method(self, name: str) -> FunctionModel | None:
        for cls in self.mro():
            if name in cls.methods:
                return cls.methods[name]
        return None

    def field_names(self) -> set:
        out: set[str] = set()
        for cls in self.mro():
            out.update(cls.attr_types)
        return out

    def attr_type(self, attr: str):
        for cls in self.mro():
            if attr in cls.attr_types:
                return cls.attr_types[attr]
        return None


@dataclass
class ModuleModel:
    path: str
    dotted: str
    tree: ast.Module
    source: str
    classes: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)
    raw_imports: list = field(default_factory=list)  # (local, dotted, symbol)
    symbols: dict = field(default_factory=dict)  # local name -> resolution
    global_names: set = field(default_factory=set)  # module-level variables


@dataclass
class ProjectModel:
    """The whole-program model phase 2 runs its rules over."""

    modules: dict = field(default_factory=dict)  # dotted -> ModuleModel
    classes: dict = field(default_factory=dict)  # bare name -> ClassModel
    ambiguous_classes: set = field(default_factory=set)

    def all_functions(self):
        for module in self.modules.values():
            yield from module.functions.values()
            for cls in module.classes.values():
                yield from cls.methods.values()

    def resolve_class(self, name: str) -> ClassModel | None:
        if name in self.ambiguous_classes:
            return None
        return self.classes.get(name)


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _dotted_name(node: ast.expr) -> tuple[str, ...] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _handler_type_names(node: ast.expr | None) -> tuple:
    """Exception type names caught by an ``except`` clause expression.

    ``except (A, B)`` yields both names; a bare ``except`` yields ``()``;
    unresolvable expressions are dropped (treated as catching nothing we
    can reason about)."""
    if node is None:
        return ()
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for expr in exprs:
        dotted = _dotted_name(expr)
        if dotted is not None:
            names.append(dotted[-1])
    return tuple(names)


def _is_lock_constructor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _dotted_name(node.func)
    if name and name[-1] in ("Lock", "RLock"):
        return name[0] in ("threading", "Lock", "RLock")
    # dataclasses.field(default_factory=threading.Lock)
    if name and name[-1] == "field":
        for kw in node.keywords:
            if kw.arg == "default_factory":
                factory = _dotted_name(kw.value)
                if factory and factory[-1] in ("Lock", "RLock"):
                    return True
    return False


def _module_name(root: Path, file: Path) -> str:
    try:
        rel = file.relative_to(root.parent)
    except ValueError:
        return file.stem
    return ".".join(rel.with_suffix("").parts)


# ---------------------------------------------------------------------------
# Pass A: parse files, collect raw classes/functions/imports
# ---------------------------------------------------------------------------


def _collect_module(
    path: Path | str, dotted: str, source: str | None = None
) -> ModuleModel | None:
    if source is None:
        source = Path(path).read_text(encoding="utf-8")
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    module = ModuleModel(path=str(path), dotted=dotted, tree=tree, source=source)
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            cls = ClassModel(
                path=module.path, module=dotted, name=node.name,
                lineno=node.lineno, node=node,
            )
            cls.base_names = [
                ".".join(name) for name in
                (_dotted_name(base) for base in node.bases) if name
            ]
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = FunctionModel(
                        path=module.path, module=dotted, name=item.name,
                        qualname=f"{node.name}.{item.name}",
                        lineno=item.lineno, node=item, class_model=cls,
                    )
            module.classes[node.name] = cls
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[node.name] = FunctionModel(
                path=module.path, module=dotted, name=node.name,
                qualname=node.name, lineno=node.lineno, node=node,
            )
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    module.global_names.add(target.id)
    # Imports anywhere in the module (function-local imports are the
    # house style for breaking circular dependencies) resolve names for
    # the whole module — a small over-approximation, never ambiguous.
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                module.raw_imports.append((local, alias.name, None))
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                module.raw_imports.append((local, node.module, alias.name))
    return module


# ---------------------------------------------------------------------------
# Pass B: resolve imports, bases, attribute/return types
# ---------------------------------------------------------------------------


class _Resolver:
    """Name → model resolution in one module's import context."""

    def __init__(self, project: ProjectModel, module: ModuleModel) -> None:
        self.project = project
        self.module = module

    def lookup(self, name: str):
        """A local name → ClassModel | FunctionModel | ModuleModel | None."""
        if name in self.module.classes:
            return self.module.classes[name]
        if name in self.module.functions:
            return self.module.functions[name]
        resolved = self.module.symbols.get(name)
        return resolved

    def lookup_dotted(self, parts: tuple[str, ...]):
        """``("recovery", "recover_session")`` → the imported function."""
        base = self.lookup(parts[0])
        for part in parts[1:]:
            if isinstance(base, ModuleModel):
                base = base.classes.get(part) or base.functions.get(part)
            else:
                return None
        return base

    def resolve_annotation(self, node: ast.expr | None):
        """An annotation AST → TypeRef (best effort, never guesses)."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self.resolve_annotation(node.left)
            return left if left is not None else self.resolve_annotation(node.right)
        name = _dotted_name(node) if not isinstance(node, ast.Subscript) else None
        if name:
            if name[-1] in ("Lock", "RLock") and name[0] in ("threading",):
                return LockValue()
            target = self.lookup(name[0]) if len(name) == 1 else (
                self.lookup_dotted(name)
            )
            if isinstance(target, ClassModel):
                return ClassType(target.name)
            return None
        if isinstance(node, ast.Subscript):
            container = _dotted_name(node.value)
            if container is None:
                return None
            kind = container[-1]
            items = (
                list(node.slice.elts)
                if isinstance(node.slice, ast.Tuple)
                else [node.slice]
            )
            if kind in ("list", "List", "Iterable", "Sequence"):
                return ListType(self.resolve_annotation(items[0]))
            if kind in ("dict", "Dict", "OrderedDict", "defaultdict"):
                return DictType(
                    self.resolve_annotation(items[-1]) if len(items) > 1 else None
                )
            if kind in ("tuple", "Tuple"):
                return TupleType(
                    tuple(self.resolve_annotation(item) for item in items)
                )
            if kind == "Optional":
                return self.resolve_annotation(items[0])
        return None


def _resolve_symbols(project: ProjectModel) -> None:
    for module in project.modules.values():
        for local, dotted, symbol in module.raw_imports:
            if symbol is None:
                target = project.modules.get(dotted)
            else:
                # `from pkg import name`: a submodule, or a symbol of pkg.
                target = project.modules.get(f"{dotted}.{symbol}")
                if target is None:
                    source = project.modules.get(dotted)
                    if source is not None:
                        target = source.classes.get(symbol) or (
                            source.functions.get(symbol)
                        )
            if target is not None:
                module.symbols[local] = target


def _shallow_value_type(resolver: _Resolver, node: ast.expr):
    """Type of an ``__init__`` right-hand side, without a local env."""
    if _is_lock_constructor(node):
        return LockValue()
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        if name:
            target = resolver.lookup_dotted(name) if len(name) > 1 else (
                resolver.lookup(name[0])
            )
            if isinstance(target, ClassModel):
                return ClassType(target.name)
    if isinstance(node, (ast.ListComp, ast.List)):
        elements = (
            [node.elt] if isinstance(node, ast.ListComp) else node.elts
        )
        if elements:
            elem = _shallow_value_type(resolver, elements[0])
            if elem is not None:
                return ListType(elem)
    return None


def _resolve_class_details(project: ProjectModel) -> None:
    for module in project.modules.values():
        resolver = _Resolver(project, module)
        for cls in module.classes.values():
            for base_name in cls.base_names:
                base = resolver.lookup(base_name.split(".")[0])
                if "." in base_name:
                    base = resolver.lookup_dotted(tuple(base_name.split(".")))
                if isinstance(base, ClassModel):
                    cls.bases.append(base)
            # Class-level annotated fields (dataclasses).
            for item in cls.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    ref = resolver.resolve_annotation(item.annotation)
                    if item.value is not None and _is_lock_constructor(item.value):
                        ref = LockValue()
                    cls.attr_types[item.target.id] = ref
                    if isinstance(ref, LockValue):
                        cls.own_locks.add(item.target.id)
            # Attributes assigned anywhere in the class body.
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    targets: list[ast.expr] = []
                    value = None
                    if isinstance(node, ast.Assign):
                        targets, value = node.targets, node.value
                    elif isinstance(node, ast.AnnAssign):
                        targets, value = [node.target], node.value
                    for target in targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        attr = target.attr
                        ref = None
                        if isinstance(node, ast.AnnAssign):
                            ref = resolver.resolve_annotation(node.annotation)
                        if ref is None and value is not None:
                            ref = _shallow_value_type(resolver, value)
                        if _is_lock_constructor(value) if value else False:
                            cls.own_locks.add(attr)
                            ref = LockValue()
                        if attr not in cls.attr_types or (
                            cls.attr_types[attr] is None and ref is not None
                        ):
                            cls.attr_types[attr] = ref
            # Give dict-of-lock attributes a stable family name.
            for attr, ref in cls.attr_types.items():
                if isinstance(ref, DictType) and isinstance(
                    ref.value, LockValue
                ):
                    cls.attr_types[attr] = DictType(
                        LockValue(f"{cls.name}.{attr}[]")
                    )


def _resolve_signatures(project: ProjectModel) -> None:
    for module in project.modules.values():
        resolver = _Resolver(project, module)
        for function in _module_function_models(module):
            args = function.node.args
            function.return_type = resolver.resolve_annotation(
                function.node.returns
            )
            function.param_types = {}
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if arg.arg == "self":
                    continue
                function.param_types[arg.arg] = resolver.resolve_annotation(
                    arg.annotation
                )
            function.declared_locks = _declared_locks(module, function)


def _module_function_models(module: ModuleModel):
    yield from module.functions.values()
    for cls in module.classes.values():
        yield from cls.methods.values()


def _declared_locks(module: ModuleModel, function: FunctionModel) -> frozenset:
    """Caller-held locks from the ``*_locked`` convention and pragma."""
    held: set[str] = set()
    lines = module.source.splitlines()
    body_start = function.node.body[0].lineno if function.node.body else (
        function.lineno + 1
    )
    for lineno in range(function.lineno, body_start):
        if 0 < lineno <= len(lines):
            match = _LOCKS_PRAGMA.search(lines[lineno - 1])
            if match:
                held.update(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip()
                )
    if function.name.endswith("_locked") and function.class_model is not None:
        locks = sorted(set(function.class_model.lock_attrs().values()))
        if len(locks) == 1:
            held.add(locks[0])
        elif locks:
            held.add(CALLER_HELD)
    return frozenset(held)


# ---------------------------------------------------------------------------
# Pass C: walk every function body recording effects
# ---------------------------------------------------------------------------


class _BodyWalker:
    """Records one function's effects under a static held-lock set."""

    def __init__(
        self,
        project: ProjectModel,
        module: ModuleModel,
        function: FunctionModel,
    ) -> None:
        self.project = project
        self.module = module
        self.function = function
        self.resolver = _Resolver(project, module)
        self.env: dict[str, object] = dict(
            getattr(function, "param_types", {}) or {}
        )
        # Exception-flow context: one entry per enclosing ``try`` whose
        # handlers would stop a propagating exception here.
        self._caught_stack: list[tuple] = []
        self._try_stack: list[TryBlock] = []
        # Order-taint context: locals currently holding unordered
        # collections, and call nodes wrapped in an order sanitizer.
        self._set_locals: set[str] = set()
        self._sanitized: set[int] = set()
        # Names the function declares ``global`` (writes hit the module),
        # and every name bound locally (everything else may be a module
        # global when the module defines it at top level).
        self._global_decls: set[str] = set()
        self._local_names: set[str] = set(self.env)
        for sub in ast.walk(function.node):
            if isinstance(sub, ast.Global):
                self._global_decls.update(sub.names)
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                self._local_names.add(sub.id)
        self._local_names -= self._global_decls

    # -- typing --------------------------------------------------------------

    def _type_of(self, node: ast.expr):
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            target = self.resolver.lookup(node.id)
            if isinstance(target, ClassModel):
                return ClassType(target.name)
            return None
        if isinstance(node, ast.Attribute):
            owner = self._receiver_class(node.value)
            if owner is not None:
                return owner.attr_type(node.attr)
            return None
        if isinstance(node, ast.Subscript):
            container = self._type_of(node.value)
            if isinstance(container, ListType):
                return container.elem
            if isinstance(container, DictType):
                return container.value
            return None
        if isinstance(node, ast.Call):
            callee, result = self._resolve_call(node)
            return result
        return None

    def _receiver_class(self, node: ast.expr) -> ClassModel | None:
        if (
            isinstance(node, ast.Name)
            and node.id == "self"
            and self.function.class_model is not None
        ):
            return self.function.class_model
        ref = self._type_of(node)
        if isinstance(ref, ClassType):
            return self.project.resolve_class(ref.name)
        return None

    def _resolve_call(self, node: ast.Call):
        """→ (callee FunctionModel | None, result TypeRef | None)."""
        func = node.func
        if isinstance(func, ast.Name):
            target = self.resolver.lookup(func.id)
            if isinstance(target, ClassModel):
                init = target.find_method("__init__")
                return init, ClassType(target.name)
            if isinstance(target, FunctionModel):
                return target, target.return_type
            return None, None
        if isinstance(func, ast.Attribute):
            owner = self._receiver_class(func.value)
            if owner is not None:
                method = owner.find_method(func.attr)
                if method is not None:
                    return method, method.return_type
                return None, None
            # `module.symbol(...)` through a project module alias.
            name = _dotted_name(func)
            if name and len(name) >= 2:
                target = self.resolver.lookup_dotted(name)
                if isinstance(target, ClassModel):
                    return target.find_method("__init__"), ClassType(target.name)
                if isinstance(target, FunctionModel):
                    return target, target.return_type
            # Container accessors hand back their element type.
            container = self._type_of(func.value)
            if isinstance(container, DictType) and func.attr in (
                "get", "setdefault", "pop"
            ):
                return None, container.value
            if isinstance(container, ListType) and func.attr == "pop":
                return None, container.elem
        return None, None

    # -- lock identity -------------------------------------------------------

    def _lock_id(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            owner = self._receiver_class(node.value)
            if owner is not None:
                return owner.lock_attrs().get(node.attr)
        ref = self._type_of(node)
        if isinstance(ref, LockValue):
            return ref.family
        return None

    # -- exception / nondeterminism / order context --------------------------

    def _caught(self) -> tuple:
        """Handler type names active at the current walk position."""
        return tuple(
            name for frame in self._caught_stack for name in frame
        )

    def _is_module_global(self, name: str) -> bool:
        if name in self._global_decls:
            return True
        return name in self.module.global_names and (
            name not in self._local_names
        )

    def _unordered_source(self, node: ast.expr) -> str | None:
        """A description when ``node`` evaluates to an unordered
        collection (set literal/comprehension/constructor, a tainted
        local, or a set operation over one); None otherwise."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return f"{node.func.id}(...)"
            return None
        if isinstance(node, ast.Name) and node.id in self._set_locals:
            return f"the set {node.id!r}"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._unordered_source(node.left) or (
                self._unordered_source(node.right)
            )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference", "copy",
            ):
                return self._unordered_source(node.func.value)
        return None

    def _order_escapes_in(self, node: ast.expr | None) -> list:
        """(source, line) pairs where an unordered collection's iteration
        order reaches the value of ``node`` unsanitized."""
        if node is None:
            return []
        out: list[tuple[str, int]] = []
        stack: list[ast.AST] = [node]
        while stack:
            sub = stack.pop()
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                if sub.func.id in ORDER_NEUTRAL_CALLS:
                    continue  # sorted()/len()/... absorb the order
                if sub.func.id in ("list", "tuple") and sub.args:
                    source = self._unordered_source(sub.args[0])
                    if source is not None:
                        out.append((source, sub.lineno))
                        continue
            if isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Attribute
            ) and sub.func.attr == "join" and sub.args:
                source = self._unordered_source(sub.args[0])
                if source is not None:
                    out.append((source, sub.lineno))
                    continue
            if isinstance(sub, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in sub.generators:
                    source = self._unordered_source(comp.iter)
                    if source is not None:
                        out.append((source, sub.lineno))
            if isinstance(sub, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in sub.ops
            ):
                continue  # membership tests are order-free
            source = self._unordered_source(sub)
            if source is not None:
                out.append((source, sub.lineno))
                continue
            stack.extend(ast.iter_child_nodes(sub))
        return out

    def _record_order_escapes(self, node: ast.expr | None, via: str) -> None:
        for source, line in self._order_escapes_in(node):
            self.function.order_escapes.append(
                OrderEscape(source=source, line=line, via=via)
            )

    def _record_nondet(self, node: ast.Call) -> None:
        name = _dotted_name(node.func)
        kind = what = None
        if name is not None:
            if len(name) >= 2 and (name[-2], name[-1]) in NONDET_QUALIFIED:
                kind = NONDET_QUALIFIED[(name[-2], name[-1])]
                what = ".".join(name[-2:])
        if kind is None and isinstance(node.func, ast.Attribute) and (
            node.func.attr in NONDET_ATTRS
        ):
            kind, what = NONDET_ATTRS[node.func.attr], node.func.attr
        if kind is None:
            return
        if kind == "fs" and id(node) in self._sanitized:
            return  # sorted(os.listdir(...)) — order fixed by the caller
        self.function.nondet_calls.append(
            NondetCall(kind=kind, what=what, line=node.lineno)
        )

    def _record_global_write(self, name: str, line: int) -> None:
        self.function.global_writes.append(
            GlobalWrite(target=f"{self.module.dotted}:{name}", line=line)
        )

    def _raise_type(self, exc: ast.expr | None) -> str | None:
        """The exception type name a ``raise`` statement throws, or
        "<unknown>" for dynamic values, or None for bare re-raise."""
        if exc is None:
            return None  # bare re-raise: already counted at the origin
        node = exc
        if isinstance(node, ast.Call):
            node = node.func
        dotted = _dotted_name(node)
        if dotted is None:
            return "<unknown>"
        name = dotted[-1]
        if name[:1].isupper():
            return name
        return "<unknown>"  # raise from a local variable

    # -- effect recording ----------------------------------------------------

    def _record_access(self, cls: ClassModel, attr: str, write, line, held):
        if attr not in cls.field_names() and attr not in cls.lock_attrs():
            return
        self.function.accesses.append(
            FieldAccess(
                cls=cls.name, attr=attr, write=write, line=line,
                held=frozenset(held),
            )
        )

    def _walk_expr(self, node: ast.expr | None, held: frozenset) -> None:
        if node is None:
            return
        consumed: set[int] = set()
        stack: list[ast.AST] = [node]
        while stack:
            sub = stack.pop()
            if isinstance(sub, ast.Lambda):
                continue  # runs later, in an unknown lock context
            if isinstance(sub, ast.Call):
                if isinstance(
                    sub.func, ast.Name
                ) and sub.func.id in ORDER_SANITIZERS:
                    # sorted(os.listdir(...)): the wrapped enumeration's
                    # order never escapes.
                    self._sanitized.update(
                        id(arg) for arg in sub.args
                        if isinstance(arg, ast.Call)
                    )
                # `self.x.setdefault(...)` and friends mutate the field.
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_ATTRS
                    and isinstance(func.value, ast.Attribute)
                ):
                    owner = self._receiver_class(func.value.value)
                    if owner is not None and owner.find_method(
                        func.value.attr
                    ) is None:
                        self._record_access(
                            owner, func.value.attr, True, sub.lineno, held
                        )
                        consumed.add(id(func.value))
                # `_CACHE.setdefault(...)` on a module-level name is a
                # hidden module-state write.
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_ATTRS
                    and isinstance(func.value, ast.Name)
                    and self._is_module_global(func.value.id)
                ):
                    self._record_global_write(func.value.id, sub.lineno)
                self._record_call(sub, held)
            if isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, ast.Load
            ):
                dotted = _dotted_name(sub)
                if dotted == ("os", "environ"):
                    self.function.nondet_calls.append(
                        NondetCall(
                            kind="env", what="os.environ", line=sub.lineno
                        )
                    )
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Load)
                and id(sub) not in consumed
            ):
                owner = self._receiver_class(sub.value)
                if owner is not None and owner.find_method(sub.attr) is None:
                    self._record_access(
                        owner, sub.attr, False, sub.lineno, held
                    )
            stack.extend(ast.iter_child_nodes(sub))

    def _record_call(self, node: ast.Call, held: frozenset) -> None:
        callee, _result = self._resolve_call(node)
        if callee is not None:
            self.function.calls.append(
                CallSite(
                    callee=callee, line=node.lineno, held=held,
                    caught=self._caught(),
                )
            )
        unresolved = callee is None
        if unresolved and isinstance(node.func, ast.Name):
            target = self.resolver.lookup(node.func.id)
            if target is None and node.func.id not in self._local_names:
                # A bare-name builtin stays provable; a local callable
                # (``fn = getattr(...)``) could be any project code.
                unresolved = False
            elif isinstance(target, ClassModel):
                # A constructor with no __init__/__post_init__ of its
                # own (plain exception subclasses) runs no project code.
                unresolved = target.find_method("__post_init__") is not None
        if unresolved:
            # An unresolved attribute/aliased call could reach any
            # project code; the raise-set is no longer provable.
            self.function.unresolved_calls += 1
        for block in self._try_stack:
            if callee is not None:
                block.callees.append(callee)
            elif unresolved:
                block.complete = False
        self._record_nondet(node)
        self._record_blocking(node, held)
        self._record_io(node, held)
        self._record_registration(node)

    def _record_blocking(self, node: ast.Call, held: frozenset) -> None:
        name = _dotted_name(node.func)
        what = None
        if name is not None:
            if len(name) == 1 and name[0] in BLOCKING_BARE:
                what = name[0]
            elif len(name) >= 2 and (name[-2], name[-1]) in BLOCKING_QUALIFIED:
                what = ".".join(name[-2:])
            elif name[-1] in BLOCKING_ATTRS:
                what = name[-1]
        elif isinstance(node.func, ast.Attribute) and (
            node.func.attr in BLOCKING_ATTRS
        ):
            what = node.func.attr
        if what is not None:
            self.function.blocking.append(
                BlockingCall(what=what, line=node.lineno, held=held)
            )

    def _record_io(self, node: ast.Call, held: frozenset) -> None:
        name = _dotted_name(node.func)
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
        events = self.function.io_events
        if attr in WRITE_ATTRS or (
            name and len(name) >= 2 and (name[-2], name[-1]) == ("json", "dump")
        ):
            events.append(IOEvent("write", node.lineno))
        elif attr == "flush":
            events.append(IOEvent("flush", node.lineno))
        elif name and len(name) >= 2 and (name[-2], name[-1]) == ("os", "fsync"):
            events.append(IOEvent("fsync", node.lineno))
        elif attr is not None and "fsync" in attr:
            # A helper whose name advertises fsyncing counts as one
            # (`self._fsync_directory(...)`).
            events.append(IOEvent("fsync", node.lineno))
        if name and len(name) >= 2 and (name[-2], name[-1]) in (
            ("os", "replace"), ("os", "rename")
        ):
            origin = None
            if node.args:
                source = node.args[0]
                if isinstance(source, ast.Name):
                    candidate = self.env.get(source.id)
                    if isinstance(candidate, TempFile):
                        origin = candidate
            events.append(IOEvent("replace", node.lineno, origin=origin))
        if attr == "append":
            owner = self._receiver_class(node.func.value)
            if owner is not None and owner.find_method("append") is not None:
                events.append(IOEvent("commit_append", node.lineno))

    def _record_registration(self, node: ast.Call) -> None:
        name = _dotted_name(node.func)
        if name is None:
            return
        kind = None
        if (name[-2:] if len(name) >= 2 else name) == ("signal", "signal"):
            kind, target_node = "signal", node.args[1] if len(node.args) > 1 else None
        elif len(name) >= 2 and (name[-2], name[-1]) == ("atexit", "register"):
            kind, target_node = "atexit", node.args[0] if node.args else None
        if kind is None or target_node is None:
            return
        target: FunctionModel | None = None
        if isinstance(target_node, ast.Name):
            looked = self.resolver.lookup(target_node.id)
            if isinstance(looked, FunctionModel):
                target = looked
        elif isinstance(target_node, ast.Attribute):
            owner = self._receiver_class(target_node.value)
            if owner is not None:
                target = owner.find_method(target_node.attr)
        self.function.registrations.append(
            Registration(kind=kind, target=target, line=node.lineno)
        )

    # -- assignment / statement walk -----------------------------------------

    def _assign_target(self, target: ast.expr, value_type, held, line) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._global_decls:
                self._record_global_write(target.id, line)
            if value_type is not None:
                self.env[target.id] = value_type
            else:
                self.env.pop(target.id, None)
            return
        receiver = target
        if isinstance(target, ast.Subscript):
            receiver = target.value
        if isinstance(receiver, ast.Name) and self._is_module_global(
            receiver.id
        ):
            # `_CACHE[key] = value` on a module-level name.
            self._record_global_write(receiver.id, line)
        if isinstance(receiver, ast.Attribute):
            if isinstance(
                receiver.value, ast.Name
            ) and self._is_module_global(receiver.value.id):
                self._record_global_write(receiver.value.id, line)
            owner = self._receiver_class(receiver.value)
            if owner is not None:
                self._record_access(owner, receiver.attr, True, line, held)
        if isinstance(target, (ast.Tuple, ast.List)):
            elems = (
                value_type.elems
                if isinstance(value_type, TupleType)
                else (None,) * len(target.elts)
            )
            for sub, sub_type in zip(target.elts, elems):
                self._assign_target(sub, sub_type, held, line)

    def _value_type_with_tempfiles(self, node: ast.expr):
        """Value typing plus the temp-file idioms D002 certifies."""
        name = _dotted_name(node.func) if isinstance(node, ast.Call) else None
        if name and len(name) >= 2 and (name[-2], name[-1]) == (
            "tempfile", "mkstemp"
        ):
            same_dir = any(kw.arg == "dir" for kw in node.keywords)
            return TupleType((None, TempFile(same_dir=same_dir)))
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("with_name", "with_suffix")
        ):
            return TempFile(same_dir=True)
        return self._type_of(node)

    def walk(self) -> None:
        held = frozenset(
            lock for lock in self.function.declared_locks
        )
        self._walk_block(self.function.node.body, held)

    def _walk_block(self, statements, held: frozenset) -> None:
        for statement in statements:
            self._walk_stmt(statement, held)

    def _walk_stmt(self, node: ast.stmt, held: frozenset) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions run in an unknown lock context
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(node, "value", None)
            self._walk_expr(value, held)
            value_type = (
                self._value_type_with_tempfiles(value)
                if value is not None
                else None
            )
            if isinstance(node, ast.AnnAssign) and value_type is None:
                value_type = self.resolver.resolve_annotation(node.annotation)
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(node, ast.AugAssign):
                    # += reads then writes the same location.
                    self._walk_expr_target_read(target, held)
                self._assign_target(target, value_type, held, node.lineno)
                if isinstance(target, ast.Name) and not isinstance(
                    node, ast.AugAssign
                ):
                    if value is not None and self._unordered_source(value):
                        self._set_locals.add(target.id)
                    else:
                        self._set_locals.discard(target.id)
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    # Unordered iteration order persisted into object or
                    # module state escapes the function.
                    self._record_order_escapes(value, "state")
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._assign_target(target, None, held, node.lineno)
            return
        if isinstance(node, ast.With):
            new_held = set(held)
            for item in node.items:
                self._walk_expr(item.context_expr, held)
                lock = self._lock_id(item.context_expr)
                if lock is not None:
                    self.function.acquisitions.append(
                        Acquisition(lock=lock, line=node.lineno, held=held)
                    )
                    new_held.add(lock)
            self._walk_block(node.body, frozenset(new_held))
            return
        if isinstance(node, ast.Return):
            self.function.returns.append(node.lineno)
            self._record_order_escapes(node.value, "return")
            self._walk_expr(node.value, held)
            return
        if isinstance(node, ast.Expr):
            if isinstance(node.value, (ast.Yield, ast.YieldFrom)):
                self._record_order_escapes(node.value.value, "yield")
            self._walk_expr(node.value, held)
            return
        if isinstance(node, (ast.If, ast.While)):
            self._walk_expr(node.test, held)
            self._walk_block(node.body, held)
            self._walk_block(node.orelse, held)
            return
        if isinstance(node, ast.For):
            self._walk_expr(node.iter, held)
            if self._unordered_source(node.iter):
                # Locals accumulated inside a loop over an unordered
                # collection inherit its (hash-dependent) order.
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in ("append", "extend", "insert")
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        self._set_locals.add(sub.func.value.id)
                    elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                        self.function.order_escapes.append(
                            OrderEscape(
                                source=self._unordered_source(node.iter),
                                line=node.lineno, via="yield",
                            )
                        )
            iter_type = self._type_of(node.iter)
            elem = iter_type.elem if isinstance(iter_type, ListType) else None
            self._assign_target(node.target, elem, held, node.lineno)
            self._walk_block(node.body, held)
            self._walk_block(node.orelse, held)
            return
        if isinstance(node, ast.Try):
            clauses = []
            for handler in node.handlers:
                reraises = any(
                    isinstance(sub, ast.Raise) and sub.exc is None
                    for stmt in handler.body
                    for sub in ast.walk(stmt)
                )
                clauses.append(
                    ExceptClause(
                        types=_handler_type_names(handler.type),
                        line=handler.lineno, reraises=reraises,
                    )
                )
            block = TryBlock(line=node.lineno, clauses=clauses)
            caught = tuple(
                name
                for clause in clauses
                if not clause.reraises
                for name in (clause.types or ("<bare>",))
            )
            self._try_stack.append(block)
            self._caught_stack.append(caught)
            self._walk_block(node.body, held)
            self._caught_stack.pop()
            self._try_stack.pop()
            self.function.try_blocks.append(block)
            self.function.except_clauses.extend(clauses)
            for handler in node.handlers:
                self._walk_block(handler.body, held)
            self._walk_block(node.orelse, held)
            self._walk_block(node.finalbody, held)
            return
        if isinstance(node, ast.Raise):
            type_name = self._raise_type(node.exc)
            if type_name is not None:
                self.function.raises.append(
                    RaiseSite(
                        type_name=type_name, line=node.lineno,
                        caught=self._caught(),
                    )
                )
                for block in self._try_stack:
                    block.raise_types.append(type_name)
            self._walk_expr(node.exc, held)
            return
        # Anything else: record the calls/reads it contains.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._walk_expr(child, held)
            elif isinstance(child, ast.stmt):
                self._walk_stmt(child, held)

    def _walk_expr_target_read(self, target: ast.expr, held: frozenset) -> None:
        receiver = target.value if isinstance(target, ast.Subscript) else target
        if isinstance(receiver, ast.Attribute):
            owner = self._receiver_class(receiver.value)
            if owner is not None:
                self._record_access(
                    owner, receiver.attr, False, target.lineno, held
                )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _finish_model(project: ProjectModel) -> ProjectModel:
    for module in project.modules.values():
        for cls in module.classes.values():
            if cls.name in project.classes:
                project.ambiguous_classes.add(cls.name)
            project.classes[cls.name] = cls
    _resolve_symbols(project)
    _resolve_class_details(project)
    _resolve_signatures(project)
    for module in project.modules.values():
        for function in _module_function_models(module):
            _BodyWalker(project, module, function).walk()
    return project


def build_model(paths: list[str | Path]) -> ProjectModel:
    """Build the whole-program model from ``.py`` files/directories."""
    project = ProjectModel()
    for path in paths:
        path = Path(path)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        root = path if path.is_dir() else path.parent
        for file in files:
            dotted = _module_name(root, file)
            module = _collect_module(file, dotted)
            if module is not None:
                project.modules[dotted] = module
    return _finish_model(project)


def build_model_from_sources(sources: dict[str, str]) -> ProjectModel:
    """Build the model from in-memory modules (``{"pkg/mod.py": source}``)
    — the unit-test entry point."""
    project = ProjectModel()
    for path, source in sources.items():
        dotted = ".".join(Path(path).with_suffix("").parts)
        module = _collect_module(path, dotted, source=source)
        if module is not None:
            project.modules[dotted] = module
    return _finish_model(project)
