"""Baseline suppression for reviewed, intentional findings.

A baseline file records findings that were inspected and accepted, so
CI only fails on *new* problems.  The format is line-oriented text kept
under version review next to the code it excuses::

    # repro analysis baseline.
    # <code> <location-pattern>   # why this finding is intentional
    L003 src/repro/legacy/*.py    # legacy shim, removed in PR 9
    C010 space:intent:Special*    # hand-served intent, no SQL on purpose

``location-pattern`` is an ``fnmatch`` glob matched against the
diagnostic's canonical location (``path`` or ``path::symbol`` — never a
line number, so baselines survive unrelated edits).  ``code`` must match
exactly, or be ``*`` to suppress every code at a location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic

#: Default baseline file name, looked up in the working directory.
DEFAULT_BASELINE_NAME = ".repro-baseline"


class BaselineError(ValueError):
    """The baseline file is malformed."""


@dataclass(frozen=True)
class BaselineEntry:
    """One suppression: a code plus a canonical-location glob."""

    code: str
    location_pattern: str
    comment: str = ""
    line: int = 0

    def matches(self, diag: Diagnostic) -> bool:
        if self.code != "*" and self.code != diag.code:
            return False
        return fnmatchcase(diag.location.canonical(), self.location_pattern)


@dataclass
class Baseline:
    """A parsed baseline file, applied with :meth:`apply`."""

    entries: list[BaselineEntry] = field(default_factory=list)
    path: Path | None = None

    @classmethod
    def parse(cls, text: str, path: Path | None = None) -> "Baseline":
        entries: list[BaselineEntry] = []
        for number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            body, _, comment = line.partition("#")
            parts = body.split()
            if len(parts) != 2:
                raise BaselineError(
                    f"baseline line {number}: expected "
                    f"'<code> <location-pattern>  # comment', got {raw!r}"
                )
            entries.append(
                BaselineEntry(
                    code=parts[0],
                    location_pattern=parts[1],
                    comment=comment.strip(),
                    line=number,
                )
            )
        return cls(entries=entries, path=path)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        return cls.parse(path.read_text(encoding="utf-8"), path=path)

    @classmethod
    def discover(cls, directory: str | Path = ".") -> "Baseline":
        """Load the default baseline file if present, else an empty one."""
        candidate = Path(directory) / DEFAULT_BASELINE_NAME
        if candidate.is_file():
            return cls.load(candidate)
        return cls()

    def suppresses(self, diag: Diagnostic) -> bool:
        return any(entry.matches(diag) for entry in self.entries)

    def apply(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """Split diagnostics into (active, suppressed)."""
        active: list[Diagnostic] = []
        suppressed: list[Diagnostic] = []
        for diag in diagnostics:
            (suppressed if self.suppresses(diag) else active).append(diag)
        return active, suppressed

    def unused_entries(self, diagnostics: list[Diagnostic]) -> list[BaselineEntry]:
        """Entries that matched nothing — candidates for deletion."""
        return [
            entry
            for entry in self.entries
            if not any(entry.matches(d) for d in diagnostics)
        ]


def location_pattern_for(diag: Diagnostic) -> str:
    """A baseline location pattern that matches ``diag`` exactly.

    The baseline format is whitespace-separated, so a canonical location
    containing spaces (e.g. a training-utterance symbol) cannot be
    written verbatim; each whitespace run becomes a ``*`` glob, which
    still matches only that location's shape.
    """
    return "*".join(diag.location.canonical().split())


def render_baseline(
    diagnostics: list[Diagnostic],
    previous: Baseline | None = None,
    command: str = "python -m repro baseline --update",
) -> str:
    """Render a baseline file suppressing exactly ``diagnostics``.

    Entries of ``previous`` that still match a current finding are kept
    verbatim — hand-written globs and review comments survive the
    regeneration.  Findings not covered by a kept entry get an exact
    per-location entry marked for review; entries matching nothing are
    dropped.
    """
    previous = previous or Baseline()
    kept = [
        entry
        for entry in previous.entries
        if any(entry.matches(d) for d in diagnostics)
    ]
    kept_baseline = Baseline(entries=kept)
    fresh: dict[tuple[str, str], Diagnostic] = {}
    for diag in diagnostics:
        if kept_baseline.suppresses(diag):
            continue
        fresh.setdefault((diag.code, location_pattern_for(diag)), diag)
    lines = [
        "# repro analysis baseline.",
        f"# Regenerated by `{command}`.",
        "# <code> <location-pattern>  # why this finding is intentional",
    ]
    for entry in kept:
        line = f"{entry.code} {entry.location_pattern}"
        if entry.comment:
            line += f"  # {entry.comment}"
        lines.append(line)
    for (code, pattern), diag in sorted(fresh.items()):
        lines.append(f"{code} {pattern}  # TODO: review ({diag.rule})")
    return "\n".join(lines) + "\n"
