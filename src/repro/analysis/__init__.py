"""Static analysis for the conversation system (``repro check`` / ``repro lint``).

Two layers share one diagnostic framework:

* :mod:`repro.analysis.space_checker` cross-validates the bootstrapped
  conversation-space artifacts (templates, logic table, dialogue tree,
  entities) against the ontology and the KB schema — at build time, not
  in front of a user;
* :mod:`repro.analysis.linter` enforces codebase invariants (lock-guarded
  shared state, injectable clocks, no swallowed exceptions, no blocking
  I/O on the request path) with custom ``ast`` checkers.

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` values;
reviewed, intentional ones are suppressed by a
:class:`~repro.analysis.baseline.Baseline` file.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineError
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    Location,
    Severity,
    error_count,
    render_json,
    render_pretty,
)
from repro.analysis.linter import (
    LintConfig,
    lint_paths,
    lint_source,
)
from repro.analysis.space_checker import SpaceArtifacts, build_artifacts, check_space

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Diagnostic",
    "DiagnosticCollector",
    "Location",
    "Severity",
    "error_count",
    "render_json",
    "render_pretty",
    "LintConfig",
    "lint_paths",
    "lint_source",
    "SpaceArtifacts",
    "build_artifacts",
    "check_space",
]
