"""Static analysis for the conversation system.

Six layers share one diagnostic framework (``repro check`` / ``lint`` /
``audit`` / ``race`` / ``purity``):

* :mod:`repro.analysis.space_checker` cross-validates the bootstrapped
  conversation-space artifacts (templates, logic table, dialogue tree,
  entities) against the ontology and the KB schema — at build time, not
  in front of a user;
* :mod:`repro.analysis.linter` enforces codebase invariants (lock-guarded
  shared state, injectable clocks, no swallowed exceptions, no blocking
  I/O on the request path) with custom ``ast`` checkers;
* :mod:`repro.analysis.type_checker` does typed symbolic evaluation over
  each template's parsed SQL AST against KB column types and value
  statistics (T001–T008);
* :mod:`repro.analysis.ambiguity` measures conversation separability —
  duplicate/near-duplicate cross-intent utterances, cross-entity synonym
  collisions, shadowed templates, stray elicitations (A001–A005);
* :mod:`repro.analysis.model` + :mod:`repro.analysis.race` build a
  whole-program model (lock identities, guarded-field sites, a call
  graph with effect summaries) and run global concurrency rules
  (R001–R004) and crash-consistency rules (D001–D003) over it;
* :mod:`repro.analysis.purity` runs replay-determinism rules
  (P001–P004: nondeterminism, order escapes, hidden state, environment
  dependence on the turn path) and exception-flow rules (X001–X003)
  over the same model, proving journal replay reproduces every turn
  byte-for-byte and no exception kills a worker mid-commit.

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` values;
reviewed, intentional ones are suppressed by a
:class:`~repro.analysis.baseline.Baseline` file, regenerable with
``repro baseline --update``.
"""

from repro.analysis.ambiguity import (
    AmbiguityConfig,
    check_ambiguity,
    check_space_ambiguity,
)
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    render_baseline,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    Location,
    Severity,
    error_count,
    render_json,
    render_pretty,
)
from repro.analysis.linter import (
    LintConfig,
    lint_paths,
    lint_source,
)
from repro.analysis.model import ProjectModel, build_model
from repro.analysis.purity import (
    PurityConfig,
    analyze_purity_model,
    check_purity_paths,
    check_purity_sources,
)
from repro.analysis.race import (
    RaceConfig,
    analyze_model,
    check_race_paths,
    check_race_sources,
)
from repro.analysis.space_checker import SpaceArtifacts, build_artifacts, check_space
from repro.analysis.type_checker import (
    check_space_types,
    check_template_types,
    check_types,
)

__all__ = [
    "AmbiguityConfig",
    "check_ambiguity",
    "check_space_ambiguity",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "render_baseline",
    "Diagnostic",
    "DiagnosticCollector",
    "Location",
    "Severity",
    "error_count",
    "render_json",
    "render_pretty",
    "LintConfig",
    "lint_paths",
    "lint_source",
    "ProjectModel",
    "build_model",
    "PurityConfig",
    "analyze_purity_model",
    "check_purity_paths",
    "check_purity_sources",
    "RaceConfig",
    "analyze_model",
    "check_race_paths",
    "check_race_sources",
    "SpaceArtifacts",
    "build_artifacts",
    "check_space",
    "check_space_types",
    "check_template_types",
    "check_types",
]
