"""Domain ontology: model, construction, inference and analysis.

The ontology is the core of the paper's system (§3): an OWL-like data
model with concepts (classes), data properties, object properties
(relationships) and the special *isA* (inheritance) and *unionOf*
semantics.  This package provides:

* :mod:`repro.ontology.model` — the ontology object model with optional
  relational bindings (concept ↔ table, property ↔ column, relationship ↔
  join path) used by the NLQ service,
* :mod:`repro.ontology.builder` — a fluent construction API (the "manual /
  SME" creation path),
* :mod:`repro.ontology.inference` — data-driven ontology generation from a
  :class:`repro.kb.Database` using PK/FK constraints and data statistics
  (the approach of reference [18]),
* :mod:`repro.ontology.graph` — graph views and centrality analysis,
* :mod:`repro.ontology.key_concepts` — key/dependent-concept identification
  via centrality + statistical segregation (reference [25]),
* :mod:`repro.ontology.serialization` — JSON round-tripping.
"""

from repro.ontology.builder import OntologyBuilder
from repro.ontology.graph import centrality_scores, ontology_graph
from repro.ontology.inference import generate_ontology
from repro.ontology.key_concepts import (
    ConceptClassification,
    identify_dependent_concepts,
    identify_key_concepts,
)
from repro.ontology.model import (
    Concept,
    DataProperty,
    JoinStep,
    ObjectProperty,
    Ontology,
)
from repro.ontology.owl import ontology_from_owl, ontology_to_owl
from repro.ontology.serialization import ontology_from_dict, ontology_to_dict

__all__ = [
    "Concept",
    "ConceptClassification",
    "DataProperty",
    "JoinStep",
    "ObjectProperty",
    "Ontology",
    "OntologyBuilder",
    "centrality_scores",
    "generate_ontology",
    "identify_dependent_concepts",
    "identify_key_concepts",
    "ontology_from_dict",
    "ontology_from_owl",
    "ontology_to_dict",
    "ontology_to_owl",
]
