"""Key- and dependent-concept identification.

§4.2.1: key concepts "can stand on their own and usually represent the
domain entities that a common user would be interested in"; they are
found by ranking concepts on a graph-centrality score and applying
*statistical segregation* to split the ranked list (reference [25]).
Dependent concepts are non-key concepts in a key concept's immediate
neighborhood that behave like categorical attributes in the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kb.database import Database
from repro.kb.statistics import (
    DEFAULT_CATEGORICAL_MAX_DISTINCT,
    DEFAULT_CATEGORICAL_RATIO,
)
from repro.ontology.graph import centrality_scores, neighbors
from repro.ontology.model import Ontology


def segregate_scores(scores: dict[str, float], top_k: int | None = None) -> list[str]:
    """Split ranked scores at their largest gap and return the upper tier.

    With ``top_k`` given, exactly the ``top_k`` highest-scoring names are
    returned instead.  Without it, names are sorted by descending score
    and the cut is placed at the largest absolute drop between adjacent
    scores (never before the first element, never cutting an empty top).
    """
    if not scores:
        return []
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    if top_k is not None:
        return [name for name, _ in ranked[: max(top_k, 0)]]
    if len(ranked) == 1:
        return [ranked[0][0]]
    gaps = [
        (ranked[i][1] - ranked[i + 1][1], i) for i in range(len(ranked) - 1)
    ]
    best_gap, cut = max(gaps, key=lambda pair: (pair[0], -pair[1]))
    if best_gap <= 0.0:
        # All scores equal: everything is equally central, keep all.
        return [name for name, _ in ranked]
    return [name for name, _ in ranked[: cut + 1]]


def identify_key_concepts(
    ontology: Ontology,
    database: Database | None = None,
    method: str = "degree",
    top_k: int | None = None,
    min_instances: int = 2,
) -> list[str]:
    """Return the key-concept names of ``ontology``.

    Centrality ranking + statistical segregation; when ``database`` is
    given, concepts whose bound table holds fewer than ``min_instances``
    rows are excluded (a key concept must have instances users ask about).
    """
    scores = centrality_scores(ontology, method=method)
    if database is not None:
        eligible = {}
        for name, score in scores.items():
            table = ontology.concept(name).table
            if table and database.has_table(table):
                if len(database.table(table)) < min_instances:
                    continue
            eligible[name] = score
        scores = eligible
    return segregate_scores(scores, top_k=top_k)


@dataclass
class ConceptClassification:
    """The outcome of key/dependent concept analysis over an ontology."""

    key_concepts: list[str]
    #: key concept -> its dependent concepts (paper: the per-key-concept
    #: lists passed to the dialogue for query completion).
    dependents_of: dict[str, list[str]] = field(default_factory=dict)
    #: dependent concept -> key concepts it describes (reverse map).
    keys_of: dict[str, list[str]] = field(default_factory=dict)
    #: dependent concepts that are union parents.
    union_dependents: set[str] = field(default_factory=set)
    #: dependent concepts that are inheritance parents.
    inheritance_dependents: set[str] = field(default_factory=set)

    def all_dependents(self) -> list[str]:
        """Every dependent concept, deduplicated, in first-seen order."""
        seen: dict[str, None] = {}
        for dependents in self.dependents_of.values():
            for name in dependents:
                seen.setdefault(name)
        return list(seen)


def _is_categorical_concept(
    ontology: Ontology,
    database: Database | None,
    concept_name: str,
    max_distinct: int,
    max_ratio: float,
) -> bool:
    """Decide whether a concept behaves like a categorical attribute.

    Uses the distinct-value statistics of the concept's label column when
    a database is available (paper §4.2.1); otherwise falls back to
    treating every non-key neighbor as dependent.
    """
    if database is None:
        return True
    concept = ontology.concept(concept_name)
    if not concept.table or not database.has_table(concept.table):
        return True
    table = database.table(concept.table)
    label_column = concept.label_column()
    if label_column is None:
        # No label column: a pure description/attribute table. Dependent.
        return True
    stats = database.statistics(concept.table).column(label_column)
    return stats.is_categorical(max_ratio=max_ratio, max_distinct=max_distinct)


def identify_dependent_concepts(
    ontology: Ontology,
    key_concepts: list[str],
    database: Database | None = None,
    max_distinct: int = DEFAULT_CATEGORICAL_MAX_DISTINCT,
    max_ratio: float = DEFAULT_CATEGORICAL_RATIO,
) -> ConceptClassification:
    """Classify every key concept's immediate neighborhood.

    For each key concept, non-key neighbors that pass the categorical
    test become its dependent concepts; union and inheritance parents
    among them are flagged (they trigger pattern augmentation in
    :mod:`repro.bootstrap.patterns`).
    """
    key_set = {k.lower() for k in key_concepts}
    result = ConceptClassification(key_concepts=list(key_concepts))
    for key_name in key_concepts:
        dependents: list[str] = []
        for neighbor in neighbors(ontology, key_name):
            if neighbor.lower() in key_set:
                continue
            if not _is_categorical_concept(
                ontology, database, neighbor, max_distinct, max_ratio
            ):
                continue
            dependents.append(neighbor)
            result.keys_of.setdefault(neighbor, [])
            if key_name not in result.keys_of[neighbor]:
                result.keys_of[neighbor].append(key_name)
            if ontology.is_union(neighbor):
                result.union_dependents.add(neighbor)
            elif ontology.is_inheritance_parent(neighbor):
                result.inheritance_dependents.add(neighbor)
        result.dependents_of[key_name] = dependents
    return result
