"""Data-driven ontology generation from a relational knowledge base.

Implements the automated creation path of §3 ("Ontology Creation",
approach 2, following reference [18]): concepts, data properties and
relationships are inferred from schema constraints (primary/foreign
keys) and data statistics:

* every non-junction table becomes a concept; its non-key columns become
  data properties,
* a foreign key becomes a functional object property from the referencing
  concept to the referenced concept,
* a *junction* table (every column is a key) becomes a many-to-many
  object property routed through the junction,
* a table whose primary key is itself a foreign key yields an *isA* edge
  (the child's instances are identified by parent instances),
* an isA family whose children *partition* the parent's instances
  (disjoint and covering, checked against the data) is promoted to a
  *unionOf* relationship.

The output ontology carries full relational bindings, so the NLQ service
can generate SQL against the same database.
"""

from __future__ import annotations

from repro.kb.database import Database
from repro.kb.schema import TableSchema
from repro.kb.table import Table
from repro.ontology.model import (
    Concept,
    DataProperty,
    JoinStep,
    ObjectProperty,
    Ontology,
)

_LABEL_CANDIDATES = ("name", "title", "label")


def concept_name_for_table(table_name: str) -> str:
    """Derive a concept name from a table name: ``drug_interaction`` →
    ``Drug Interaction``."""
    return " ".join(part.capitalize() for part in table_name.split("_"))


def _property_name_for_column(column: str) -> str:
    return column.replace("_", " ")


def _relationship_name(fk_column: str, target_concept: str) -> str:
    """Derive a readable relationship name from a foreign-key column."""
    base = fk_column
    for suffix in ("_id", "id"):
        if base.lower().endswith(suffix) and len(base) > len(suffix):
            base = base[: -len(suffix)]
            break
    base = base.strip("_").replace("_", " ").strip()
    if not base or base.lower() == target_concept.lower():
        return f"has {target_concept.lower()}"
    return base


def _is_junction(schema: TableSchema) -> bool:
    """A junction table realizes a many-to-many relationship: it has at
    least two foreign keys and no descriptive columns of its own."""
    if len(schema.foreign_keys) < 2:
        return False
    fk_columns = {fk.column.lower() for fk in schema.foreign_keys}
    for col in schema.columns:
        low = col.name.lower()
        if low in fk_columns:
            continue
        if schema.primary_key and low == schema.primary_key.lower():
            continue
        return False
    return True


def _pick_label_column(table: Table) -> str | None:
    schema = table.schema
    key_columns = {fk.column.lower() for fk in schema.foreign_keys}
    if schema.primary_key:
        key_columns.add(schema.primary_key.lower())
    for candidate in _LABEL_CANDIDATES:
        if schema.has_column(candidate) and candidate not in key_columns:
            return schema.column(candidate).name
    for col in schema.columns:
        if col.name.lower() in key_columns:
            continue
        if col.data_type.value == "text":
            return col.name
    return None


def _isa_parent(schema: TableSchema) -> str | None:
    """If the table's primary key is also a foreign key, return the
    referenced (parent) table name."""
    if schema.primary_key is None:
        return None
    fk = schema.foreign_key_for(schema.primary_key)
    return fk.referenced_table if fk else None


def _children_partition_parent(
    database: Database, parent_table: str, child_tables: list[str]
) -> bool:
    """Check that the child PK sets are disjoint and cover the parent."""
    parent = database.table(parent_table)
    if parent.schema.primary_key is None:
        return False
    parent_keys = set(parent.column_values(parent.schema.primary_key))
    if not parent_keys:
        return False
    seen: set = set()
    for child_name in child_tables:
        child = database.table(child_name)
        if child.schema.primary_key is None:
            return False
        child_keys = set(child.column_values(child.schema.primary_key))
        if child_keys & seen:
            return False  # overlapping members: plain inheritance, not union
        seen |= child_keys
    return seen == parent_keys


def generate_ontology(database: Database, name: str | None = None) -> Ontology:
    """Generate a fully-bound ontology from ``database``.

    The result is the starting point of the paper's *hybrid* approach:
    SMEs subsequently refine names, add synonyms and prune via
    :class:`~repro.ontology.builder.OntologyBuilder`-style mutation or
    :mod:`repro.bootstrap.sme` feedback.
    """
    ontology = Ontology(name or f"{database.name}-ontology")
    junctions: list[Table] = []

    # Pass 1: concepts with data properties.
    for table in database.tables():
        schema = table.schema
        if _is_junction(schema):
            junctions.append(table)
            continue
        concept = Concept(
            name=concept_name_for_table(schema.name),
            table=schema.name,
        )
        key_columns = {fk.column.lower() for fk in schema.foreign_keys}
        if schema.primary_key:
            key_columns.add(schema.primary_key.lower())
        for col in schema.columns:
            if col.name.lower() in key_columns:
                continue
            concept.add_data_property(
                DataProperty(
                    name=_property_name_for_column(col.name),
                    data_type=col.data_type,
                    column=col.name,
                )
            )
        label_column = _pick_label_column(table)
        if label_column is not None:
            concept.label_property = _property_name_for_column(label_column)
        ontology.add_concept(concept)

    table_to_concept = {
        c.table.lower(): c.name for c in ontology.concepts() if c.table
    }

    # Pass 2: isA edges from PK-as-FK tables.
    isa_children: dict[str, list[str]] = {}
    for table in database.tables():
        schema = table.schema
        if _is_junction(schema):
            continue
        parent_table = _isa_parent(schema)
        if parent_table and parent_table.lower() in table_to_concept:
            child_concept = table_to_concept[schema.name.lower()]
            parent_concept = table_to_concept[parent_table.lower()]
            if child_concept != parent_concept:
                ontology.add_isa(child_concept, parent_concept)
                isa_children.setdefault(parent_table.lower(), []).append(schema.name)

    # Pass 3: promote partitioning isA families to unions.
    for parent_table, children in isa_children.items():
        if len(children) >= 2 and _children_partition_parent(
            database, parent_table, children
        ):
            parent_concept = table_to_concept[parent_table]
            member_concepts = [table_to_concept[c.lower()] for c in children]
            ontology.add_union(parent_concept, member_concepts)

    # Pass 4: foreign keys → functional object properties.
    for table in database.tables():
        schema = table.schema
        if _is_junction(schema):
            continue
        source_concept = table_to_concept[schema.name.lower()]
        for fk in schema.foreign_keys:
            if schema.primary_key and fk.column.lower() == schema.primary_key.lower():
                continue  # isA edge, already handled
            target_table = fk.referenced_table.lower()
            if target_table not in table_to_concept:
                continue
            target_concept = table_to_concept[target_table]
            rel_name = _relationship_name(fk.column, target_concept)
            prop = ObjectProperty(
                name=rel_name,
                source=source_concept,
                target=target_concept,
                inverse_name=f"has {source_concept.lower()}",
                functional=True,
                join_path=(
                    JoinStep(
                        schema.name,
                        fk.column,
                        fk.referenced_table,
                        fk.referenced_column,
                    ),
                ),
            )
            ontology.add_object_property(prop)

    # Pass 5: junction tables → many-to-many object properties.
    for junction in junctions:
        schema = junction.schema
        fks = schema.foreign_keys
        left_fk, right_fk = fks[0], fks[1]
        left_table = left_fk.referenced_table.lower()
        right_table = right_fk.referenced_table.lower()
        if left_table not in table_to_concept or right_table not in table_to_concept:
            continue
        source_concept = table_to_concept[left_table]
        target_concept = table_to_concept[right_table]
        rel_name = schema.name.replace("_", " ")
        prop = ObjectProperty(
            name=rel_name,
            source=source_concept,
            target=target_concept,
            inverse_name=f"{rel_name} (inverse)",
            functional=False,
            join_path=(
                JoinStep(
                    left_fk.referenced_table,
                    left_fk.referenced_column,
                    schema.name,
                    left_fk.column,
                ),
                JoinStep(
                    schema.name,
                    right_fk.column,
                    right_fk.referenced_table,
                    right_fk.referenced_column,
                ),
            ),
        )
        ontology.add_object_property(prop)

    return ontology
