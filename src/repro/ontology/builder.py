"""Fluent construction API for ontologies.

This is the "manual / SME" path of the paper's hybrid ontology-creation
process: a subject-matter expert (or a test) declares concepts and
relationships directly.
"""

from __future__ import annotations

from repro.kb.types import DataType
from repro.ontology.model import (
    Concept,
    DataProperty,
    JoinStep,
    ObjectProperty,
    Ontology,
)


class OntologyBuilder:
    """Builds an :class:`~repro.ontology.model.Ontology` step by step.

    Example
    -------
    >>> onto = (
    ...     OntologyBuilder("medical")
    ...     .concept("Drug", properties=["name", "brand"], label="name")
    ...     .concept("Indication", properties=["name"], label="name")
    ...     .relationship("treats", "Drug", "Indication",
    ...                   inverse="is treated by")
    ...     .build()
    ... )
    >>> onto.summary()["concepts"]
    2
    """

    def __init__(self, name: str = "ontology") -> None:
        self._ontology = Ontology(name)

    def concept(
        self,
        name: str,
        properties: list[str | tuple[str, DataType]] | None = None,
        label: str | None = None,
        table: str | None = None,
        synonyms: list[str] | None = None,
        description: str = "",
    ) -> "OntologyBuilder":
        """Add a concept with simple property declarations.

        ``properties`` entries are either a property name (TEXT assumed)
        or a ``(name, DataType)`` pair.  When ``table`` is given, each
        property is bound to a same-named column.
        """
        concept = Concept(
            name=name,
            table=table,
            label_property=label,
            synonyms=list(synonyms or []),
            description=description,
        )
        for entry in properties or []:
            if isinstance(entry, tuple):
                prop_name, data_type = entry
            else:
                prop_name, data_type = entry, DataType.TEXT
            concept.add_data_property(
                DataProperty(
                    name=prop_name,
                    data_type=data_type,
                    column=prop_name if table else None,
                )
            )
        self._ontology.add_concept(concept)
        return self

    def relationship(
        self,
        name: str,
        source: str,
        target: str,
        inverse: str | None = None,
        functional: bool = False,
        join_path: list[JoinStep] | None = None,
        description: str = "",
    ) -> "OntologyBuilder":
        """Add an object property between two declared concepts."""
        self._ontology.add_object_property(
            ObjectProperty(
                name=name,
                source=source,
                target=target,
                inverse_name=inverse,
                functional=functional,
                join_path=tuple(join_path or ()),
                description=description,
            )
        )
        return self

    def isa(self, child: str, parent: str) -> "OntologyBuilder":
        """Declare an inheritance edge."""
        self._ontology.add_isa(child, parent)
        return self

    def union(self, parent: str, members: list[str]) -> "OntologyBuilder":
        """Declare a union concept."""
        self._ontology.add_union(parent, members)
        return self

    def build(self) -> Ontology:
        """Return the constructed ontology."""
        return self._ontology
