"""JSON (de)serialization of ontologies.

The paper's SME tooling annotates "the OWL description" of the ontology;
we use a JSON document with the same information content so ontologies
can be stored, diffed and annotated without an OWL parser.
"""

from __future__ import annotations

from typing import Any

from repro.errors import OntologyError
from repro.kb.types import DataType
from repro.ontology.model import (
    Concept,
    DataProperty,
    JoinStep,
    ObjectProperty,
    Ontology,
)


def ontology_to_dict(ontology: Ontology) -> dict[str, Any]:
    """Serialize ``ontology`` to a plain JSON-compatible dict."""
    return {
        "name": ontology.name,
        "concepts": [
            {
                "name": c.name,
                "table": c.table,
                "label_property": c.label_property,
                "synonyms": list(c.synonyms),
                "description": c.description,
                "data_properties": [
                    {
                        "name": p.name,
                        "data_type": p.data_type.value,
                        "column": p.column,
                        "description": p.description,
                    }
                    for p in c.data_properties.values()
                ],
            }
            for c in ontology.concepts()
        ],
        "object_properties": [
            {
                "name": p.name,
                "source": p.source,
                "target": p.target,
                "inverse_name": p.inverse_name,
                "functional": p.functional,
                "description": p.description,
                "join_path": [
                    [s.left_table, s.left_column, s.right_table, s.right_column]
                    for s in p.join_path
                ],
            }
            for p in ontology.object_properties()
        ],
        "isa": [[child, parent] for child, parent in ontology.isa_edges()],
        "unions": {
            c.name: ontology.union_members(c.name)
            for c in ontology.concepts()
            if ontology.is_union(c.name)
        },
    }


def ontology_from_dict(data: dict[str, Any]) -> Ontology:
    """Reconstruct an ontology serialized by :func:`ontology_to_dict`."""
    try:
        ontology = Ontology(data.get("name", "ontology"))
        for cdata in data["concepts"]:
            concept = Concept(
                name=cdata["name"],
                table=cdata.get("table"),
                label_property=cdata.get("label_property"),
                synonyms=list(cdata.get("synonyms", [])),
                description=cdata.get("description", ""),
            )
            for pdata in cdata.get("data_properties", []):
                concept.add_data_property(
                    DataProperty(
                        name=pdata["name"],
                        data_type=DataType(pdata.get("data_type", "text")),
                        column=pdata.get("column"),
                        description=pdata.get("description", ""),
                    )
                )
            ontology.add_concept(concept)
        for pdata in data.get("object_properties", []):
            ontology.add_object_property(
                ObjectProperty(
                    name=pdata["name"],
                    source=pdata["source"],
                    target=pdata["target"],
                    inverse_name=pdata.get("inverse_name"),
                    functional=pdata.get("functional", False),
                    description=pdata.get("description", ""),
                    join_path=tuple(
                        JoinStep(*step) for step in pdata.get("join_path", [])
                    ),
                )
            )
        for child, parent in data.get("isa", []):
            ontology.add_isa(child, parent)
        for parent, members in data.get("unions", {}).items():
            ontology.add_union(parent, members)
    except KeyError as exc:
        raise OntologyError(f"malformed ontology document: missing {exc}") from exc
    return ontology
