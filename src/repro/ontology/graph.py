"""Graph views of an ontology and centrality analysis.

§4.2.1: "To determine these key concepts, we run a centrality analysis of
the ontology graph, and rank the concepts according to a centrality
score."  The graph here treats every concept as a node and every
object-property / isA / unionOf edge as an (undirected, for centrality
purposes) connection.
"""

from __future__ import annotations

import networkx as nx

from repro.ontology.model import Ontology


def ontology_graph(ontology: Ontology) -> nx.MultiDiGraph:
    """Build a directed multigraph: nodes = concepts, edges = relationships.

    Edge attribute ``kind`` is one of ``"object_property"``, ``"isa"`` or
    ``"union"``; object-property edges also carry ``name``.
    """
    graph = nx.MultiDiGraph(name=ontology.name)
    for concept in ontology.concepts():
        graph.add_node(
            concept.name,
            n_properties=len(concept.data_properties),
            table=concept.table,
        )
    for prop in ontology.object_properties():
        graph.add_edge(
            ontology.concept(prop.source).name,
            ontology.concept(prop.target).name,
            kind="object_property",
            name=prop.name,
        )
    for child, parent in ontology.isa_edges():
        graph.add_edge(child, parent, kind="isa")
    for member, parent in ontology.union_edges():
        graph.add_edge(member, parent, kind="union")
    return graph


def centrality_scores(
    ontology: Ontology, method: str = "degree"
) -> dict[str, float]:
    """Centrality score per concept name.

    ``method`` selects the measure:

    * ``"degree"`` — degree centrality over the undirected view (default;
      key concepts are the hubs with many attached relationships),
    * ``"pagerank"`` — PageRank over the undirected view,
    * ``"betweenness"`` — betweenness centrality.
    """
    graph = ontology_graph(ontology)
    undirected = nx.Graph()
    undirected.add_nodes_from(graph.nodes)
    undirected.add_edges_from((u, v) for u, v, _ in graph.edges(keys=True))
    if method == "degree":
        # Count parallel relationships: use the multigraph degree, normalized.
        n = max(len(graph) - 1, 1)
        totals: dict[str, float] = {node: 0.0 for node in graph.nodes}
        for u, v, _ in graph.edges(keys=True):
            totals[u] += 1.0
            totals[v] += 1.0
        return {node: total / n for node, total in totals.items()}
    if method == "pagerank":
        if undirected.number_of_edges() == 0:
            return {node: 1.0 / max(len(undirected), 1) for node in undirected}
        return dict(nx.pagerank(undirected))
    if method == "betweenness":
        return dict(nx.betweenness_centrality(undirected))
    raise ValueError(f"unknown centrality method: {method!r}")


def neighbors(ontology: Ontology, concept: str) -> list[str]:
    """Concept names in the immediate (undirected) neighborhood of ``concept``."""
    graph = ontology_graph(ontology)
    name = ontology.concept(concept).name
    out: dict[str, None] = {}
    for _, v, _ in graph.out_edges(name, keys=True):
        out.setdefault(v)
    for u, _, _ in graph.in_edges(name, keys=True):
        out.setdefault(u)
    out.pop(name, None)
    return list(out)
