"""OWL (RDF/XML) serialization of ontologies.

§3: "OWL is a popular language to describe ontologies" and the SME
tooling annotates "the OWL description" of the ontology.  This module
writes a standards-shaped OWL document — ``owl:Class``,
``owl:DatatypeProperty``, ``owl:ObjectProperty``, ``rdfs:subClassOf``,
``owl:unionOf`` — and reads it back.  Relational bindings (tables,
columns, join paths), which OWL has no vocabulary for, ride along as
custom annotation properties in the ``repro:`` namespace so the round
trip is lossless.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.errors import OntologyError
from repro.kb.types import DataType
from repro.ontology.model import (
    Concept,
    DataProperty,
    JoinStep,
    ObjectProperty,
    Ontology,
)

RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
RDFS_NS = "http://www.w3.org/2000/01/rdf-schema#"
OWL_NS = "http://www.w3.org/2002/07/owl#"
XSD_NS = "http://www.w3.org/2001/XMLSchema#"
REPRO_NS = "http://repro.example.org/ontology#"

_XSD_BY_TYPE = {
    DataType.TEXT: f"{XSD_NS}string",
    DataType.INTEGER: f"{XSD_NS}integer",
    DataType.FLOAT: f"{XSD_NS}double",
    DataType.BOOLEAN: f"{XSD_NS}boolean",
}
_TYPE_BY_XSD = {v: k for k, v in _XSD_BY_TYPE.items()}


def _iri(name: str) -> str:
    return REPRO_NS + name.replace(" ", "_")


def _local(iri: str) -> str:
    return iri.rsplit("#", 1)[-1].replace("_", " ")


def _q(ns: str, tag: str) -> str:
    return f"{{{ns}}}{tag}"


def ontology_to_owl(ontology: Ontology) -> str:
    """Serialize ``ontology`` to an OWL RDF/XML document string."""
    ET.register_namespace("rdf", RDF_NS)
    ET.register_namespace("rdfs", RDFS_NS)
    ET.register_namespace("owl", OWL_NS)
    ET.register_namespace("repro", REPRO_NS)
    root = ET.Element(_q(RDF_NS, "RDF"))

    header = ET.SubElement(root, _q(OWL_NS, "Ontology"))
    header.set(_q(RDF_NS, "about"), REPRO_NS + ontology.name.replace(" ", "_"))
    name_el = ET.SubElement(header, _q(RDFS_NS, "label"))
    name_el.text = ontology.name

    for concept in ontology.concepts():
        cls = ET.SubElement(root, _q(OWL_NS, "Class"))
        cls.set(_q(RDF_NS, "about"), _iri(concept.name))
        label = ET.SubElement(cls, _q(RDFS_NS, "label"))
        label.text = concept.name
        if concept.description:
            comment = ET.SubElement(cls, _q(RDFS_NS, "comment"))
            comment.text = concept.description
        parent = ontology.parent_of(concept.name)
        if parent:
            sub = ET.SubElement(cls, _q(RDFS_NS, "subClassOf"))
            sub.set(_q(RDF_NS, "resource"), _iri(parent))
        if ontology.is_union(concept.name):
            # owl:unionOf with an rdf:parseType="Collection" member list.
            equivalent = ET.SubElement(cls, _q(OWL_NS, "equivalentClass"))
            union_class = ET.SubElement(equivalent, _q(OWL_NS, "Class"))
            union_of = ET.SubElement(union_class, _q(OWL_NS, "unionOf"))
            union_of.set(_q(RDF_NS, "parseType"), "Collection")
            for member in ontology.union_members(concept.name):
                desc = ET.SubElement(union_of, _q(RDF_NS, "Description"))
                desc.set(_q(RDF_NS, "about"), _iri(member))
        if concept.table:
            table = ET.SubElement(cls, _q(REPRO_NS, "table"))
            table.text = concept.table
        if concept.label_property:
            label_prop = ET.SubElement(cls, _q(REPRO_NS, "labelProperty"))
            label_prop.text = concept.label_property
        for synonym in concept.synonyms:
            alt = ET.SubElement(cls, _q(REPRO_NS, "synonym"))
            alt.text = synonym

        for prop in concept.data_properties.values():
            dp = ET.SubElement(root, _q(OWL_NS, "DatatypeProperty"))
            dp.set(
                _q(RDF_NS, "about"),
                _iri(f"{concept.name}.{prop.name}"),
            )
            dp_label = ET.SubElement(dp, _q(RDFS_NS, "label"))
            dp_label.text = prop.name
            domain = ET.SubElement(dp, _q(RDFS_NS, "domain"))
            domain.set(_q(RDF_NS, "resource"), _iri(concept.name))
            range_el = ET.SubElement(dp, _q(RDFS_NS, "range"))
            range_el.set(_q(RDF_NS, "resource"), _XSD_BY_TYPE[prop.data_type])
            if prop.column:
                column = ET.SubElement(dp, _q(REPRO_NS, "column"))
                column.text = prop.column
            if prop.description:
                comment = ET.SubElement(dp, _q(RDFS_NS, "comment"))
                comment.text = prop.description

    for index, prop in enumerate(ontology.object_properties()):
        op = ET.SubElement(root, _q(OWL_NS, "ObjectProperty"))
        op.set(_q(RDF_NS, "about"), _iri(f"op{index}.{prop.name}"))
        op_label = ET.SubElement(op, _q(RDFS_NS, "label"))
        op_label.text = prop.name
        domain = ET.SubElement(op, _q(RDFS_NS, "domain"))
        domain.set(_q(RDF_NS, "resource"), _iri(prop.source))
        range_el = ET.SubElement(op, _q(RDFS_NS, "range"))
        range_el.set(_q(RDF_NS, "resource"), _iri(prop.target))
        if prop.inverse_name:
            inverse = ET.SubElement(op, _q(REPRO_NS, "inverseName"))
            inverse.text = prop.inverse_name
        if prop.functional:
            type_el = ET.SubElement(op, _q(RDF_NS, "type"))
            type_el.set(
                _q(RDF_NS, "resource"), f"{OWL_NS}FunctionalProperty"
            )
        if prop.join_path:
            join = ET.SubElement(op, _q(REPRO_NS, "joinPath"))
            join.text = json.dumps([
                [s.left_table, s.left_column, s.right_table, s.right_column]
                for s in prop.join_path
            ])
        if prop.description:
            comment = ET.SubElement(op, _q(RDFS_NS, "comment"))
            comment.text = prop.description

    raw = ET.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ")


def ontology_from_owl(document: str) -> Ontology:
    """Reconstruct an ontology from :func:`ontology_to_owl` output."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise OntologyError(f"invalid OWL document: {exc}") from exc

    header = root.find(_q(OWL_NS, "Ontology"))
    name = "ontology"
    if header is not None:
        label = header.find(_q(RDFS_NS, "label"))
        if label is not None and label.text:
            name = label.text
    ontology = Ontology(name)

    subclass_edges: list[tuple[str, str]] = []
    unions: dict[str, list[str]] = {}

    for cls in root.findall(_q(OWL_NS, "Class")):
        label = cls.find(_q(RDFS_NS, "label"))
        if label is None or not label.text:
            continue
        concept = Concept(name=label.text)
        comment = cls.find(_q(RDFS_NS, "comment"))
        if comment is not None and comment.text:
            concept.description = comment.text
        table = cls.find(_q(REPRO_NS, "table"))
        if table is not None and table.text:
            concept.table = table.text
        label_prop = cls.find(_q(REPRO_NS, "labelProperty"))
        if label_prop is not None and label_prop.text:
            concept.label_property = label_prop.text
        for synonym in cls.findall(_q(REPRO_NS, "synonym")):
            if synonym.text:
                concept.synonyms.append(synonym.text)
        ontology.add_concept(concept)

        sub = cls.find(_q(RDFS_NS, "subClassOf"))
        if sub is not None:
            parent = sub.get(_q(RDF_NS, "resource"))
            if parent:
                subclass_edges.append((concept.name, _local(parent)))
        union_of = cls.find(
            f"{_q(OWL_NS, 'equivalentClass')}/{_q(OWL_NS, 'Class')}/"
            f"{_q(OWL_NS, 'unionOf')}"
        )
        if union_of is not None:
            members = [
                _local(d.get(_q(RDF_NS, "about"), ""))
                for d in union_of.findall(_q(RDF_NS, "Description"))
            ]
            unions[concept.name] = [m for m in members if m]

    for dp in root.findall(_q(OWL_NS, "DatatypeProperty")):
        label = dp.find(_q(RDFS_NS, "label"))
        domain = dp.find(_q(RDFS_NS, "domain"))
        if label is None or not label.text or domain is None:
            continue
        concept_name = _local(domain.get(_q(RDF_NS, "resource"), ""))
        if not ontology.has_concept(concept_name):
            continue
        range_el = dp.find(_q(RDFS_NS, "range"))
        xsd = range_el.get(_q(RDF_NS, "resource"), "") if range_el is not None else ""
        column = dp.find(_q(REPRO_NS, "column"))
        comment = dp.find(_q(RDFS_NS, "comment"))
        ontology.concept(concept_name).add_data_property(DataProperty(
            name=label.text,
            data_type=_TYPE_BY_XSD.get(xsd, DataType.TEXT),
            column=column.text if column is not None else None,
            description=(comment.text or "") if comment is not None else "",
        ))

    for op in root.findall(_q(OWL_NS, "ObjectProperty")):
        label = op.find(_q(RDFS_NS, "label"))
        domain = op.find(_q(RDFS_NS, "domain"))
        range_el = op.find(_q(RDFS_NS, "range"))
        if label is None or not label.text or domain is None or range_el is None:
            continue
        inverse = op.find(_q(REPRO_NS, "inverseName"))
        join = op.find(_q(REPRO_NS, "joinPath"))
        join_path: tuple[JoinStep, ...] = ()
        if join is not None and join.text:
            join_path = tuple(JoinStep(*step) for step in json.loads(join.text))
        functional = any(
            t.get(_q(RDF_NS, "resource")) == f"{OWL_NS}FunctionalProperty"
            for t in op.findall(_q(RDF_NS, "type"))
        )
        comment = op.find(_q(RDFS_NS, "comment"))
        ontology.add_object_property(ObjectProperty(
            name=label.text,
            source=_local(domain.get(_q(RDF_NS, "resource"), "")),
            target=_local(range_el.get(_q(RDF_NS, "resource"), "")),
            inverse_name=inverse.text if inverse is not None else None,
            functional=functional,
            join_path=join_path,
            description=(comment.text or "") if comment is not None else "",
        ))

    for child, parent in subclass_edges:
        if ontology.has_concept(parent):
            ontology.add_isa(child, parent)
    for parent, members in unions.items():
        if len(members) >= 2:
            ontology.add_union(parent, members)
    return ontology
