"""The ontology object model.

Follows the OWL vocabulary used in §3 of the paper: a *concept* is a
class, a *data property* is a typed attribute of a concept, an *object
property* is a named relationship between two concepts, and the special
*isA* (subsumption/inheritance) and *unionOf* semantics relate concepts
to each other.

Each element optionally carries a **relational binding** that records how
it is realized in the knowledge base (concept → table, data property →
column, object property → a sequence of equi-join steps).  The NLQ
service uses these bindings to generate SQL; a purely conceptual ontology
without bindings is also valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DuplicateElementError, OntologyError, UnknownConceptError
from repro.kb.types import DataType


@dataclass(frozen=True)
class JoinStep:
    """One equi-join step: ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def reversed(self) -> "JoinStep":
        """The same step read in the opposite direction."""
        return JoinStep(
            self.right_table, self.right_column, self.left_table, self.left_column
        )


@dataclass
class DataProperty:
    """A typed attribute of a concept (OWL data property)."""

    name: str
    data_type: DataType = DataType.TEXT
    column: str | None = None  # relational binding
    description: str = ""


@dataclass
class Concept:
    """An ontology class.

    Parameters
    ----------
    name:
        Human-readable concept name, e.g. ``"Drug"`` or
        ``"Black Box Warning"``.  Unique within the ontology.
    data_properties:
        The concept's typed attributes, keyed by property name.
    table:
        Relational binding: the KB table storing this concept's instances.
    label_property:
        The data property whose values name instances (used to harvest
        entity examples, e.g. ``Drug.name`` → "Aspirin").
    synonyms:
        Domain vocabulary for this concept ("medication" for "Drug").
    description:
        One-line documentation, surfaced by definition-request repair.
    """

    name: str
    data_properties: dict[str, DataProperty] = field(default_factory=dict)
    table: str | None = None
    label_property: str | None = None
    synonyms: list[str] = field(default_factory=list)
    description: str = ""

    def add_data_property(self, prop: DataProperty) -> None:
        key = prop.name.lower()
        if key in {p.lower() for p in self.data_properties}:
            raise DuplicateElementError(
                f"concept {self.name!r} already has data property {prop.name!r}"
            )
        self.data_properties[prop.name] = prop

    def property(self, name: str) -> DataProperty:
        for prop_name, prop in self.data_properties.items():
            if prop_name.lower() == name.lower():
                return prop
        raise OntologyError(
            f"concept {self.name!r} has no data property {name!r}"
        )

    def label_column(self) -> str | None:
        """The bound column of the label property, if both are set."""
        if self.label_property is None:
            return None
        prop = self.data_properties.get(self.label_property)
        return prop.column if prop else None


@dataclass
class ObjectProperty:
    """A named relationship between two concepts (OWL object property).

    ``name`` reads in the forward direction (Drug —treats→ Indication);
    ``inverse_name`` reads backwards ("is treated by").  ``functional``
    marks many-to-one relationships.  ``join_path`` is the relational
    binding: the equi-join steps leading from the source concept's table
    to the target concept's table.
    """

    name: str
    source: str
    target: str
    inverse_name: str | None = None
    functional: bool = False
    join_path: tuple[JoinStep, ...] = ()
    description: str = ""

    def reversed_path(self) -> tuple[JoinStep, ...]:
        """The join path read from target back to source."""
        return tuple(step.reversed() for step in reversed(self.join_path))


class Ontology:
    """A domain ontology: concepts, object properties, isA and unionOf.

    All lookups are case-insensitive on concept names.  Structural
    mutation goes through the ``add_*`` methods, which validate
    referential integrity.
    """

    def __init__(self, name: str = "ontology") -> None:
        self.name = name
        self._concepts: dict[str, Concept] = {}
        self._object_properties: list[ObjectProperty] = []
        self._isa: dict[str, str] = {}          # child -> parent (lowercase keys)
        self._unions: dict[str, list[str]] = {}  # parent -> member names

    # -- concepts -----------------------------------------------------------

    def add_concept(self, concept: Concept) -> Concept:
        key = concept.name.lower()
        if key in self._concepts:
            raise DuplicateElementError(f"concept {concept.name!r} already exists")
        self._concepts[key] = concept
        return concept

    def has_concept(self, name: str) -> bool:
        return name.lower() in self._concepts

    def concept(self, name: str) -> Concept:
        try:
            return self._concepts[name.lower()]
        except KeyError:
            raise UnknownConceptError(name) from None

    def concepts(self) -> list[Concept]:
        """All concepts in insertion order."""
        return list(self._concepts.values())

    def concept_names(self) -> list[str]:
        return [c.name for c in self._concepts.values()]

    # -- object properties -----------------------------------------------------

    def add_object_property(self, prop: ObjectProperty) -> ObjectProperty:
        if not self.has_concept(prop.source):
            raise UnknownConceptError(prop.source)
        if not self.has_concept(prop.target):
            raise UnknownConceptError(prop.target)
        for existing in self._object_properties:
            if (
                existing.name.lower() == prop.name.lower()
                and existing.source.lower() == prop.source.lower()
                and existing.target.lower() == prop.target.lower()
            ):
                raise DuplicateElementError(
                    f"object property {prop.name!r} from {prop.source!r} "
                    f"to {prop.target!r} already exists"
                )
        self._object_properties.append(prop)
        return prop

    def object_properties(self) -> list[ObjectProperty]:
        return list(self._object_properties)

    def properties_between(self, source: str, target: str) -> list[ObjectProperty]:
        """Object properties from ``source`` to ``target`` (forward only)."""
        src = source.lower()
        tgt = target.lower()
        return [
            p
            for p in self._object_properties
            if p.source.lower() == src and p.target.lower() == tgt
        ]

    def properties_of(self, concept: str) -> list[ObjectProperty]:
        """Object properties where ``concept`` is source or target."""
        key = concept.lower()
        return [
            p
            for p in self._object_properties
            if p.source.lower() == key or p.target.lower() == key
        ]

    # -- isA / union semantics ---------------------------------------------------

    def add_isa(self, child: str, parent: str) -> None:
        """Declare ``child`` isA ``parent``."""
        if not self.has_concept(child):
            raise UnknownConceptError(child)
        if not self.has_concept(parent):
            raise UnknownConceptError(parent)
        if child.lower() == parent.lower():
            raise OntologyError(f"concept {child!r} cannot be its own parent")
        # Reject cycles: walk up from the proposed parent.
        cursor: str | None = parent.lower()
        while cursor is not None:
            if cursor == child.lower():
                raise OntologyError(
                    f"isA cycle: {child!r} is already an ancestor of {parent!r}"
                )
            cursor = self._isa.get(cursor)
        self._isa[child.lower()] = parent.lower()

    def add_union(self, parent: str, members: list[str]) -> None:
        """Declare ``parent`` as the union of ``members`` (mutually exclusive)."""
        if not self.has_concept(parent):
            raise UnknownConceptError(parent)
        if len(members) < 2:
            raise OntologyError("a union needs at least two members")
        for member in members:
            if not self.has_concept(member):
                raise UnknownConceptError(member)
            if member.lower() == parent.lower():
                raise OntologyError("a union cannot contain its own parent")
        self._unions[parent.lower()] = [m for m in members]

    def parent_of(self, child: str) -> str | None:
        """The isA parent concept name of ``child``, or None."""
        parent_key = self._isa.get(child.lower())
        return self._concepts[parent_key].name if parent_key else None

    def children_of(self, parent: str) -> list[str]:
        """Concept names declared isA ``parent``."""
        key = parent.lower()
        return [
            self._concepts[child].name
            for child, par in self._isa.items()
            if par == key
        ]

    def union_members(self, parent: str) -> list[str]:
        """Member concept names when ``parent`` is a union, else empty."""
        members = self._unions.get(parent.lower(), [])
        return [self.concept(m).name for m in members]

    def is_union(self, name: str) -> bool:
        return name.lower() in self._unions

    def is_inheritance_parent(self, name: str) -> bool:
        return bool(self.children_of(name))

    def isa_edges(self) -> list[tuple[str, str]]:
        """(child, parent) concept-name pairs."""
        return [
            (self._concepts[c].name, self._concepts[p].name)
            for c, p in self._isa.items()
        ]

    def union_edges(self) -> list[tuple[str, str]]:
        """(member, parent) concept-name pairs for every union."""
        out = []
        for parent, members in self._unions.items():
            for member in members:
                out.append((self.concept(member).name, self._concepts[parent].name))
        return out

    # -- summary ---------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Element counts, comparable to §6.1's "59 concepts, 178 properties,
        58 relationships"."""
        n_props = sum(len(c.data_properties) for c in self._concepts.values())
        n_relationships = (
            len(self._object_properties) + len(self._isa) + len(self.union_edges())
        )
        return {
            "concepts": len(self._concepts),
            "data_properties": n_props,
            "relationships": n_relationships,
            "object_properties": len(self._object_properties),
            "isa_edges": len(self._isa),
            "union_edges": len(self.union_edges()),
        }
