"""Serving metrics: lock-protected counters and latency histograms.

The deployed system (§7) is judged on interactive latency under real
clinician traffic, so the serving layer keeps its own operational
telemetry — per-intent turn latency, classifier latency, query-cache
hit rate, session churn, plus the query-execution gauges the app wires
up (plan-cache hits/misses, secondary-index builds, the KB generation
counter) — and renders it in a Prometheus-style text format at
``GET /metrics``.  Everything here is stdlib-only and safe to update
from many request threads at once.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from typing import Callable, Iterable

#: Default latency bucket upper bounds, in seconds.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0
)

#: How many raw observations a histogram retains for exact quantiles.
#: Beyond this the reservoir drops the oldest sample (sliding window).
RESERVOIR_SIZE = 4096


class Counter:
    """A monotonically increasing, thread-safe counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Histogram:
    """A thread-safe latency histogram with exact sliding-window quantiles.

    Keeps cumulative bucket counts (for the rendered ``_bucket`` series)
    plus a bounded reservoir of raw observations ordered by value, so
    :meth:`quantile` is exact over the most recent ``RESERVOIR_SIZE``
    samples rather than interpolated from bucket bounds.
    """

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self._lock = threading.Lock()
        self.buckets = tuple(sorted(buckets))
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # +Inf tail
        self.count = 0
        self.sum = 0.0
        self._window: list[float] = []   # insertion order (oldest first)
        self._ordered: list[float] = []  # same samples, sorted

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break
            else:
                self._bucket_counts[-1] += 1
            self._window.append(value)
            insort(self._ordered, value)
            if len(self._window) > RESERVOIR_SIZE:
                oldest = self._window.pop(0)
                # Remove one occurrence of the oldest sample from the
                # ordered view; identical floats are interchangeable.
                self._ordered.pop(bisect_left(self._ordered, oldest))

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the retained samples (0.0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            if not self._ordered:
                return 0.0
            index = min(len(self._ordered) - 1, int(q * len(self._ordered)))
            return self._ordered[index]

    def snapshot(self) -> dict[str, float]:
        """count/sum/p50/p95/p99 in one consistent read."""
        with self._lock:
            ordered = self._ordered
            out = {"count": float(self.count), "sum": self.sum}
            for name, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
                if ordered:
                    out[name] = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
                else:
                    out[name] = 0.0
            return out

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs, ending with +Inf."""
        with self._lock:
            cumulative, out = 0, []
            for bound, count in zip(self.buckets, self._bucket_counts):
                cumulative += count
                out.append((bound, cumulative))
            out.append((float("inf"), cumulative + self._bucket_counts[-1]))
            return out


class MetricsRegistry:
    """A named collection of counters, histograms and gauge callbacks.

    Families are addressed by metric name plus an optional single
    ``(label_name, label_value)`` pair — enough to key per-intent latency
    and per-route request counts without a full label model.
    """

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, tuple[str, str] | None], Counter] = {}
        self._histograms: dict[tuple[str, tuple[str, str] | None], Histogram] = {}
        self._gauges: dict[tuple[str, tuple[str, str] | None], Callable[[], float]] = {}

    def counter(
        self, name: str, label: tuple[str, str] | None = None
    ) -> Counter:
        key = (name, label)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter()
            return self._counters[key]

    def histogram(
        self,
        name: str,
        label: tuple[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = (name, label)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram(buckets)
            return self._histograms[key]

    def gauge(
        self,
        name: str,
        read: Callable[[], float],
        label: tuple[str, str] | None = None,
    ) -> None:
        """Register a live-value gauge; ``read`` is called at render time.

        Like counters/histograms, one optional ``(name, value)`` label
        pair distinguishes gauge families (e.g. per-path plan counts,
        per-backend info gauges).
        """
        with self._lock:
            self._gauges[(name, label)] = read

    # -- rendering -----------------------------------------------------------

    @staticmethod
    def _labels(label: tuple[str, str] | None, extra: str = "") -> str:
        parts = []
        if label is not None:
            parts.append(f'{label[0]}="{label[1]}"')
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def render(self) -> str:
        """Prometheus-style text exposition of every registered metric."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            gauges = dict(self._gauges)
        lines: list[str] = []
        for (name, label), counter in sorted(
            counters.items(), key=lambda kv: (kv[0][0], kv[0][1] or ("", ""))
        ):
            lines.append(
                f"{self.prefix}_{name}{self._labels(label)} {counter.value}"
            )
        for (name, label), read in sorted(
            gauges.items(), key=lambda kv: (kv[0][0], kv[0][1] or ("", ""))
        ):
            lines.append(f"{self.prefix}_{name}{self._labels(label)} {read()}")
        for (name, label), histogram in sorted(
            histograms.items(), key=lambda kv: (kv[0][0], kv[0][1] or ("", ""))
        ):
            full = f"{self.prefix}_{name}"
            snap = histogram.snapshot()
            lines.append(f"{full}_count{self._labels(label)} {int(snap['count'])}")
            lines.append(f"{full}_sum{self._labels(label)} {snap['sum']:.6f}")
            for q_name, q_label in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
                quantile = 'quantile="%s"' % q_label
                lines.append(
                    f"{full}{self._labels(label, quantile)} {snap[q_name]:.6f}"
                )
            for bound, count in histogram.bucket_counts():
                le = "+Inf" if bound == float("inf") else f"{bound:g}"
                le_label = 'le="%s"' % le
                lines.append(
                    f"{full}_bucket{self._labels(label, le_label)} {count}"
                )
        return "\n".join(lines) + "\n"
