"""Thread-safe bounded session manager with TTL and LRU eviction.

The paper's deployment keeps a per-conversation context so clinicians
can slot-fill and refine across turns (§5.2); a multi-session server
therefore has to keep :class:`~repro.engine.agent.Session` objects alive
between HTTP requests without letting abandoned conversations grow the
process without bound.  :class:`SessionStore` owns that lifecycle:

* idle sessions expire after ``ttl`` seconds (TTL eviction),
* the store never holds more than ``max_sessions`` (LRU eviction),
* every session carries its own lock so two requests for the same
  conversation serialize instead of interleaving turns.

``clock`` is injectable (monotonic seconds) for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.agent import ConversationAgent, Session


@dataclass
class SessionEntry:
    """One live conversation plus its bookkeeping."""

    session: Session
    created_at: float
    last_used_at: float
    turn_count: int = 0
    #: Serializes turns within one conversation; the store's own lock is
    #: never held while a turn runs.
    lock: threading.Lock = field(default_factory=threading.Lock)


class SessionStore:
    """Bounded, TTL-evicting map of session-id → :class:`SessionEntry`."""

    def __init__(
        self,
        agent: ConversationAgent,
        max_sessions: int = 1024,
        ttl: float = 1800.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.agent = agent
        self.max_sessions = max_sessions
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self.created_total = 0
        self.evicted_ttl = 0
        self.evicted_lru = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def ids(self) -> list[str]:
        """Live session ids, least recently used first."""
        with self._lock:
            return list(self._entries)

    # -- lifecycle -----------------------------------------------------------

    def _sweep_locked(self, now: float) -> None:
        """Drop every entry idle past the TTL (caller holds the lock)."""
        stale = [
            sid
            for sid, entry in self._entries.items()
            if now - entry.last_used_at >= self.ttl
        ]
        for sid in stale:
            del self._entries[sid]
            self.evicted_ttl += 1

    def create(self) -> tuple[str, SessionEntry]:
        """Open a new session, evicting as needed; returns (id, entry)."""
        now = self._clock()
        session = self.agent.session()
        entry = SessionEntry(session=session, created_at=now, last_used_at=now)
        sid = str(session.id)
        with self._lock:
            self._sweep_locked(now)
            self._entries[sid] = entry
            self._entries.move_to_end(sid)
            while len(self._entries) > self.max_sessions:
                self._entries.popitem(last=False)
                self.evicted_lru += 1
            self.created_total += 1
        return sid, entry

    def get(self, session_id: str) -> SessionEntry | None:
        """Fetch a live session, refreshing its recency; None if unknown.

        An entry past its TTL is evicted on access rather than returned,
        so the answer is identical whether or not a sweep ran first.
        """
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            entry = self._entries.get(session_id)
            if entry is None:
                return None
            entry.last_used_at = now
            self._entries.move_to_end(session_id)
            return entry

    def drop(self, session_id: str) -> bool:
        """Explicitly close one session; True if it existed."""
        with self._lock:
            return self._entries.pop(session_id, None) is not None

    def sweep(self) -> int:
        """Evict every TTL-expired session; returns how many were dropped."""
        before = self.evicted_ttl
        with self._lock:
            self._sweep_locked(self._clock())
            return self.evicted_ttl - before

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "active": len(self._entries),
                "created_total": self.created_total,
                "evicted_ttl": self.evicted_ttl,
                "evicted_lru": self.evicted_lru,
            }
