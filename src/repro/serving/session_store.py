"""Thread-safe bounded session manager with TTL and LRU eviction.

The paper's deployment keeps a per-conversation context so clinicians
can slot-fill and refine across turns (§5.2); a multi-session server
therefore has to keep :class:`~repro.engine.agent.Session` objects alive
between HTTP requests without letting abandoned conversations grow the
process without bound.  :class:`SessionStore` owns that lifecycle:

* idle sessions expire after ``ttl`` seconds (TTL eviction),
* the store never holds more than ``max_sessions`` (LRU eviction),
* every session carries its own lock so two requests for the same
  conversation serialize instead of interleaving turns.

``on_evict`` is the durability hook: the persistence layer registers a
callback that snapshots a session's context to disk *before* the store
forgets it, turning eviction from data loss into working-set paging
(the evicted conversation resumes from disk on its next request).  The
callback runs under the store lock but may take the entry's own lock —
every caller acquires the store lock first and the entry lock second,
so the ordering is deadlock-free.

``clock`` is injectable (monotonic seconds) for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.agent import ConversationAgent, Session

#: Eviction reasons passed to the ``on_evict`` callback.
EVICT_TTL, EVICT_LRU, EVICT_DROP, EVICT_CLEAR = "ttl", "lru", "drop", "clear"


@dataclass
class SessionEntry:
    """One live conversation plus its bookkeeping."""

    session: Session
    created_at: float
    last_used_at: float
    turn_count: int = 0
    #: Serializes turns within one conversation; the store's own lock is
    #: never held while a turn runs.
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: The most recent committed turn as ``(client_turn_id, result)``,
    #: kept so a client retrying a turn it never saw the response to
    #: (worker died between commit and reply) gets the committed answer
    #: back instead of a duplicated turn.
    last_commit: tuple[str, dict[str, Any]] | None = None


class SessionStore:
    """Bounded, TTL-evicting map of session-id → :class:`SessionEntry`."""

    def __init__(
        self,
        agent: ConversationAgent,
        max_sessions: int = 1024,
        ttl: float = 1800.0,
        clock: Callable[[], float] = time.monotonic,
        on_evict: Callable[[str, SessionEntry, str], None] | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.agent = agent
        self.max_sessions = max_sessions
        self.ttl = ttl
        self._clock = clock
        self._on_evict = on_evict
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self.created_total = 0
        self.evicted_ttl = 0
        self.evicted_lru = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def ids(self) -> list[str]:
        """Live session ids, least recently used first."""
        with self._lock:
            return list(self._entries)

    # -- lifecycle -----------------------------------------------------------

    def _evict_locked(self, sid: str, entry: SessionEntry, reason: str) -> None:
        """Forget one entry, giving the persistence hook its last look."""
        del self._entries[sid]
        if self._on_evict is not None:
            self._on_evict(sid, entry, reason)

    def _sweep_locked(self, now: float) -> None:
        """Drop every entry idle past the TTL (caller holds the lock)."""
        stale = [
            (sid, entry)
            for sid, entry in self._entries.items()
            if now - entry.last_used_at >= self.ttl
        ]
        for sid, entry in stale:
            self._evict_locked(sid, entry, EVICT_TTL)
            self.evicted_ttl += 1

    def _insert_locked(self, sid: str, entry: SessionEntry) -> None:
        self._entries[sid] = entry
        self._entries.move_to_end(sid)
        while len(self._entries) > self.max_sessions:
            oldest_sid, oldest = next(iter(self._entries.items()))
            self._evict_locked(oldest_sid, oldest, EVICT_LRU)
            self.evicted_lru += 1

    def create(self) -> tuple[str, SessionEntry]:
        """Open a new session, evicting as needed; returns (id, entry)."""
        now = self._clock()
        session = self.agent.session()
        entry = SessionEntry(session=session, created_at=now, last_used_at=now)
        sid = str(session.id)
        with self._lock:
            self._sweep_locked(now)
            self._insert_locked(sid, entry)
            self.created_total += 1
        return sid, entry

    def adopt(
        self,
        session: Session,
        turn_count: int = 0,
        last_commit: tuple[str, dict[str, Any]] | None = None,
    ) -> tuple[str, SessionEntry]:
        """Admit an externally built session (a recovery, not a create).

        Used by the persistence layer to page a journaled session back
        into the working set; counts toward ``max_sessions`` and evicts
        like any other insertion, but not toward ``created_total``.
        """
        now = self._clock()
        entry = SessionEntry(
            session=session,
            created_at=now,
            last_used_at=now,
            turn_count=turn_count,
            last_commit=last_commit,
        )
        sid = str(session.id)
        with self._lock:
            self._sweep_locked(now)
            existing = self._entries.get(sid)
            if existing is not None:
                # A concurrent request already resurrected this session;
                # keep the incumbent so there is only ever one live
                # context per conversation.
                existing.last_used_at = now
                self._entries.move_to_end(sid)
                return sid, existing
            self._insert_locked(sid, entry)
        return sid, entry

    def get(self, session_id: str) -> SessionEntry | None:
        """Fetch a live session, refreshing its recency; None if unknown.

        An entry past its TTL is evicted on access rather than returned,
        so the answer is identical whether or not a sweep ran first.
        """
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            entry = self._entries.get(session_id)
            if entry is None:
                return None
            entry.last_used_at = now
            self._entries.move_to_end(session_id)
            return entry

    def drop(self, session_id: str) -> bool:
        """Explicitly close one session; True if it existed."""
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                return False
            self._evict_locked(session_id, entry, EVICT_DROP)
            return True

    def sweep(self) -> int:
        """Evict every TTL-expired session; returns how many were dropped."""
        with self._lock:
            before = self.evicted_ttl
            self._sweep_locked(self._clock())
            return self.evicted_ttl - before

    def eviction_counts(self) -> tuple[int, int]:
        """``(evicted_ttl, evicted_lru)`` as one consistent reading."""
        with self._lock:
            return self.evicted_ttl, self.evicted_lru

    def clear(self) -> None:
        with self._lock:
            for sid, entry in list(self._entries.items()):
                self._evict_locked(sid, entry, EVICT_CLEAR)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "active": len(self._entries),
                "created_total": self.created_total,
                "evicted_ttl": self.evicted_ttl,
                "evicted_lru": self.evicted_lru,
            }
