"""Concurrent conversation serving.

The serving layer of the reproduction: a stdlib-only JSON-over-HTTP
server that multiplexes many simultaneous user sessions over one shared
:class:`~repro.engine.agent.ConversationAgent` (the §6–§7 cloud
deployment, rebuilt).  Consistency model: the agent and its trained
artifacts are shared and immutable; every mutable per-conversation
:class:`~repro.dialogue.context.ConversationContext` lives in the
session store under a per-session lock; the query cache memoizes only
immutable result sets and is dropped wholesale on any KB write.
"""

from repro.serving.aio import AsyncConversationServer, TokenBucket
from repro.serving.metrics import Counter, Histogram, MetricsRegistry
from repro.serving.query_cache import CachingDatabase, QueryCache, make_key
from repro.serving.server import (
    ConversationApp,
    ConversationServer,
    ServingError,
)
from repro.serving.session_store import SessionEntry, SessionStore

__all__ = [
    "AsyncConversationServer",
    "CachingDatabase",
    "ConversationApp",
    "ConversationServer",
    "TokenBucket",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "QueryCache",
    "ServingError",
    "SessionEntry",
    "SessionStore",
    "make_key",
]
