"""LRU+TTL query-result cache wrapped around :class:`Database` execution.

The dominant MDX pattern class is the direct lookup (§4.3), and under
real traffic the same (template, bindings) pair recurs constantly —
every clinician asking "dosage for aspirin" instantiates the identical
SQL with identical parameters.  :class:`QueryCache` memoizes executed
result sets keyed on the SQL text plus the bound parameters, and
:class:`CachingDatabase` is a drop-in proxy for
:class:`~repro.kb.database.Database` that consults the cache on
``query`` and invalidates it on any write.

Coherence is belt-and-braces: writes through the proxy drop the whole
cache eagerly, *and* every entry is tagged with the database
:attr:`~repro.kb.database.Database.generation` at store time and
rejected on lookup if the generation has since moved.  The generation
counter covers programmatic mutations that bypass the proxy (inserting
through a raw :class:`~repro.kb.table.Table` handle), so a stale cached
answer is impossible by construction, not merely by discipline.

Cached :class:`~repro.kb.sql.result.ResultSet` objects are shared
between threads and must be treated as immutable by callers (the agent
already copies ``result.rows`` before storing them in context).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Iterable

from repro.kb.backend import KBBackend
from repro.kb.sql.planner import CompiledPlan
from repro.kb.sql.result import ResultSet

CacheKey = tuple[str, tuple[tuple[str, Any], ...]]


def make_key(sql: str, params: dict[str, Any] | None) -> CacheKey:
    """A hashable cache key: SQL text + sorted bound parameters."""
    items = tuple(sorted((params or {}).items(), key=lambda kv: kv[0]))
    return (sql, items)


class QueryCache:
    """A thread-safe LRU cache with per-entry TTL and hit/miss counters.

    ``clock`` is injectable (monotonic seconds) so tests can drive TTL
    expiry deterministically.  Entries remember the ``generation`` they
    were stored under; a lookup presenting a different generation treats
    the entry as stale and drops it.
    """

    def __init__(
        self,
        max_entries: int = 512,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: (
            "OrderedDict[CacheKey, tuple[float, int | None, ResultSet]]"
        ) = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # Refresh observability: entries dropped because their stored
        # generation no longer matches (the KB was swapped/mutated), and
        # hits served despite a generation mismatch.  The latter is zero
        # by construction — the lookup below drops instead of serving —
        # and is exported to /metrics so a refresh drill can assert it.
        self.stale_drops = 0
        self.stale_served = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(
        self,
        sql: str,
        params: dict[str, Any] | None,
        generation: int | None = None,
    ) -> ResultSet | None:
        """Return the cached result, or None on miss/expiry/stale generation."""
        key = make_key(sql, params)
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            expires_at, stored_generation, result = entry
            if now >= expires_at or stored_generation != generation:
                if now < expires_at:
                    self.stale_drops += 1
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def store(
        self,
        sql: str,
        params: dict[str, Any] | None,
        result: ResultSet,
        generation: int | None = None,
    ) -> None:
        key = make_key(sql, params)
        with self._lock:
            self._entries[key] = (self._clock() + self.ttl, generation, result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, sql: str | None = None) -> int:
        """Drop entries for one SQL text, or everything; returns the count."""
        with self._lock:
            if sql is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                stale = [k for k in self._entries if k[0] == sql]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            self.invalidations += dropped
            return dropped

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (1.0 when no lookups)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 1.0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "stale_drops": self.stale_drops,
                "stale_served": self.stale_served,
            }


class _CachingPrepared:
    """A compiled plan whose ``execute`` consults the result cache.

    Returned by :meth:`CachingDatabase.prepare` so that template-layer
    callers holding prepared statements still benefit from (and stay
    coherent with) the serving result cache.
    """

    def __init__(self, owner: "CachingDatabase", plan: CompiledPlan) -> None:
        self._owner = owner
        self._plan = plan

    @property
    def plan(self) -> CompiledPlan:
        return self._plan

    def execute(self, params: dict[str, Any] | None = None) -> ResultSet:
        sql = self._plan.sql
        if sql is None:  # no cache key without SQL text
            return self._plan.execute(params)
        return self._owner._cached_execute(sql, params, self._plan)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._plan, name)


class CachingDatabase:
    """A :class:`Database` proxy that serves ``query`` through a cache.

    Reads (``query``) consult the cache first; every write entry point
    (``insert``, ``insert_many``, ``create_table``) delegates to the
    wrapped database and then invalidates the whole cache.  Entries are
    additionally generation-tagged (see module docstring), so mutations
    that bypass the proxy still can never yield a stale answer.
    Everything else is delegated untouched, so the proxy can stand
    wherever a ``Database`` is expected.
    """

    def __init__(self, database: KBBackend, cache: QueryCache | None = None) -> None:
        self._database = database
        self.cache = cache if cache is not None else QueryCache()

    @property
    def wrapped(self) -> KBBackend:
        return self._database

    def _cached_execute(
        self,
        sql: str,
        params: dict[str, Any] | None,
        plan: CompiledPlan | None = None,
    ) -> ResultSet:
        generation = self._database.generation
        cached = self.cache.lookup(sql, params, generation=generation)
        if cached is not None:
            return cached
        if plan is not None:
            result = plan.execute(params)
        else:
            result = self._database.query(sql, params)
        self.cache.store(sql, params, result, generation=generation)
        return result

    def query(self, sql: str, params: dict[str, Any] | None = None) -> ResultSet:
        return self._cached_execute(sql, params)

    def prepare(self, sql: str, *, use_indexes: bool = True) -> _CachingPrepared:
        """Prepare through the wrapped database, keeping the result cache.

        Without this override, ``__getattr__`` would hand back the inner
        database's plan directly and prepared execution would silently
        bypass the result cache.
        """
        plan = self._database.prepare(sql, use_indexes=use_indexes)
        return _CachingPrepared(self, plan)

    def insert(
        self, table_name: str, values: dict[str, Any] | Iterable[Any]
    ) -> tuple[Any, ...]:
        row = self._database.insert(table_name, values)
        self.cache.invalidate()
        return row

    def insert_many(
        self, table_name: str, rows: Iterable[dict[str, Any] | Iterable[Any]]
    ) -> int:
        count = self._database.insert_many(table_name, rows)
        self.cache.invalidate()
        return count

    def create_table(self, schema: Any) -> Any:
        table = self._database.create_table(schema)
        self.cache.invalidate()
        return table

    def __getattr__(self, name: str) -> Any:
        return getattr(self._database, name)
