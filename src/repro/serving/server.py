"""JSON-over-HTTP conversation server multiplexing many user sessions.

The paper deploys Conversational MDX as a cloud service answering real
clinician traffic (§6–§7); this module is that serving layer for the
reproduction.  One shared, immutable :class:`ConversationAgent` answers
every request; all mutable per-conversation state lives in the
:class:`~repro.serving.session_store.SessionStore`, and repeated lookup
queries are short-circuited by the
:class:`~repro.serving.query_cache.QueryCache`.

Endpoints
---------
``POST /chat``
    ``{"utterance": ..., "session_id": optional, "debug": optional,
    "client_turn_id": optional}`` → the agent turn.  Omitting
    ``session_id`` opens a new session; the response always echoes the
    id to use on the next turn.  With ``"debug": true`` the response
    additionally carries the per-stage turn trace under ``"debug"``.
    ``client_turn_id`` (any client-chosen string, unique per attempted
    turn) makes retries idempotent: re-sending a turn the server
    already committed returns the committed response instead of
    running the turn twice.
``POST /feedback``
    ``{"session_id": ..., "feedback": "up"|"down"}`` → thumbs feedback
    on that session's most recent interaction (Equation 1 input).
``GET /healthz``
    Liveness plus session/in-flight gauges.
``GET /metrics``
    Prometheus-style text: per-intent turn latency histograms,
    per-stage pipeline latency histograms and deciding-stage counters,
    classifier latency, cache hit rate, session churn, HTTP counters,
    and (durable mode) journal/snapshot/recovery counters.
``GET /sessions`` / ``GET /session?session_id=N``
    Session inspection: live and journaled sessions, and one session's
    committed transcript (read-only — inspecting a journaled session
    does not page it back into memory).

Concurrency model: ``ThreadingHTTPServer`` accepts requests, but agent
turns execute on a bounded ``ThreadPoolExecutor`` — the worker pool is
the admission control.  Each request carries a timeout (504 on expiry)
and the server sheds load with 503 once ``max_pending`` turns are in
flight.  ``shutdown()`` drains: new chat turns are refused, in-flight
turns finish, then the interaction log is flushed atomically.

Durability: constructed with a ``data_dir`` the app replaces its
in-memory session store with a
:class:`~repro.persistence.store.DurableSessionStore` — every committed
turn is journaled *before* the response leaves the process, eviction
snapshots instead of losing state, unknown session ids are paged back
in from disk, and boot runs crash recovery.  See
:mod:`repro.persistence`.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, TimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from repro.engine.agent import ConversationAgent
from repro.engine.kinds import ResponseKind
from repro.engine.logging import save_log
from repro.errors import EngineError
from repro.serving.metrics import MetricsRegistry
from repro.serving.query_cache import CachingDatabase, QueryCache
from repro.serving.session_store import SessionEntry, SessionStore

#: Maximum accepted request body, in bytes (an utterance, not an upload).
MAX_BODY_BYTES = 64 * 1024

#: Routes the app serves; anything else is labelled ``<unmatched>`` in
#: ``http_requests_total`` so a scanner walking random 404 URLs cannot
#: grow metric label cardinality (and registry memory) without bound.
KNOWN_ROUTES = frozenset({
    "POST /chat",
    "POST /chat/stream",
    "POST /feedback",
    "POST /refresh",
    "GET /healthz",
    "GET /metrics",
    "GET /sessions",
    "GET /session",
})

logger = logging.getLogger("repro.serving")


def _session_sort_key(sid: str) -> tuple:
    return (not sid.isdigit(), int(sid) if sid.isdigit() else 0, sid)


class _TimingClassifier:
    """Delegating classifier proxy that records classification latency.

    Both entry points are proxied explicitly: ``classify_batch`` must
    not fall through ``__getattr__`` untimed, because it is the path
    batched callers take (and the one ``IntentClassifier.classify``
    itself delegates to on the unwrapped object) — letting it bypass the
    timer would silently blank ``classifier_latency_seconds`` for any
    batching server.  Batch latency is observed per utterance so the
    histogram stays comparable across both paths.
    """

    def __init__(self, classifier: Any, registry: MetricsRegistry) -> None:
        self._classifier = classifier
        self._registry = registry

    def classify(self, utterance: str) -> Any:
        start = time.perf_counter()
        try:
            return self._classifier.classify(utterance)
        finally:
            self._registry.histogram("classifier_latency_seconds").observe(
                time.perf_counter() - start
            )

    def classify_batch(self, utterances: Any) -> Any:
        start = time.perf_counter()
        try:
            return self._classifier.classify_batch(utterances)
        finally:
            count = len(utterances)
            if count:
                per_utterance = (time.perf_counter() - start) / count
                histogram = self._registry.histogram(
                    "classifier_latency_seconds"
                )
                for _ in range(count):
                    histogram.observe(per_utterance)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._classifier, name)


class ServingError(Exception):
    """An error with an HTTP status and a machine-readable code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


class ConversationApp:
    """Transport-independent request handling (shared by tests and HTTP)."""

    def __init__(
        self,
        agent: ConversationAgent,
        *,
        max_sessions: int = 1024,
        session_ttl: float = 1800.0,
        cache_size: int = 512,
        cache_ttl: float = 300.0,
        max_workers: int = 16,
        max_pending: int = 128,
        request_timeout: float = 30.0,
        log_path: str | Path | None = None,
        data_dir: str | Path | None = None,
        fsync: str = "always",
        snapshot_every: int = 64,
        id_stride: int = 1,
        id_offset: int = 1,
        recover_on_boot: bool = True,
        kb_builder: Callable[[], Any] | None = None,
    ) -> None:
        self.agent = agent
        self.metrics = MetricsRegistry()
        #: Zero-argument callable producing the *next* KB backend for
        #: ``POST /refresh`` (typically a rebuild of the bootstrap
        #: pipeline).  Refresh is a 501 when no builder is wired.
        self._kb_builder = kb_builder
        self._refresh_state_lock = threading.Lock()
        self._refresh_in_progress = False
        self.durable = None
        if data_dir is not None:
            # Imported lazily: repro.persistence.store depends on this
            # package's session store, so a module-level import would be
            # circular.
            from repro.persistence.store import DurableSessionStore

            self.durable = DurableSessionStore(
                agent,
                data_dir,
                max_sessions=max_sessions,
                ttl=session_ttl,
                fsync=fsync,
                snapshot_every=snapshot_every,
                id_stride=id_stride,
                id_offset=id_offset,
                recover_on_boot=recover_on_boot,
            )
            #: ``sessions`` is the lifecycle surface (create/get page
            #: through disk in durable mode); ``store`` stays the
            #: in-memory working set for gauges and inspection.
            self.sessions = self.durable
            self.store = self.durable.store
        else:
            self.store = SessionStore(
                agent, max_sessions=max_sessions, ttl=session_ttl
            )
            self.sessions = self.store
        self.cache = QueryCache(max_entries=cache_size, ttl=cache_ttl)
        self.request_timeout = request_timeout
        self.max_pending = max_pending
        self.log_path = Path(log_path) if log_path is not None else None
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-turn"
        )
        self._in_flight = 0
        self._state_lock = threading.Lock()
        self._draining = False
        #: Turn futures whose client already got a 504: the turn is
        #: still running on the executor, its slot is still reserved
        #: (the done-callback frees it), and its eventual exception is
        #: retrieved and logged instead of becoming "never retrieved"
        #: noise.
        self._abandoned: set[Future] = set()
        # The agent is shared and immutable during serving *except* for
        # these two instrumentation hooks, installed for the server's
        # lifetime and removed by close(): the database proxy adds the
        # query cache, the classifier proxy adds latency telemetry.
        self._original_database = agent.database
        self._original_classifier = agent.classifier
        agent.database = CachingDatabase(agent.database, self.cache)
        agent.classifier = _TimingClassifier(agent.classifier, self.metrics)
        self.metrics.gauge("sessions_active", lambda: len(self.store))
        self.metrics.gauge(
            "sessions_evicted_ttl_total", lambda: self.store.evicted_ttl
        )
        self.metrics.gauge(
            "sessions_evicted_lru_total", lambda: self.store.evicted_lru
        )
        self.metrics.gauge("turns_in_flight", lambda: self.in_flight)
        self.metrics.gauge(
            "query_cache_hit_rate", lambda: round(self.cache.hit_rate(), 6)
        )
        # Plan/index observability (read from the unwrapped database so
        # the gauges keep working after close() restores the hooks).
        self.metrics.gauge(
            "plan_cache_hits_total",
            lambda: self._original_database.plan_stats()["hits"],
        )
        self.metrics.gauge(
            "plan_cache_misses_total",
            lambda: self._original_database.plan_stats()["misses"],
        )
        self.metrics.gauge(
            "plan_cache_plans", lambda: self._original_database.plan_stats()["plans"]
        )
        self.metrics.gauge(
            "plan_index_probes_total",
            lambda: self._original_database.plan_stats()["index_probes"],
        )
        self.metrics.gauge(
            "kb_index_builds_total",
            lambda: sum(
                int(t.index_stats()["builds"])
                for t in self._original_database.tables()
            ),
        )
        self.metrics.gauge(
            "kb_generation", lambda: self._original_database.generation
        )
        # KB backend / refresh observability.  kb_refresh_total and the
        # duration histogram are registered now so they render as 0
        # before the first refresh; kb_backend_info is an info-style
        # gauge (1 on the active backend's label, 0 elsewhere); and
        # plan_lowered_total counts plan executions by physical path
        # (memory | sql | fallback) from the active backend.
        self.metrics.counter("kb_refresh_total")
        self._refresh_duration = self.metrics.histogram(
            "kb_refresh_duration_seconds"
        )
        for backend_label in ("memory", "sqlite"):
            self.metrics.gauge(
                "kb_backend_info",
                lambda b=backend_label: (
                    1.0
                    if getattr(self._original_database, "backend_name", "memory")
                    == b
                    else 0.0
                ),
                label=("backend", backend_label),
            )
        self.metrics.gauge(
            "kb_epoch",
            lambda: float(getattr(self._original_database, "epoch", 0)),
        )
        for path_label in ("memory", "sql", "fallback"):
            self.metrics.gauge(
                "plan_lowered_total",
                lambda p=path_label: float(
                    self._execution_paths().get(p, 0)
                ),
                label=("path", path_label),
            )
        self.metrics.gauge(
            "query_cache_stale_drops_total",
            lambda: float(self.cache.stale_drops),
        )
        self.metrics.gauge(
            "query_cache_stale_served_total",
            lambda: float(self.cache.stale_served),
        )
        if self.durable is not None:
            for name in self.durable.counters:
                self.metrics.gauge(
                    name, lambda n=name: self.durable.counter(n)
                )

    # -- state ---------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._state_lock:
            return self._in_flight

    @property
    def draining(self) -> bool:
        with self._state_lock:
            return self._draining

    def _try_reserve_slot(self) -> bool:
        """Atomically reserve one in-flight turn slot (the admission gate).

        The capacity check and the increment happen under a single lock
        acquisition, so N requests racing the gate admit at most
        ``max_pending`` turns.  (The old pattern read ``in_flight`` in
        one acquisition and incremented in a second — a check-then-act
        race that let concurrent requests all pass the gate at once.)
        """
        with self._state_lock:
            if self._in_flight >= self.max_pending:
                return False
            self._in_flight += 1
            return True

    def _release_slot(self) -> None:
        """Undo a reservation whose turn never reached the executor."""
        with self._state_lock:
            self._in_flight -= 1

    def _on_turn_done(self, future: Future) -> None:
        """Done-callback on every turn future: the only slot release.

        A 504 abandons the future, but ``Future.cancel`` cannot stop a
        turn that is already running — the executor thread it occupies
        is real load, so the slot stays reserved (visible to admission
        control) until the turn actually finishes, which is exactly when
        this callback fires.  Abandoned futures also get their exception
        retrieved and logged here instead of surfacing as "exception was
        never retrieved" noise at interpreter shutdown.
        """
        with self._state_lock:
            self._in_flight -= 1
            abandoned = future in self._abandoned
            self._abandoned.discard(future)
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None and abandoned:
            logger.warning(
                "turn abandoned by its 504 client failed: %r", exc
            )

    def begin_drain(self) -> None:
        with self._state_lock:
            self._draining = True

    def drain(self, timeout: float = 10.0) -> bool:
        """Refuse new turns, wait for in-flight ones; True when drained."""
        self.begin_drain()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.in_flight == 0:
                return True
            time.sleep(0.01)
        return self.in_flight == 0

    def close(self, drain_timeout: float = 10.0) -> bool:
        """Drain, stop workers, flush the log, restore the agent hooks.

        In durable mode every live session is snapshotted on the way
        out, so a clean restart recovers with zero journal replay.
        """
        drained = self.drain(drain_timeout)
        self._executor.shutdown(wait=True)
        self.agent.database = self._original_database
        self.agent.classifier = self._original_classifier
        if self.durable is not None:
            self.durable.close()
        self.flush_log()
        return drained

    def flush_log(self) -> int:
        """Write the interaction log (atomic replace); records written."""
        if self.log_path is None:
            return 0
        return save_log(self.agent.feedback_log, self.log_path)

    # -- request handling ----------------------------------------------------

    def handle(self, method: str, path: str, payload: dict) -> tuple[int, dict | str]:
        """Route one request; returns (status, JSON-able body or text).

        GET query parameters (``/session?session_id=7``) are folded into
        the payload; explicit payload keys win.
        """
        parts = urlsplit(path)
        if parts.query:
            query = {
                key: values[-1]
                for key, values in parse_qs(parts.query).items()
            }
            query.update(payload)
            payload = query
        route = f"{method} {parts.path}"
        self.metrics.counter(
            "http_requests_total",
            ("route", route if route in KNOWN_ROUTES else "<unmatched>"),
        ).inc()
        try:
            if route == "POST /chat":
                return 200, self.chat(payload)
            if route == "POST /chat/stream":
                raise ServingError(
                    501,
                    "stream_unsupported",
                    "streaming requires the async front end "
                    "(repro serve --async)",
                )
            if route == "POST /feedback":
                return 200, self.feedback(payload)
            if route == "POST /refresh":
                return 200, self.refresh_kb(payload)
            if route == "GET /healthz":
                return 200, self.health()
            if route == "GET /metrics":
                return 200, self.metrics.render()
            if route == "GET /sessions":
                return 200, self.list_sessions()
            if route == "GET /session":
                return 200, self.session_detail(payload)
            raise ServingError(404, "not_found", f"no route for {route}")
        except ServingError as exc:
            self.metrics.counter(
                "http_errors_total", ("code", exc.code)
            ).inc()
            return exc.status, {"error": exc.code, "message": exc.message}

    def _admit_chat(
        self, payload: dict
    ) -> tuple[str, str, SessionEntry, bool, str | None]:
        """Validate a chat payload and resolve its session (no slot yet)."""
        utterance = payload.get("utterance")
        if not isinstance(utterance, str) or not utterance.strip():
            raise ServingError(
                400, "bad_request", "'utterance' must be a non-empty string"
            )
        if self.draining:
            self.metrics.counter(
                "admission_rejected_total", ("reason", "draining")
            ).inc()
            raise ServingError(503, "draining", "server is shutting down")
        session_id = payload.get("session_id")
        if session_id is None:
            sid, entry = self.sessions.create()
        else:
            sid = str(session_id)
            found = self.sessions.get(sid)
            if found is None:
                raise ServingError(
                    404,
                    "unknown_session",
                    f"session {sid} does not exist (it may have expired)",
                )
            entry = found
        debug = bool(payload.get("debug"))
        client_turn_id = payload.get("client_turn_id")
        if client_turn_id is not None:
            client_turn_id = str(client_turn_id)
        return utterance, sid, entry, debug, client_turn_id

    def submit_turn(
        self,
        sid: str,
        entry: SessionEntry,
        utterance: str,
        debug: bool,
        client_turn_id: str | None,
        chunk_sink: Callable[[str, dict], None] | None = None,
    ) -> Future:
        """Reserve a slot and start the turn on the executor.

        Raises 503 when admission control refuses the turn; otherwise
        the returned future resolves to the committed-turn dict.  The
        slot is released by the future's done-callback — callers that
        stop waiting must report through :meth:`timeout_turn`, never by
        touching the slot count themselves.
        """
        if not self._try_reserve_slot():
            self.metrics.counter(
                "admission_rejected_total", ("reason", "overloaded")
            ).inc()
            raise ServingError(503, "overloaded", "too many turns in flight")
        try:
            future: Future = self._executor.submit(
                self._turn, sid, entry, utterance, debug, client_turn_id,
                chunk_sink,
            )
        except BaseException:
            self._release_slot()
            raise
        future.add_done_callback(self._on_turn_done)
        return future

    def timeout_turn(self, future: Future) -> ServingError:
        """Bookkeeping for a turn whose client gave up; returns the 504.

        ``Future.cancel`` cannot stop a running turn, so an uncancellable
        future is marked abandoned: its slot stays reserved (it is real
        executor load) until the done-callback fires, and its eventual
        exception is retrieved and logged there.
        """
        abandoned = False
        if not future.cancel():
            with self._state_lock:
                if not future.done():
                    self._abandoned.add(future)
                    abandoned = True
        if abandoned:
            self.metrics.counter("turns_abandoned_total").inc()
        self.metrics.counter("turn_timeouts_total").inc()
        return ServingError(
            504, "timeout", f"turn exceeded {self.request_timeout}s"
        )

    def stream_sink(
        self, emit: Callable[[str, dict], None]
    ) -> Callable[[str, dict], None]:
        """Wrap a transport ``emit`` as a shielded turn chunk sink.

        The returned sink runs on the executor thread driving the turn.
        If ``emit`` raises (the client went away mid-stream) the error
        is logged, further chunks are dropped, and the turn still
        commits; successful chunks count into ``stream_chunks_total``.
        """
        sink_broken: list[BaseException] = []

        def sink(kind: str, data: dict) -> None:
            if sink_broken:
                return
            try:
                emit(kind, data)
            except Exception as exc:
                sink_broken.append(exc)
                logger.warning(
                    "stream sink failed; dropping further chunks: %r", exc
                )
                return
            self.metrics.counter("stream_chunks_total").inc()

        return sink

    def _run_turn(
        self,
        sid: str,
        entry: SessionEntry,
        utterance: str,
        debug: bool,
        client_turn_id: str | None,
        chunk_sink: Callable[[str, dict], None] | None = None,
    ) -> dict:
        """Run one turn synchronously, enforcing the request timeout."""
        future = self.submit_turn(
            sid, entry, utterance, debug, client_turn_id, chunk_sink
        )
        try:
            return future.result(timeout=self.request_timeout)
        except TimeoutError:
            raise self.timeout_turn(future) from None

    def chat(self, payload: dict) -> dict:
        utterance, sid, entry, debug, client_turn_id = self._admit_chat(
            payload
        )
        return self._run_turn(sid, entry, utterance, debug, client_turn_id)

    def chat_stream(
        self, payload: dict, emit: Callable[[str, dict], None]
    ) -> dict:
        """Run one turn, streaming incremental events through ``emit``.

        Events arrive in order while the turn executes: ``rows`` batches
        from the answer stage (emitted as soon as the KB query returns,
        before the answer text is rendered or the turn committed), then
        one ``elicitation``/``disambiguation`` event for clarification
        turns.  The returned dict is the committed turn — byte-identical
        to what ``POST /chat`` returns — which the transport sends as
        the terminating ``done`` event.  Admission, timeout and
        abandonment semantics are exactly :meth:`chat`'s.

        ``emit`` runs on the executor thread driving the turn, so
        transports must hand chunks off thread-safely.  It is shielded:
        if it raises (client went away mid-stream), the error is logged,
        further chunks are dropped, and the turn still commits.
        """
        utterance, sid, entry, debug, client_turn_id = self._admit_chat(
            payload
        )
        return self._run_turn(
            sid, entry, utterance, debug, client_turn_id,
            chunk_sink=self.stream_sink(emit),
        )

    def _turn(
        self,
        sid: str,
        entry: SessionEntry,
        utterance: str,
        debug: bool = False,
        client_turn_id: str | None = None,
        chunk_sink: Callable[[str, dict], None] | None = None,
    ) -> dict:
        start = time.perf_counter()
        with entry.lock:
            if (
                client_turn_id is not None
                and entry.last_commit is not None
                and entry.last_commit[0] == client_turn_id
            ):
                # The client is retrying a turn that already committed
                # (it never saw the response — a dropped connection or a
                # worker death after the journal append): replay the
                # committed answer instead of mutating the conversation
                # a second time.
                self.metrics.counter("turns_deduplicated_total").inc()
                return dict(entry.last_commit[1])
            try:
                response = entry.session.ask(utterance, chunk_sink)
            except EngineError as exc:
                raise ServingError(400, "bad_request", str(exc)) from exc
            if chunk_sink is not None:
                if response.kind == ResponseKind.ELICIT:
                    chunk_sink("elicitation", {
                        "text": response.text,
                        "concept": response.elicit_concept,
                    })
                elif response.kind == ResponseKind.DISAMBIGUATE:
                    pending = (
                        entry.session.context.variables.get("disambiguation")
                        or {}
                    )
                    chunk_sink("disambiguation", {
                        "text": response.text,
                        "choices": [
                            value for _, value in pending.get("candidates", [])
                        ],
                    })
            entry.turn_count += 1
            result = {
                "session_id": sid,
                "text": response.text,
                "intent": response.intent,
                "confidence": response.confidence,
                "kind": response.kind,
                "entities": dict(response.entities),
                "sql": response.sql,
                "turn": entry.turn_count,
            }
            # The commit point: once the journal append returns, the
            # turn survives kill -9 and the response may go out.
            if self.durable is not None:
                self.durable.commit_turn(
                    sid, entry, utterance, result, client_turn_id
                )
            elif client_turn_id is not None:
                entry.last_commit = (client_turn_id, dict(result))
        elapsed = time.perf_counter() - start
        intent_label = response.intent or "<none>"
        self.metrics.counter("turns_total").inc()
        self.metrics.histogram("turn_latency_seconds").observe(elapsed)
        self.metrics.histogram(
            "turn_latency_seconds", ("intent", intent_label)
        ).observe(elapsed)
        trace = response.trace
        if trace is not None:
            for stage in trace.stages:
                self.metrics.histogram(
                    "turn_stage_latency_seconds", ("stage", stage.stage)
                ).observe(stage.duration)
            self.metrics.counter(
                "turn_stage_decisions_total",
                ("stage", trace.deciding_stage or "<none>"),
            ).inc()
        if debug and trace is not None:
            result = dict(result)
            result["debug"] = trace.to_dict()
        return result

    def feedback(self, payload: dict) -> dict:
        session_id = payload.get("session_id")
        feedback = payload.get("feedback")
        if session_id is None or feedback not in ("up", "down"):
            raise ServingError(
                400,
                "bad_request",
                "'session_id' and 'feedback' ('up'|'down') are required",
            )
        entry = self.sessions.get(str(session_id))
        if entry is None:
            raise ServingError(
                404, "unknown_session", f"session {session_id} does not exist"
            )
        with entry.lock:
            try:
                self.agent.feedback_log.mark_last_for_session(
                    entry.session.id, feedback
                )
            except ValueError as exc:
                raise ServingError(409, "no_interaction", str(exc)) from exc
        self.metrics.counter("feedback_total", ("feedback", feedback)).inc()
        return {"session_id": str(session_id), "feedback": feedback}

    def _execution_paths(self) -> dict[str, int]:
        reader = getattr(self._original_database, "execution_paths", None)
        return reader() if reader is not None else {}

    def refresh_kb(self, payload: dict | None = None) -> dict:
        """Build, validate and atomically swap in the next KB snapshot.

        Runs on the calling request thread (each request has its own, so
        serving continues on the old snapshot throughout the build).
        The new backend is validated with the ``repro check`` space
        checker before the swap; a snapshot that fails validation is
        discarded and the live KB is untouched.  The swap itself is one
        atomic handle update — in-flight turns keep the backend object
        they already resolved, new turns observe the new one, and the
        epoch-scaled generation makes every cached plan/result from the
        old snapshot unservable.
        """
        handle = self._original_database
        if self._kb_builder is None:
            raise ServingError(
                501,
                "refresh_unsupported",
                "this server was started without a KB builder",
            )
        if not hasattr(handle, "swap"):
            raise ServingError(
                501,
                "refresh_unsupported",
                "the agent database is not behind a swappable KB handle",
            )
        with self._refresh_state_lock:
            if self._refresh_in_progress:
                raise ServingError(
                    409, "refresh_in_progress", "a KB refresh is already running"
                )
            self._refresh_in_progress = True
        start = time.perf_counter()
        try:
            try:
                backend = self._kb_builder()
            except Exception as exc:
                raise ServingError(
                    500, "refresh_build_failed", f"KB build failed: {exc}"
                ) from exc
            # Imported lazily — the analysis package is a toolchain
            # dependency the serving hot path never touches.
            from repro.analysis.diagnostics import error_count
            from repro.analysis.space_checker import check_space

            diagnostics = check_space(self.agent.space, backend)
            errors = error_count(diagnostics)
            if errors:
                raise ServingError(
                    409,
                    "refresh_validation_failed",
                    f"new KB snapshot failed validation with {errors} "
                    "error(s); keeping the current snapshot",
                )
            epoch = handle.swap(backend)
            duration = time.perf_counter() - start
            self.metrics.counter("kb_refresh_total").inc()
            self._refresh_duration.observe(duration)
            return {
                "status": "ok",
                "epoch": epoch,
                "backend": getattr(backend, "backend_name", "memory"),
                "generation": handle.generation,
                "tables": len(backend.table_names()),
                "duration_seconds": round(duration, 6),
                "validation_errors": 0,
            }
        finally:
            with self._refresh_state_lock:
                self._refresh_in_progress = False

    def health(self) -> dict:
        health = {
            "status": "draining" if self.draining else "ok",
            "sessions": len(self.store),
            "in_flight": self.in_flight,
            "turns_total": self.metrics.counter("turns_total").value,
            "cache": self.cache.stats(),
        }
        if self.durable is not None:
            health["durable"] = {
                "data_dir": str(self.durable.data_dir),
                "fsync": self.durable.fsync_policy,
                "turns_journaled": self.durable.counter(
                    "turns_journaled_total"
                ),
                "sessions_recovered": self.durable.counter(
                    "sessions_recovered_total"
                ),
            }
        return health

    def list_sessions(self) -> dict:
        """Live sessions plus every session with durable state on disk."""
        live = set(self.store.ids())
        out = {"live": sorted(live, key=_session_sort_key)}
        if self.durable is not None:
            from repro.persistence.recovery import list_session_ids

            durable = list_session_ids(self.durable.data_dir)
            out["durable"] = durable
            out["paged_out"] = [sid for sid in durable if sid not in live]
        return out

    def session_detail(self, payload: dict) -> dict:
        """One session's committed transcript (read-only).

        A live session answers from its in-memory context; a paged-out
        one is inspected straight from its journal/snapshot without
        being paged back in.
        """
        session_id = payload.get("session_id")
        if session_id is None:
            raise ServingError(400, "bad_request", "'session_id' is required")
        sid = str(session_id)
        entry = self.store.get(sid)
        if entry is not None:
            with entry.lock:
                history = [
                    record.to_dict()
                    for record in entry.session.context.history
                ]
            return {
                "session_id": sid,
                "source": "live",
                "turn_count": len(history),
                "turns": history,
            }
        if self.durable is not None:
            from repro.persistence.recovery import inspect_session

            detail = inspect_session(self.durable.data_dir, sid)
            if detail is not None:
                detail["source"] = "disk"
                return detail
        raise ServingError(
            404, "unknown_session", f"session {sid} does not exist"
        )


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter over :class:`ConversationApp`."""

    server: "_HTTPServer"
    protocol_version = "HTTP/1.1"

    def _read_payload(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServingError(413, "too_large", "request body too large")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServingError(400, "bad_json", "body must be JSON") from exc
        if not isinstance(payload, dict):
            raise ServingError(400, "bad_json", "body must be a JSON object")
        return payload

    def _respond(self, status: int, body: dict | str) -> None:
        if isinstance(body, str):
            data = body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str) -> None:
        try:
            try:
                payload = self._read_payload() if method == "POST" else {}
            except ServingError as exc:
                self._respond(exc.status, {"error": exc.code, "message": exc.message})
                return
            status, body = self.server.app.handle(method, self.path, payload)
            self._respond(status, body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, format: str, *args: Any) -> None:
        pass  # request logging lives in /metrics, not stderr


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Deep accept backlog: bursts of concurrent connects (the bench
    #: opens 50+ sockets at once) must queue, not get RST with the
    #: socketserver default of 5.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], app: ConversationApp) -> None:
        super().__init__(address, _Handler)
        self.app = app


class ConversationServer:
    """Owns the HTTP listener, the app, and the serving lifecycle.

    Usable as a context manager::

        with ConversationServer(agent, port=0) as server:
            ...  # server.port is the bound port
    """

    def __init__(
        self,
        agent: ConversationAgent,
        host: str = "127.0.0.1",
        port: int = 8080,
        **app_options: Any,
    ) -> None:
        self.app = ConversationApp(agent, **app_options)
        self._httpd = _HTTPServer((host, port), self.app)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ConversationServer":
        """Serve in a background thread; returns self once listening."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serving",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted, then drain."""
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def shutdown(self, drain_timeout: float = 10.0) -> bool:
        """Graceful stop: drain in-flight turns, flush the log, close.

        Returns True when every in-flight turn finished inside
        ``drain_timeout``.
        """
        drained = self.app.close(drain_timeout)
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        return drained

    def __enter__(self) -> "ConversationServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
