"""Asyncio streaming front end over the synchronous turn core.

The third serving architecture layer (threads → durable workers →
async/streaming): a stdlib-only ``asyncio.start_server`` HTTP/1.1
front end that multiplexes thousands of keep-alive connections on one
event loop while the existing synchronous :class:`ConversationApp`
turn core keeps running on its bounded thread pool.  A turn request
never parks a front-end thread: the loop submits the turn through
:meth:`ConversationApp.submit_turn` and awaits the wrapped future, so
concurrency is bounded by sessions and sockets, not threads.

Endpoints
---------
Everything the synchronous server exposes (``POST /chat``,
``POST /feedback``, ``GET /healthz`` / ``/metrics`` / ``/sessions`` /
``/session``) behaves identically — ``/chat`` responses are
byte-identical — plus:

``POST /chat/stream``
    Same payload as ``/chat``; the response is an SSE-style
    ``text/event-stream`` (chunked transfer encoding) of events emitted
    while the turn executes::

        event: rows
        data: {"batch": 0, "rows": [...]}

    ``rows`` batches arrive as soon as the KB query returns (before the
    answer text is rendered or the turn committed); clarification turns
    emit one ``elicitation`` or ``disambiguation`` event (the latter
    carrying the candidate ``choices``); the stream terminates with a
    ``done`` event whose data is exactly the committed-turn JSON that
    ``POST /chat`` would have returned, or an ``error`` event.
    Admission and validation failures before the first chunk are plain
    JSON error responses, not streams.

Admission control
-----------------
Three honest gates, all surfaced in ``/metrics`` as
``admission_rejected_total{reason=}`` (no silent queue growth):

* a bounded accept queue — more than ``accept_queue`` requests in
  flight on the front end are shed with 503 ``queue_full``;
* a per-session token bucket (``rate_limit`` turns/second sustained,
  ``rate_burst`` burst) — over-rate chat turns are shed with 429
  ``rate_limited``;
* the turn core's own slot gate (``max_pending``) — 503 ``overloaded``
  — and drain gate — 503 ``draining`` — exactly as in the sync server.

Concurrency model: everything in this module runs on the event-loop
thread except the blocking app calls, which run on a small I/O executor
(admission/session paging, feedback, inspection) or the app's own turn
pool (turns).  Turn chunks hop from the executor thread to the loop via
``loop.call_soon_threadsafe`` into a per-request ``asyncio.Queue``, so
event order is preserved and the turn never blocks on a slow client.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable
from urllib.parse import urlsplit

from repro.engine.agent import ConversationAgent
from repro.serving.server import (
    KNOWN_ROUTES,
    MAX_BODY_BYTES,
    ConversationApp,
    ServingError,
)

__all__ = ["AsyncConversationServer", "TokenBucket"]

logger = logging.getLogger("repro.serving.aio")

#: Minimal reason phrases for the statuses this server emits.
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Header-block size cap (request line + headers, not the body).
MAX_HEAD_BYTES = 16 * 1024


class TokenBucket:
    """Per-key token buckets: ``rate`` tokens/second, ``burst`` capacity.

    Single-threaded by design — the async server consults it only from
    the event-loop thread, so no lock is needed.  ``clock`` is
    injectable (tests drive it deterministically).  Idle keys are
    pruned once their bucket refills to ``burst`` (a full bucket holds
    no rate-limiting state), so key cardinality stays bounded even
    under a scanner inventing session ids.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
        max_keys: int = 4096,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._max_keys = max_keys
        #: key -> (tokens remaining, stamp of last refill)
        self._buckets: dict[str, tuple[float, float]] = {}

    def __len__(self) -> int:
        return len(self._buckets)

    def allow(self, key: str) -> bool:
        """Take one token from ``key``'s bucket; False when empty."""
        now = self._clock()
        tokens, stamp = self._buckets.get(key, (self.burst, now))
        tokens = min(self.burst, tokens + (now - stamp) * self.rate)
        if tokens < 1.0:
            self._buckets[key] = (tokens, now)
            return False
        self._buckets[key] = (tokens - 1.0, now)
        if len(self._buckets) > self._max_keys:
            self._prune(now)
        return True

    def _prune(self, now: float) -> None:
        refilled = [
            key
            for key, (tokens, stamp) in self._buckets.items()
            if tokens + (now - stamp) * self.rate >= self.burst
        ]
        for key in refilled:
            del self._buckets[key]


class _Request:
    """One parsed HTTP request (head only; the body is read separately)."""

    __slots__ = ("method", "path", "headers")

    def __init__(self, method: str, path: str, headers: dict[str, str]):
        self.method = method
        self.path = path
        self.headers = headers

    @property
    def content_length(self) -> int:
        try:
            return int(self.headers.get("content-length", "0") or "0")
        except ValueError as exc:
            raise ServingError(
                400, "bad_request", "invalid Content-Length"
            ) from exc

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


def _parse_head(head: bytes) -> _Request:
    try:
        text = head.decode("latin-1")
        request_line, _, header_block = text.partition("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError as exc:
        raise ServingError(400, "bad_request", "malformed request") from exc
    headers: dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return _Request(method.upper(), path, headers)


class AsyncConversationServer:
    """Owns the event loop, the listener, the app, and the lifecycle.

    API-compatible with :class:`~repro.serving.server.ConversationServer`
    (``start``/``shutdown``/``serve_forever``/``port``/``address``,
    usable as a context manager); the loop runs on a dedicated thread so
    synchronous callers (tests, the CLI) drive it the same way they
    drive the threaded server.
    """

    def __init__(
        self,
        agent: ConversationAgent,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        rate_limit: float = 0.0,
        rate_burst: float = 8.0,
        accept_queue: int = 256,
        io_threads: int = 8,
        clock: Callable[[], float] = time.monotonic,
        **app_options: Any,
    ) -> None:
        self.app = ConversationApp(agent, **app_options)
        self.accept_queue = accept_queue
        self.bucket: TokenBucket | None = (
            TokenBucket(rate_limit, rate_burst, clock=clock)
            if rate_limit > 0
            else None
        )
        self._requested = (host, port)
        self._bound: tuple[str, int] | None = None
        self._io = ThreadPoolExecutor(
            max_workers=io_threads, thread_name_prefix="repro-aio-io"
        )
        self._active = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        return (self._bound or self._requested)[0]

    @property
    def port(self) -> int:
        return (self._bound or self._requested)[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AsyncConversationServer":
        """Run the loop on a background thread; returns once listening."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-aio-serving", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            raise error
        if self._bound is None:
            raise RuntimeError("async server failed to start listening")
        return self

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # surfaced to start()'s caller
            self._startup_error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection,
            self._requested[0],
            self._requested[1],
            limit=MAX_HEAD_BYTES,
        )
        self._bound = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            leftovers = [t for t in self._conn_tasks if not t.done()]
            for task in leftovers:
                task.cancel()
            if leftovers:
                await asyncio.gather(*leftovers, return_exceptions=True)

    def shutdown(self, drain_timeout: float = 10.0) -> bool:
        """Graceful stop: drain turns, flush, stop the loop; True when
        every in-flight turn finished inside ``drain_timeout``."""
        drained = self.app.close(drain_timeout)
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._io.shutdown(wait=False)
        return drained

    def serve_forever(self) -> None:
        """Serve until interrupted (the foreground CLI path)."""
        if self._thread is None:
            self.start()
        try:
            while self._thread is not None and self._thread.is_alive():
                self._thread.join(timeout=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def __enter__(self) -> "AsyncConversationServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._connection_loop(reader, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away or sent an oversized/garbled head
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except asyncio.IncompleteReadError:
                return  # clean keep-alive close between requests
            try:
                request = _parse_head(head)
                length = request.content_length
                if length > MAX_BODY_BYTES:
                    raise ServingError(
                        413, "too_large", "request body too large"
                    )
                body = await reader.readexactly(length) if length else b""
            except ServingError as exc:
                await self._send_json(
                    writer, exc.status,
                    {"error": exc.code, "message": exc.message},
                    keep_alive=False,
                )
                return
            keep_alive = await self._process_request(request, body, writer)
            if not keep_alive or request.wants_close:
                return

    # -- request processing --------------------------------------------------

    def _reject(self, reason: str, status: int, message: str) -> ServingError:
        self.app.metrics.counter(
            "admission_rejected_total", ("reason", reason)
        ).inc()
        return ServingError(status, reason, message)

    def _error_payload(self, exc: ServingError) -> dict:
        self.app.metrics.counter("http_errors_total", ("code", exc.code)).inc()
        return {"error": exc.code, "message": exc.message}

    def _count_route(self, route: str) -> None:
        self.app.metrics.counter(
            "http_requests_total",
            ("route", route if route in KNOWN_ROUTES else "<unmatched>"),
        ).inc()

    async def _process_request(
        self, request: _Request, body: bytes, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns False when the connection must close."""
        route = f"{request.method} {urlsplit(request.path).path}"
        chat_route = route in ("POST /chat", "POST /chat/stream")
        if self._active >= self.accept_queue:
            # The bounded accept queue: shed instead of queueing without
            # bound.  Counted under the stable route label, not the raw
            # path, to keep metric cardinality bounded.
            self._count_route(route)
            exc = self._reject(
                "queue_full", 503, "front-end accept queue is full"
            )
            await self._send_json(
                writer, exc.status, self._error_payload(exc)
            )
            return True
        self._active += 1
        try:
            if not chat_route:
                # Non-chat routes reuse the sync app's router verbatim
                # (it counts http_requests_total itself); the blocking
                # work runs on the I/O executor, never the loop.
                loop = asyncio.get_running_loop()
                payload, error = self._decode_payload(request, body)
                if error is not None:
                    # Mirrors the sync handler: a body that fails to
                    # parse is answered before routing (and so before
                    # the route counter).
                    await self._send_json(
                        writer, error.status, self._error_payload(error)
                    )
                    return True
                status, out = await loop.run_in_executor(
                    self._io, self.app.handle, request.method, request.path,
                    payload,
                )
                await self._send_json(writer, status, out)
                return True
            self._count_route(route)
            payload, error = self._decode_payload(request, body)
            if error is None:
                error = self._check_rate(payload)
            if error is not None:
                await self._send_json(
                    writer, error.status, self._error_payload(error)
                )
                return True
            if route == "POST /chat":
                return await self._chat_json(payload, writer)
            return await self._chat_stream(payload, writer)
        finally:
            self._active -= 1

    def _decode_payload(
        self, request: _Request, body: bytes
    ) -> tuple[dict, ServingError | None]:
        if request.method != "POST" or not body:
            return {}, None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {}, ServingError(400, "bad_json", "body must be JSON")
        if not isinstance(payload, dict):
            return {}, ServingError(
                400, "bad_json", "body must be a JSON object"
            )
        return payload, None

    def _check_rate(self, payload: dict) -> ServingError | None:
        """Per-session token bucket (chat routes, loop thread only)."""
        if self.bucket is None:
            return None
        session_id = payload.get("session_id")
        if session_id is None:
            return None  # opening turns have no key yet
        if self.bucket.allow(str(session_id)):
            return None
        return self._reject(
            "rate_limited", 429,
            "session exceeded its turn rate limit; retry later",
        )

    # -- /chat (non-streaming) ------------------------------------------------

    async def _chat_json(
        self, payload: dict, writer: asyncio.StreamWriter
    ) -> bool:
        loop = asyncio.get_running_loop()
        try:
            admitted = await loop.run_in_executor(
                self._io, self.app._admit_chat, payload
            )
            utterance, sid, entry, debug, client_turn_id = admitted
            future = self.app.submit_turn(
                sid, entry, utterance, debug, client_turn_id
            )
        except ServingError as exc:
            await self._send_json(
                writer, exc.status, self._error_payload(exc)
            )
            return True
        try:
            result = await asyncio.wait_for(
                asyncio.wrap_future(future), self.app.request_timeout
            )
        except asyncio.TimeoutError:
            exc = self.app.timeout_turn(future)
            await self._send_json(
                writer, exc.status, self._error_payload(exc)
            )
            return True
        except ServingError as exc:
            await self._send_json(
                writer, exc.status, self._error_payload(exc)
            )
            return True
        except Exception as exc:
            logger.exception("turn failed: %r", exc)
            error = ServingError(500, "internal", "turn failed")
            await self._send_json(
                writer, error.status, self._error_payload(error)
            )
            return True
        await self._send_json(writer, 200, result)
        return True

    # -- /chat/stream ---------------------------------------------------------

    async def _chat_stream(
        self, payload: dict, writer: asyncio.StreamWriter
    ) -> bool:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def emit(kind: str, data: dict) -> None:
            # Runs on the executor thread driving the turn; hop to the
            # loop.  FIFO: chunks always precede the future's done hop.
            loop.call_soon_threadsafe(queue.put_nowait, (kind, data))

        try:
            admitted = await loop.run_in_executor(
                self._io, self.app._admit_chat, payload
            )
            utterance, sid, entry, debug, client_turn_id = admitted
            future = self.app.submit_turn(
                sid, entry, utterance, debug, client_turn_id,
                self.app.stream_sink(emit),
            )
        except ServingError as exc:
            await self._send_json(
                writer, exc.status, self._error_payload(exc)
            )
            return True

        wrapped = asyncio.wrap_future(future)
        wrapped.add_done_callback(
            lambda _f: queue.put_nowait(("__done__", {}))
        )
        timeout_handle = loop.call_later(
            self.app.request_timeout,
            lambda: queue.put_nowait(("__timeout__", {})),
        )
        started = False
        try:
            while True:
                kind, data = await queue.get()
                if kind == "__timeout__":
                    exc = self.app.timeout_turn(future)
                    await self._finish_with_error(writer, exc, started)
                    # The abandoned turn keeps running; its chunks drain
                    # into this queue, which dies with this request.
                    return True
                if kind == "__done__":
                    timeout_handle.cancel()
                    try:
                        result = future.result()
                    except ServingError as exc:
                        await self._finish_with_error(writer, exc, started)
                    except Exception as exc:
                        if not wrapped.cancelled():
                            logger.exception("streamed turn failed: %r", exc)
                        error = ServingError(500, "internal", "turn failed")
                        await self._finish_with_error(writer, error, started)
                    else:
                        if not started:
                            await self._start_stream(writer)
                            started = True
                        await self._send_event(writer, "done", result)
                        await self._end_stream(writer)
                    return True
                if not started:
                    await self._start_stream(writer)
                    started = True
                await self._send_event(writer, kind, data)
        except (ConnectionResetError, BrokenPipeError):
            # Mid-stream disconnect: the turn still commits (its slot is
            # released by the app's done-callback); we just stop writing.
            timeout_handle.cancel()
            self.app.metrics.counter("stream_disconnects_total").inc()
            return False

    async def _finish_with_error(
        self,
        writer: asyncio.StreamWriter,
        exc: ServingError,
        started: bool,
    ) -> None:
        payload = self._error_payload(exc)
        if not started:
            await self._send_json(writer, exc.status, payload)
            return
        await self._send_event(writer, "error", payload)
        await self._end_stream(writer)

    # -- wire format ----------------------------------------------------------

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict | str,
        keep_alive: bool = True,
    ) -> None:
        if isinstance(body, str):
            data = body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "OK")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    async def _start_stream(self, writer: asyncio.StreamWriter) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: keep-alive\r\n\r\n"
        )
        await writer.drain()

    async def _send_event(
        self, writer: asyncio.StreamWriter, event: str, data: dict
    ) -> None:
        frame = f"event: {event}\ndata: {json.dumps(data)}\n\n".encode(
            "utf-8"
        )
        writer.write(f"{len(frame):x}\r\n".encode("latin-1"))
        writer.write(frame)
        writer.write(b"\r\n")
        await writer.drain()

    async def _end_stream(self, writer: asyncio.StreamWriter) -> None:
        writer.write(b"0\r\n\r\n")
        await writer.drain()
