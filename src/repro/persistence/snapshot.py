"""Atomic session snapshots: serialized ``ConversationContext`` state.

A snapshot is the compaction point of a session's journal: once the
context as of turn *T* is durably on disk, every journal record with
``turn <= T`` is redundant and can be dropped.  Recovery then restores
the snapshot and replays only the journal suffix through the turn
pipeline.

Write protocol (crash-safe): serialize to a temp file in the target
directory, ``fsync``, ``os.replace`` over the live snapshot, then fsync
the directory.  A crash at any point leaves either the previous
snapshot or the new one — never a torn file.  The body additionally
carries a CRC-32 so a damaged snapshot is *detected* on load (treated
as absent; recovery falls back to replaying the full journal).

``ConversationContext.variables`` may hold tuples (disambiguation
candidates, KB result rows), which JSON would silently turn into lists;
:func:`encode_value` tags them so :func:`decode_value` restores the
exact Python shapes and a restored context is indistinguishable from
the original.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.dialogue.context import ConversationContext
from repro.errors import SnapshotError
from repro.persistence.journal import crc32

SNAPSHOT_VERSION = 1

#: Tag key marking an encoded tuple; NUL-prefixed so it can never
#: collide with a real context-variable dictionary key.
_TUPLE_TAG = "\x00tuple"


def encode_value(value: Any) -> Any:
    """Recursively convert ``value`` to a JSON-safe shape, tagging tuples."""
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SnapshotError(
                    f"cannot snapshot non-string dict key {key!r}"
                )
            out[key] = encode_value(item)
        return out
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise SnapshotError(
        f"cannot snapshot value of type {type(value).__name__}: {value!r}"
    )


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(decode_value(item) for item in value[_TUPLE_TAG])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


@dataclass
class SessionSnapshot:
    """One restored snapshot: the context as of ``turn_count``.

    ``last_commit`` carries the final committed turn's
    ``(client_turn_id, result)`` so retry deduplication survives journal
    compaction (after compaction the journal no longer holds it).
    """

    session_id: int
    turn_count: int
    context: ConversationContext
    last_commit: tuple[str, dict[str, Any]] | None = None


def write_snapshot(
    path: str | Path,
    session_id: int,
    context: ConversationContext,
    last_commit: tuple[str, dict[str, Any]] | None = None,
) -> int:
    """Atomically persist ``context`` as of its current turn count.

    Returns the number of bytes written.
    """
    path = Path(path)
    body = {
        "version": SNAPSHOT_VERSION,
        "session_id": session_id,
        "turn_count": context.turn_count,
        "context": encode_value(context.to_dict()),
        "last_commit": (
            [last_commit[0], encode_value(last_commit[1])]
            if last_commit is not None
            else None
        ),
    }
    body_json = json.dumps(body, separators=(",", ":"), sort_keys=True)
    envelope = json.dumps(
        {"crc": crc32(body_json.encode("utf-8")), "body": body},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(envelope)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return len(envelope)


def _fsync_directory(directory: Path) -> None:
    """Make the rename itself durable (best-effort off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def load_snapshot(path: str | Path) -> SessionSnapshot | None:
    """Restore a snapshot; ``None`` when missing, torn or corrupt.

    A bad snapshot is deliberately indistinguishable from an absent one:
    recovery then rebuilds what it can from the journal instead of
    refusing the session.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return None
    try:
        envelope = json.loads(raw.decode("utf-8"))
        body = envelope["body"]
        body_json = json.dumps(body, separators=(",", ":"), sort_keys=True)
        if crc32(body_json.encode("utf-8")) != envelope["crc"]:
            return None
        if body.get("version") != SNAPSHOT_VERSION:
            return None
        context = ConversationContext.from_dict(decode_value(body["context"]))
        stored_commit = body.get("last_commit")
        last_commit = (
            (stored_commit[0], decode_value(stored_commit[1]))
            if stored_commit is not None
            else None
        )
        return SessionSnapshot(
            session_id=int(body["session_id"]),
            turn_count=int(body["turn_count"]),
            context=context,
            last_commit=last_commit,
        )
    except (KeyError, TypeError, ValueError, UnicodeDecodeError):
        return None
