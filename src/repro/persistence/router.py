"""Session-affine multi-worker front end: router + worker supervision.

One router process owns the public listening socket and forwards every
request to one of *N* worker subprocesses, each a full single-process
conversation server (``python -m repro serve --worker-index i``) with
its own immutable KB replica and its own slice of the durable data
directory::

    data_dir/
      workers/
        00/  worker 0: session_ids.json, sessions/, worker.json, worker.log
        01/  worker 1: ...

Affinity is the id space itself: worker *i* of *N* allocates session
ids ≡ *i* (mod *N*) (see
:class:`~repro.persistence.store.DurableSessionIdAllocator`), so the
router can route any request carrying a numeric ``session_id`` with
``int(sid) % N`` — no routing table, nothing to rebuild after a crash.
Requests without a session id (new conversations, health checks) are
spread round-robin.

Workers hand their bound port back through a ready file
(``worker.json``, written after the worker's server is listening); the
router deletes the file before each spawn so a stale file can never be
mistaken for the new process.  A monitor thread restarts dead workers;
a restarted worker replays its journals on boot
(``recover_on_boot``), so every session it owned resumes exactly where
its last committed turn left it.  While a worker is down, requests for
its sessions fail fast with ``503 worker_unavailable`` — clients retry
(idempotently, via ``client_turn_id``) until the replacement is up.
"""

from __future__ import annotations

import http.client
import json
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.errors import RouterError
from repro.serving.metrics import MetricsRegistry

#: Ready file a worker writes into its worker directory once listening.
READY_FILE = "worker.json"

#: How long the router waits for a spawned worker to come up.  Workers
#: may build an agent from scratch (the full MDX build takes a while),
#: so this is generous; pass ``spawn_timeout`` to tighten it in tests.
DEFAULT_SPAWN_TIMEOUT = 180.0


def worker_dir(data_dir: str | Path, index: int) -> Path:
    """The slice of the data directory owned by worker ``index``."""
    return Path(data_dir) / "workers" / f"{index:02d}"


def affinity(session_id: str, workers: int) -> int:
    """Which worker owns ``session_id``.

    Numeric ids (the allocator's) map by residue class — the inverse of
    how workers allocate them.  Anything else hashes stably.
    """
    sid = session_id.strip()
    if sid.isdigit():
        return int(sid) % workers
    return zlib.crc32(sid.encode("utf-8")) % workers


class WorkerHandle:
    """One supervised worker subprocess and its lifecycle state."""

    def __init__(self, index: int, directory: Path) -> None:
        self.index = index
        self.directory = directory
        self.process: subprocess.Popen | None = None
        self.port: int | None = None
        self.restarts = 0
        self.lock = threading.Lock()  # guards respawn vs. kill races

    @property
    def base_url(self) -> str | None:
        with self.lock:
            port = self.port
        if port is None:
            return None
        return f"http://127.0.0.1:{port}"

    @property
    def alive(self) -> bool:
        with self.lock:
            process = self.process
        return process is not None and process.poll() is None


class _WorkerConnectionPool:
    """Keep-alive HTTP connections to workers, keyed by ``(host, port)``.

    The forward path used to open a fresh TCP socket per proxied request;
    at drill scale the handshake cost and ``TIME_WAIT`` churn dominate
    router latency.  Connections parked here are reused by the next
    request to the same worker.  Keys are per-port, and a restarted
    worker binds a new ephemeral port, so a replacement incarnation can
    never be handed a socket to its dead predecessor; stale keys are
    dropped on respawn.  A parked socket the worker closed while idle is
    detected at request time and retried once on a fresh connection (see
    :meth:`SessionRouter.forward`).
    """

    def __init__(self, max_idle_per_key: int = 8) -> None:
        self._lock = threading.Lock()
        self._idle: dict[tuple[str, int], list[http.client.HTTPConnection]] = {}
        self._max_idle = max_idle_per_key
        self._closed = False

    def acquire(
        self, host: str, port: int
    ) -> http.client.HTTPConnection | None:
        """A parked connection to ``host:port``, or None (caller opens
        a fresh one — outside the pool lock)."""
        with self._lock:
            stack = self._idle.get((host, port))
            if stack:
                return stack.pop()
        return None

    def release(
        self,
        host: str,
        port: int,
        connection: http.client.HTTPConnection,
        reusable: bool,
    ) -> None:
        if reusable:
            with self._lock:
                if not self._closed:
                    stack = self._idle.setdefault((host, port), [])
                    if len(stack) < self._max_idle:
                        stack.append(connection)
                        return
        connection.close()

    def discard(self, host: str, port: int) -> None:
        """Drop every parked connection for a (dead) worker incarnation."""
        with self._lock:
            stale = self._idle.pop((host, port), [])
        for connection in stale:
            connection.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            parked = [
                connection
                for stack in self._idle.values()
                for connection in stack
            ]
            self._idle.clear()
        for connection in parked:
            connection.close()


class SessionRouter:
    """Spawns, fronts and supervises N conversation-server workers.

    ``worker_args`` is appended to every worker's command line — the
    agent-definition flags (``--space``/``--data``/``--name`` …) and
    durability tuning (``--fsync`` …) pass through untouched, so the
    router stays agnostic of how agents are built.
    """

    def __init__(
        self,
        workers: int,
        data_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        worker_args: list[str] | None = None,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
        health_interval: float = 1.0,
        forward_timeout: float = 60.0,
    ) -> None:
        if workers < 1:
            raise RouterError("router needs at least one worker")
        self.data_dir = Path(data_dir)
        self.worker_args = list(worker_args or [])
        self.spawn_timeout = spawn_timeout
        self.health_interval = health_interval
        self.forward_timeout = forward_timeout
        self.metrics = MetricsRegistry()
        self.workers = [
            WorkerHandle(i, worker_dir(self.data_dir, i))
            for i in range(workers)
        ]
        self._round_robin = 0
        self._rr_lock = threading.Lock()
        self._pool = _WorkerConnectionPool()
        self._lifecycle_lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self._httpd = _RouterHTTPServer((host, port), self)
        self._thread: threading.Thread | None = None
        self.metrics.gauge(
            "router_workers_alive",
            lambda: sum(1 for w in self.workers if w.alive),
        )
        self.metrics.gauge("router_workers_total", lambda: len(self.workers))

    # -- addresses -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- worker lifecycle ----------------------------------------------------

    def _command(self, index: int) -> list[str]:
        return [
            sys.executable, "-m", "repro", "serve",
            "--worker-index", str(index),
            "--workers", str(len(self.workers)),
            "--data-dir", str(self.data_dir),
            "--host", "127.0.0.1", "--port", "0",
        ] + self.worker_args

    def spawn_worker(self, handle: WorkerHandle) -> None:
        """Start (or restart) one worker and wait until it is serving."""
        handle.directory.mkdir(parents=True, exist_ok=True)
        ready = handle.directory / READY_FILE
        ready.unlink(missing_ok=True)
        log = open(handle.directory / "worker.log", "ab")
        try:
            # fork/exec happens outside handle.lock: the kill/stop paths
            # take that lock and must never wait behind a spawn.
            process = subprocess.Popen(
                self._command(handle.index),
                stdout=log, stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
                # Detach from the controlling terminal's process group:
                # a Ctrl-C must reach only the router, which then
                # coordinates one SIGTERM per worker so each drains
                # and snapshots exactly once.
                start_new_session=True,
            )
        finally:
            log.close()  # the child holds its own descriptor
        with handle.lock:
            old_port = handle.port
            handle.port = None
            handle.process = process
        if old_port is not None:
            # Sockets parked for the dead incarnation can never be valid
            # for the replacement (which binds a fresh ephemeral port).
            self._pool.discard("127.0.0.1", old_port)
        self._await_ready(handle, ready)

    def _await_ready(self, handle: WorkerHandle, ready: Path) -> None:
        deadline = time.monotonic() + self.spawn_timeout
        while time.monotonic() < deadline:
            with handle.lock:
                process = handle.process
            if process is not None and process.poll() is not None:
                raise RouterError(
                    f"worker {handle.index} exited with code "
                    f"{process.returncode} during startup (see "
                    f"{handle.directory / 'worker.log'})"
                )
            port = self._read_ready(ready, process.pid if process else None)
            if port is not None and self._healthy(port):
                with handle.lock:
                    handle.port = port
                return
            time.sleep(0.05)
        raise RouterError(
            f"worker {handle.index} did not become ready within "
            f"{self.spawn_timeout:.0f}s"
        )

    @staticmethod
    def _read_ready(ready: Path, expected_pid: int | None) -> int | None:
        try:
            data = json.loads(ready.read_text(encoding="utf-8"))
            port = int(data["port"])
        except (FileNotFoundError, KeyError, TypeError, ValueError):
            return None
        if expected_pid is not None and data.get("pid") != expected_pid:
            return None  # stale file from a previous incarnation
        return port

    @staticmethod
    def _healthy(port: int) -> bool:
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=5.0
            ) as response:
                return response.status == 200
        except (urllib.error.URLError, OSError, ValueError):
            return False

    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int:
        """Deliver ``sig`` to a worker (crash drills); returns its pid."""
        handle = self.workers[index]
        with handle.lock:
            process = handle.process
            if process is None or process.poll() is not None:
                raise RouterError(f"worker {index} is not running")
            process.send_signal(sig)
            return process.pid

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.health_interval):
            for handle in self.workers:
                if self._stopping.is_set():
                    return
                if handle.alive:
                    continue
                with handle.lock:
                    handle.restarts += 1
                self.metrics.counter("router_worker_restarts_total").inc()
                try:
                    self.spawn_worker(handle)
                except RouterError:
                    continue  # retried on the next sweep; counter shows it

    # -- routing -------------------------------------------------------------

    def pick_worker(self, session_id: str | None) -> WorkerHandle:
        if session_id:
            return self.workers[affinity(session_id, len(self.workers))]
        with self._rr_lock:
            index = self._round_robin % len(self.workers)
            self._round_robin += 1
        return self.workers[index]

    def forward(
        self,
        method: str,
        path: str,
        body: bytes | None,
        session_id: str | None,
    ) -> tuple[int, bytes, str]:
        """Proxy one request to its session's worker.

        Returns ``(status, body, content_type)``.  A dead or unreachable
        worker yields a fast 503 the client can retry against.
        """
        handle = self.pick_worker(session_id)
        self.metrics.counter(
            "router_requests_total", ("worker", str(handle.index))
        ).inc()
        return self._forward_to(handle, method, path, body)

    def _forward_to(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        body: bytes | None,
    ) -> tuple[int, bytes, str]:
        """Proxy one request to one specific worker."""
        with handle.lock:
            port = handle.port
        if port is None or not handle.alive:
            return self._unavailable(handle)
        host = "127.0.0.1"
        headers = {"Content-Type": "application/json"}
        for _attempt in range(2):
            connection = self._pool.acquire(host, port)
            reused = connection is not None
            if connection is None:
                connection = http.client.HTTPConnection(
                    host, port, timeout=self.forward_timeout
                )
                self.metrics.counter("router_connections_opened_total").inc()
            else:
                self.metrics.counter("router_connections_reused_total").inc()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                payload = response.read()
            except (
                http.client.RemoteDisconnected,
                ConnectionResetError,
                BrokenPipeError,
            ) as error:
                del error
                connection.close()
                if reused:
                    # A keep-alive socket the worker closed while the
                    # router held it idle: retry exactly once on a fresh
                    # connection.  Only this stale-reuse case retries —
                    # a fresh connection failing means the worker is
                    # really down (and blind re-sends stay safe for
                    # clients passing ``client_turn_id``).
                    self.metrics.counter("router_forward_retries_total").inc()
                    continue
                return self._unavailable(handle)
            except (http.client.HTTPException, OSError) as error:
                del error  # refused / timed out: worker is (re)starting
                connection.close()
                return self._unavailable(handle)
            if response.status >= 400:
                # Worker answered with an error status — relayed verbatim.
                self.metrics.counter(
                    "router_errors_total", ("code", str(response.status))
                ).inc()
            self._pool.release(host, port, connection, not response.will_close)
            return (
                response.status,
                payload,
                response.getheader("Content-Type") or "application/json",
            )
        return self._unavailable(handle)

    def broadcast(
        self, method: str, path: str, body: bytes | None
    ) -> tuple[int, bytes, str]:
        """Fan one request out to *every* worker and aggregate the results.

        Each worker owns an independent KB replica, so cluster-wide
        operations (``POST /refresh``) must reach all of them — session
        affinity would refresh one replica and leave N-1 serving the old
        snapshot.  Returns 200 only when every worker accepted; any
        failure downgrades the aggregate to the worst worker status so
        the operator sees a partial refresh instead of a silent one.
        """
        results = []
        worst = 200
        for handle in self.workers:
            self.metrics.counter(
                "router_broadcasts_total", ("worker", str(handle.index))
            ).inc()
            status, payload, _content_type = self._forward_to(
                handle, method, path, body
            )
            try:
                parsed: Any = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                parsed = payload.decode("utf-8", "replace")
            results.append(
                {"worker": handle.index, "status": status, "body": parsed}
            )
            worst = max(worst, status)
        body_out = json.dumps({
            "status": "ok" if worst < 400 else "partial_failure",
            "workers": results,
        }).encode("utf-8")
        return worst, body_out, "application/json"

    def _unavailable(self, handle: WorkerHandle) -> tuple[int, bytes, str]:
        self.metrics.counter("router_errors_total", ("code", "503")).inc()
        payload = json.dumps({
            "error": "worker_unavailable",
            "worker": handle.index,
            "message": "the session's worker is restarting; retry shortly",
        }).encode("utf-8")
        return 503, payload, "application/json"

    # -- router-local endpoints ---------------------------------------------

    def health(self) -> tuple[int, bytes, str]:
        workers = []
        all_up = True
        for handle in self.workers:
            with handle.lock:
                port = handle.port
                process = handle.process
                restarts = handle.restarts
            running = process is not None and process.poll() is None
            up = running and port is not None and self._healthy(port)
            all_up = all_up and up
            workers.append({
                "index": handle.index,
                "up": up,
                "port": port,
                "pid": process.pid if process else None,
                "restarts": restarts,
            })
        body = json.dumps({
            "status": "ok" if all_up else "degraded",
            "role": "router",
            "workers": workers,
        }).encode("utf-8")
        return (200 if all_up else 503), body, "application/json"

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SessionRouter":
        """Spawn every worker, then serve in a background thread."""
        with self._lifecycle_lock:
            if self._thread is not None:
                raise RuntimeError("router already started")
        try:
            for handle in self.workers:
                self.spawn_worker(handle)
        except BaseException:
            self.stop()
            raise
        with self._lifecycle_lock:
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="repro-router-monitor",
                daemon=True,
            )
            self._monitor.start()
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-router",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted, then stop."""
        try:
            for handle in self.workers:
                self.spawn_worker(handle)
            with self._lifecycle_lock:
                self._monitor = threading.Thread(
                    target=self._monitor_loop,
                    name="repro-router-monitor",
                    daemon=True,
                )
                self._monitor.start()
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Stop the monitor, terminate every worker, close the listener."""
        self._stopping.set()
        with self._lifecycle_lock:
            monitor, self._monitor = self._monitor, None
        if monitor is not None:
            monitor.join(timeout=5.0)
        for handle in self.workers:
            with handle.lock:
                process, handle.process = handle.process, None
            if process is None or process.poll() is not None:
                continue
            process.terminate()  # workers drain + snapshot on SIGTERM
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
        with self._lifecycle_lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            self._httpd.shutdown()
            thread.join(timeout=5.0)
        self._httpd.server_close()
        self._pool.close()

    def __enter__(self) -> "SessionRouter":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


class _RouterHandler(BaseHTTPRequestHandler):
    """Thin HTTP shim: extract the session id, delegate to the router."""

    protocol_version = "HTTP/1.1"
    server: "_RouterHTTPServer"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the router's metrics replace per-request stderr noise

    def _session_id(self, body: bytes | None) -> str | None:
        from urllib.parse import parse_qs, urlsplit

        query = parse_qs(urlsplit(self.path).query)
        if "session_id" in query:
            return query["session_id"][0]
        if body:
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                return None
            sid = payload.get("session_id") if isinstance(payload, dict) else None
            return str(sid) if sid is not None else None
        return None

    def _respond(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, method: str) -> None:
        router = self.server.router
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        path_only = self.path.split("?", 1)[0]
        if method == "GET" and path_only == "/healthz":
            self._respond(*router.health())
            return
        if method == "GET" and path_only == "/metrics":
            rendered = router.metrics.render().encode("utf-8")
            self._respond(200, rendered, "text/plain; version=0.0.4")
            return
        try:
            if method == "POST" and path_only == "/refresh":
                # Cluster-wide: every worker owns its own KB replica.
                status, payload, content_type = router.broadcast(
                    method, self.path, body
                )
            else:
                status, payload, content_type = router.forward(
                    method, self.path, body, self._session_id(body)
                )
        except Exception as error:
            payload = json.dumps(
                {"error": "router_error", "message": str(error)}
            ).encode("utf-8")
            status, content_type = 500, "application/json"
        self._respond(status, payload, content_type)

    def _dispatch(self, method: str) -> None:
        try:
            self._handle(method)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


class _RouterHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 128

    def __init__(
        self, address: tuple[str, int], router: SessionRouter
    ) -> None:
        super().__init__(address, _RouterHandler)
        self.router = router
