"""Durable session store: journaled turns, snapshot paging, durable ids.

:class:`DurableSessionStore` wraps the serving layer's in-memory
:class:`~repro.serving.session_store.SessionStore` with a data
directory::

    data_dir/
      session_ids.json      allocator high-water mark (atomic rewrite)
      sessions/
        <sid>.journal       framed JSONL, one record per committed turn
        <sid>.snapshot      atomic context snapshot (compaction point)

Life of a turn: the serving layer runs the pipeline under the session's
entry lock, then calls :meth:`commit_turn` — the journal append (with
the configured fsync policy) *is* the commit; only afterwards does the
HTTP response leave the process, so a ``kill -9`` never loses a turn a
client saw acknowledged.  Every ``snapshot_every`` journaled records
the session's context is snapshotted and the journal compacted down to
the suffix a recovery would still replay.

Eviction (TTL idle, LRU pressure, explicit drop) snapshots-then-drops
via the inner store's ``on_evict`` hook, turning the bounded working
set into a page cache over the data directory: an evicted session's
next request pages it back in through
:func:`~repro.persistence.recovery.recover_session`.

:class:`DurableSessionIdAllocator` persists the id high-water mark in
reservation batches, so a restarted process can never re-issue an id —
recovered and new sessions cannot collide.  ``stride``/``offset`` carve
the id space into residue classes for the multi-worker router (worker
*i* of *N* allocates ids ≡ *i* (mod *N*), which is exactly the router's
affinity hash).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.engine.agent import ConversationAgent, Session, SessionIdAllocator
from repro.persistence import recovery
from repro.persistence.journal import (
    FSYNC_POLICIES,
    JournalError,
    SessionJournal,
    compact_journal,
)
from repro.persistence.snapshot import write_snapshot
from repro.serving.session_store import SessionEntry, SessionStore

#: Allocator ids persisted per high-water-mark write; one small atomic
#: file write amortized over this many session creations.
ID_RESERVE_BATCH = 128


class DurableSessionIdAllocator(SessionIdAllocator):
    """A :class:`SessionIdAllocator` whose high-water mark survives
    restarts.

    The persisted value is a *reservation*: ids below it may have been
    handed out, so a restart resumes past it.  Crashing forfeits at most
    ``ID_RESERVE_BATCH`` unissued ids per restart — a gap, never a
    collision.
    """

    def __init__(
        self,
        path: str | Path,
        offset: int = 1,
        stride: int = 1,
        reserve_batch: int = ID_RESERVE_BATCH,
    ) -> None:
        self.path = Path(path)
        self._reserve_batch = max(1, reserve_batch)
        self._reserved_to = 0
        start = self._aligned_start(self._load_reserved(), offset, stride)
        super().__init__(start=start, stride=stride)

    @staticmethod
    def _aligned_start(reserved: int, offset: int, stride: int) -> int:
        """First id >= ``reserved`` in the worker's residue class."""
        residue = offset % stride
        start = max(reserved, 1)
        remainder = start % stride
        if remainder != residue:
            start += (residue - remainder) % stride
        return start if start > 0 else stride

    def _load_reserved(self) -> int:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            reserved = int(data["reserved"])
        except (FileNotFoundError, KeyError, TypeError, ValueError):
            return 0
        self._reserved_to = reserved
        return reserved

    def reserve(self, up_to: int) -> None:  # locks: SessionIdAllocator._lock
        """Persist a new high-water mark before ids past the current
        reservation are handed out (called under the allocator lock)."""
        if up_to <= self._reserved_to:
            return
        reserved = up_to + self._reserve_batch * self.stride
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=f".{self.path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"reserved": reserved, "stride": self.stride}, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._reserved_to = reserved


class DurableSessionStore:
    """A drop-in session manager whose sessions survive the process.

    Exposes the same ``create``/``get``/``drop``/``sweep``/``clear``
    surface as :class:`SessionStore` (the serving layer is agnostic),
    plus :meth:`commit_turn` and recovery.  All persistence counters are
    plain ints guarded by ``_counter_lock`` and surfaced via
    :meth:`stats` / the serving layer's ``/metrics`` gauges.
    """

    def __init__(
        self,
        agent: ConversationAgent,
        data_dir: str | Path,
        *,
        max_sessions: int = 1024,
        ttl: float = 1800.0,
        clock: Callable[[], float] = time.monotonic,
        fsync: str = "always",
        fsync_interval: float = 1.0,
        snapshot_every: int = 64,
        id_stride: int = 1,
        id_offset: int = 1,
        recover_on_boot: bool = True,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r} (choose from {FSYNC_POLICIES})"
            )
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.agent = agent
        self.data_dir = Path(data_dir)
        self.sessions_dir = recovery.sessions_dir(self.data_dir)
        self.sessions_dir.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self.snapshot_every = snapshot_every
        # Durable ids must be installed before any session is created so
        # a recovered store can never hand a new conversation an id that
        # is already journaled on disk.
        self.allocator = DurableSessionIdAllocator(
            self.data_dir / "session_ids.json",
            offset=id_offset,
            stride=id_stride,
        )
        agent.id_allocator = self.allocator
        self.store = SessionStore(
            agent,
            max_sessions=max_sessions,
            ttl=ttl,
            clock=clock,
            on_evict=self._on_evict,
        )
        self._journal_lock = threading.Lock()
        self._journals: dict[str, SessionJournal] = {}
        self._since_snapshot: dict[str, int] = {}
        self._resume_lock = threading.Lock()
        self._resuming: dict[str, threading.Lock] = {}
        self._counter_lock = threading.Lock()
        self.counters: dict[str, int] = {
            "turns_journaled_total": 0,
            "journal_fsyncs_total": 0,
            "journal_bytes_total": 0,
            "snapshots_written_total": 0,
            "journal_compactions_total": 0,
            "sessions_evicted_persisted_total": 0,
            "sessions_resumed_from_disk_total": 0,
            "sessions_recovered_total": 0,
            "sessions_recovery_failed_total": 0,
            "recovery_turns_replayed_total": 0,
            "recovery_replay_mismatches_total": 0,
            "recovery_torn_records_total": 0,
        }
        if recover_on_boot:
            self.recover(limit=max_sessions)

    # -- counters ------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            self.counters[name] += amount

    def counter(self, name: str) -> int:
        with self._counter_lock:
            return self.counters[name]

    # -- SessionStore surface ------------------------------------------------

    def __len__(self) -> int:
        return len(self.store)

    def ids(self) -> list[str]:
        return self.store.ids()

    @property
    def evicted_ttl(self) -> int:
        return self.store.eviction_counts()[0]

    @property
    def evicted_lru(self) -> int:
        return self.store.eviction_counts()[1]

    def create(self) -> tuple[str, SessionEntry]:
        return self.store.create()

    def get(self, session_id: str) -> SessionEntry | None:
        """A live session, or the session paged back in from disk."""
        entry = self.store.get(session_id)
        if entry is not None:
            return entry
        return self._resume_from_disk(session_id)

    def drop(self, session_id: str) -> bool:
        return self.store.drop(session_id)

    def sweep(self) -> int:
        return self.store.sweep()

    def clear(self) -> None:
        self.store.clear()

    def stats(self) -> dict[str, int]:
        stats = self.store.stats()
        with self._counter_lock:
            stats.update(self.counters)
        stats["durable_sessions"] = len(recovery.list_session_ids(self.data_dir))
        return stats

    # -- the commit path -----------------------------------------------------

    def _journal_for(self, sid: str) -> SessionJournal:
        with self._journal_lock:
            journal = self._journals.get(sid)
            if journal is None:
                journal = SessionJournal(
                    recovery.journal_path(self.data_dir, sid),
                    fsync=self.fsync_policy,
                    fsync_interval=self.fsync_interval,
                )
                self._journals[sid] = journal
            return journal

    def commit_turn(
        self,
        sid: str,
        entry: SessionEntry,
        utterance: str,
        result: dict[str, Any],
        client_turn_id: str | None = None,
    ) -> None:  # locks: SessionEntry.lock
        """Make one completed turn durable (called under the entry lock).

        When this returns, the turn is on disk per the fsync policy and
        the serving layer may acknowledge it to the client.
        """
        journal = self._journal_for(sid)
        record = {
            "type": "turn",
            "turn": entry.session.context.turn_count,
            "utterance": utterance,
            "response": {
                "text": result["text"],
                "intent": result["intent"],
                "confidence": result["confidence"],
                "kind": result["kind"],
                "entities": dict(result["entities"]),
                "sql": result["sql"],
            },
        }
        if client_turn_id is not None:
            record["client_turn_id"] = client_turn_id
        fsyncs_before = journal.fsync_count()
        written = journal.append(record)
        self._count("turns_journaled_total")
        self._count("journal_bytes_total", written)
        self._count("journal_fsyncs_total", journal.fsync_count() - fsyncs_before)
        if client_turn_id is not None:
            entry.last_commit = (client_turn_id, dict(result))
        with self._journal_lock:
            pending = self._since_snapshot.get(sid, 0) + 1
            self._since_snapshot[sid] = pending
        if pending >= self.snapshot_every:
            self._snapshot(sid, entry)

    def _snapshot(self, sid: str, entry: SessionEntry) -> None:  # locks: SessionEntry.lock
        """Snapshot the context and compact the journal (entry lock held
        by the caller, or the entry already unreachable)."""
        write_snapshot(
            recovery.snapshot_path(self.data_dir, sid),
            entry.session.id,
            entry.session.context,
            last_commit=entry.last_commit,
        )
        self._count("snapshots_written_total")
        with self._journal_lock:
            journal = self._journals.pop(sid, None)
            self._since_snapshot.pop(sid, None)
        if journal is not None:
            journal.close()
        compact_journal(
            recovery.journal_path(self.data_dir, sid),
            keep_after_turn=entry.session.context.turn_count,
        )
        self._count("journal_compactions_total")

    # -- eviction and paging -------------------------------------------------

    def _on_evict(self, sid: str, entry: SessionEntry, reason: str) -> None:
        """Snapshot-then-drop: eviction persists, never loses, state."""
        with entry.lock:
            self._snapshot(sid, entry)
        self._count("sessions_evicted_persisted_total")

    def _resume_from_disk(self, sid: str) -> SessionEntry | None:
        """Page a journaled session back into the live working set."""
        with self._resume_lock:
            gate = self._resuming.setdefault(sid, threading.Lock())
        try:
            with gate:
                # A concurrent resume may have won while we waited.
                entry = self.store.get(sid)
                if entry is not None:
                    return entry
                try:
                    recovered = recovery.recover_session(
                        self.agent, self.data_dir, sid
                    )
                except Exception as exc:
                    self._count("sessions_recovery_failed_total")
                    raise JournalError(
                        f"session {sid} could not be recovered: {exc}"
                    ) from exc
                if recovered is None:
                    return None
                self._absorb_recovery(recovered)
                self._count("sessions_resumed_from_disk_total")
                _sid, entry = self.store.adopt(
                    recovered.session,
                    turn_count=recovered.turn_count,
                    last_commit=recovered.last_commit,
                )
                return entry
        finally:
            with self._resume_lock:
                # Identity-checked: only the thread whose setdefault won
                # may retire the gate, so a late finisher can never pop a
                # newer gate out from under the threads queued on it.
                if self._resuming.get(sid) is gate:
                    self._resuming.pop(sid)

    def _absorb_recovery(self, recovered: recovery.RecoveredSession) -> None:
        self._count("sessions_recovered_total")
        self._count("recovery_turns_replayed_total", recovered.replayed)
        self._count("recovery_replay_mismatches_total", recovered.mismatches)
        self._count("recovery_torn_records_total", recovered.torn_records)

    def recover(self, limit: int | None = None) -> recovery.RecoveryReport:
        """Boot-time crash recovery: rebuild journaled sessions eagerly.

        Bounded by ``limit`` (sessions beyond it page in lazily); each
        recovered session is adopted into the live store, so a restarted
        worker answers its next request for any of them with zero
        additional replay.
        """
        recovered, report = recovery.recover_all(
            self.agent, self.data_dir, limit=limit
        )
        for _sid, result in recovered:
            self._absorb_recovery(result)
            self.store.adopt(
                result.session,
                turn_count=result.turn_count,
                last_commit=result.last_commit,
            )
        self._count("sessions_recovery_failed_total", report.sessions_failed)
        return report

    # -- shutdown ------------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: snapshot every live session, close journals.

        After a clean close every session is a snapshot with an empty
        journal suffix — the next boot recovers with zero replay.
        """
        self.store.clear()  # evicts through _on_evict → snapshot each
        with self._journal_lock:
            journals = list(self._journals.values())
            self._journals.clear()
            self._since_snapshot.clear()
        for journal in journals:
            journal.close()
