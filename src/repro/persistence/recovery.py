"""Crash recovery: rebuild sessions from snapshots and journal replay.

The turn pipeline is deterministic — the same utterance against the
same context and the same trained artifacts yields byte-identical
output — so a session is fully described by its snapshot (context as of
turn *T*) plus the journaled utterances after *T*.  Recovery restores
the snapshot and replays the suffix through the real
:class:`~repro.engine.pipeline.TurnPipeline` (``Session.ask``), which
also re-registers the replayed interactions in the agent's feedback log
so post-recovery thumbs feedback keeps working.

Every replayed turn's regenerated response is compared against the
journaled response text; a divergence (an agent rebuilt from different
artifacts, a non-deterministic stage) is counted as a *replay mismatch*
and surfaced on ``/metrics`` — the recovered session still adopts the
replayed state, which is what the pipeline would now produce.

:func:`inspect_session` is the read-only sibling used by ``repro
sessions`` and ``GET /sessions``: it renders a session's durable state
(snapshot history + journal suffix) without an agent and without
touching the live store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import EngineError
from repro.persistence.journal import read_journal
from repro.persistence.snapshot import load_snapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.agent import ConversationAgent, Session

#: Filename suffixes inside a data dir's ``sessions/`` directory.
JOURNAL_SUFFIX, SNAPSHOT_SUFFIX = ".journal", ".snapshot"


def sessions_dir(data_dir: str | Path) -> Path:
    return Path(data_dir) / "sessions"


def journal_path(data_dir: str | Path, sid: str) -> Path:
    return sessions_dir(data_dir) / f"{sid}{JOURNAL_SUFFIX}"


def snapshot_path(data_dir: str | Path, sid: str) -> Path:
    return sessions_dir(data_dir) / f"{sid}{SNAPSHOT_SUFFIX}"


def list_session_ids(data_dir: str | Path) -> list[str]:
    """Every session id with durable state, numerically ordered."""
    directory = sessions_dir(data_dir)
    if not directory.is_dir():
        return []
    ids = {
        path.name[: -len(suffix)]
        for suffix in (JOURNAL_SUFFIX, SNAPSHOT_SUFFIX)
        for path in directory.glob(f"*{suffix}")
    }
    return sorted(ids, key=lambda sid: (not sid.isdigit(), int(sid) if sid.isdigit() else 0, sid))


@dataclass
class RecoveredSession:
    """One session rebuilt from disk."""

    session: "Session"
    turn_count: int
    replayed: int = 0
    mismatches: int = 0
    torn_records: int = 0
    last_commit: tuple[str, dict[str, Any]] | None = None
    #: "snapshot", "replay" or "snapshot+replay".
    source: str = "replay"


@dataclass
class RecoveryReport:
    """Aggregate counters for a boot-time recovery pass."""

    sessions_recovered: int = 0
    sessions_failed: int = 0
    turns_replayed: int = 0
    replay_mismatches: int = 0
    torn_records: int = 0
    failures: list[tuple[str, str]] = field(default_factory=list)

    def absorb(self, recovered: RecoveredSession) -> None:
        self.sessions_recovered += 1
        self.turns_replayed += recovered.replayed
        self.replay_mismatches += recovered.mismatches
        self.torn_records += recovered.torn_records


def recover_session(
    agent: "ConversationAgent", data_dir: str | Path, sid: str
) -> RecoveredSession | None:
    """Rebuild one session from its durable state; None when absent.

    Restores the snapshot when one loads cleanly, then replays every
    journal record past the snapshot's turn count through the real
    pipeline.  A torn journal tail recovers to the last complete turn.
    """
    from repro.engine.agent import Session

    snap = load_snapshot(snapshot_path(data_dir, sid))
    journal = read_journal(journal_path(data_dir, sid))
    if snap is None and not journal.records and not journal.total_bytes:
        return None

    session = Session(agent, int(sid) if sid.isdigit() else 0)
    source = "replay"
    last_commit: tuple[str, dict[str, Any]] | None = None
    covered = 0
    if snap is not None:
        session.context = snap.context
        covered = snap.turn_count
        last_commit = snap.last_commit
        source = "snapshot"

    replayed = mismatches = 0
    for record in journal.records:
        turn = int(record.get("turn", 0))
        if turn <= covered:
            continue
        utterance = record.get("utterance")
        if not isinstance(utterance, str) or not utterance.strip():
            continue
        try:
            response = session.ask(utterance)
        except EngineError:
            mismatches += 1
            continue
        replayed += 1
        journaled = record.get("response") or {}
        if journaled.get("text") is not None and journaled["text"] != response.text:
            mismatches += 1
        client_turn_id = record.get("client_turn_id")
        if client_turn_id:
            last_commit = (
                str(client_turn_id),
                _result_from_record(sid, record, session.context.turn_count),
            )
    if replayed:
        source = "snapshot+replay" if snap is not None else "replay"
    return RecoveredSession(
        session=session,
        turn_count=session.context.turn_count,
        replayed=replayed,
        mismatches=mismatches,
        torn_records=1 if journal.torn else 0,
        last_commit=last_commit,
        source=source,
    )


def _result_from_record(sid: str, record: dict, turn: int) -> dict[str, Any]:
    """Rebuild the ``/chat`` result dict a committed turn answered with."""
    response = record.get("response") or {}
    return {
        "session_id": sid,
        "text": response.get("text", ""),
        "intent": response.get("intent"),
        "confidence": response.get("confidence", 0.0),
        "kind": response.get("kind", ""),
        "entities": dict(response.get("entities") or {}),
        "sql": response.get("sql"),
        "turn": turn,
    }


def recover_all(
    agent: "ConversationAgent",
    data_dir: str | Path,
    limit: int | None = None,
) -> tuple[list[tuple[str, RecoveredSession]], RecoveryReport]:
    """Rebuild every journaled session (boot-time crash recovery).

    ``limit`` bounds eager recovery to the most recent sessions (highest
    ids — the allocator is monotonic); the rest stay on disk and page in
    lazily on their next request.
    """
    report = RecoveryReport()
    recovered: list[tuple[str, RecoveredSession]] = []
    ids = list_session_ids(data_dir)
    if limit is not None and len(ids) > limit:
        ids = ids[-limit:] if limit > 0 else []
    for sid in ids:
        try:
            result = recover_session(agent, data_dir, sid)
        except Exception as exc:  # a damaged session must not block boot
            report.sessions_failed += 1
            report.failures.append((sid, f"{type(exc).__name__}: {exc}"))
            continue
        if result is None:
            continue
        recovered.append((sid, result))
        report.absorb(result)
    return recovered, report


def inspect_session(data_dir: str | Path, sid: str) -> dict[str, Any] | None:
    """Read-only view of one session's durable state (no agent needed).

    Merges the snapshot's transcript with the journal suffix; journal
    records past the snapshot contribute their *journaled* responses
    (what the user actually saw), so the view reflects committed
    history, not a replay.
    """
    snap = load_snapshot(snapshot_path(data_dir, sid))
    journal = read_journal(journal_path(data_dir, sid))
    if snap is None and not journal.records and not journal.total_bytes:
        return None
    turns: list[dict[str, Any]] = []
    covered = 0
    if snap is not None:
        covered = snap.turn_count
        turns.extend(record.to_dict() for record in snap.context.history)
    journal_suffix = 0
    for record in journal.records:
        turn = int(record.get("turn", 0))
        if turn <= covered:
            continue
        response = record.get("response") or {}
        turns.append({
            "user": record.get("utterance", ""),
            "agent": response.get("text", ""),
            "intent": response.get("intent"),
            "confidence": response.get("confidence", 0.0),
            "entities": dict(response.get("entities") or {}),
            "outcome_kind": response.get("kind", ""),
        })
        journal_suffix += 1
    return {
        "session_id": sid,
        "turns": turns,
        "turn_count": len(turns),
        "snapshot_turns": covered,
        "journal_records": len(journal.records),
        "journal_suffix": journal_suffix,
        "journal_bytes": journal.total_bytes,
        "journal_torn": journal.torn,
    }
