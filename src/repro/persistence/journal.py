"""Append-only per-session journal with length+CRC framing.

The durability contract of the serving layer (§7's always-on cloud
deployment) is *committed turns survive ``kill -9``*: a turn is
committed once its journal record has been appended (and, per the fsync
policy, forced to stable storage) — only then does the HTTP response go
out.  Each session owns one journal file of framed JSONL records::

    <payload-bytes> <crc32-hex> <payload-json>\\n

The decimal byte length and CRC-32 of the payload prefix every record,
so the reader can detect a torn final record (a crash mid-``write``) or
a corrupted one (bit rot, partial page flush) and recover every turn up
to the last complete record instead of refusing the whole file.  With a
single appending writer per session (the per-session turn lock), only
the final record can ever be damaged.

Fsync policy trades durability for throughput:

* ``"always"``  — fsync after every append; a committed turn survives
  power loss, not just process death (the default).
* ``"interval"`` — fsync at most once per ``fsync_interval`` seconds;
  process crashes lose nothing (the OS has the bytes), power loss can
  lose the last interval.
* ``"never"``   — flush to the OS on every append, never fsync; same
  process-crash guarantee, weakest against power loss.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import zlib

from repro.errors import JournalError

FSYNC_POLICIES = ("always", "interval", "never")


def crc32(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def frame_record(record: dict[str, Any]) -> bytes:
    """Serialize one record as a framed line (length, CRC, payload)."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    return b"%d %08x %s\n" % (len(payload), crc32(payload), payload)


@dataclass
class JournalReadResult:
    """Everything :func:`read_journal` learned about one journal file."""

    records: list[dict[str, Any]] = field(default_factory=list)
    #: True when the file ends in a torn/corrupt record that was dropped.
    torn: bool = False
    torn_reason: str | None = None
    #: Byte offset of the end of the last *complete* record.
    valid_bytes: int = 0
    total_bytes: int = 0


def read_journal(path: str | Path) -> JournalReadResult:
    """Parse a journal, tolerating a torn or corrupt tail.

    Reads records sequentially and stops at the first framing violation
    (bad header, short payload, CRC mismatch, unparseable JSON): with a
    single appending writer only the tail can be damaged, so everything
    before the violation is trusted and everything from it on is
    dropped.  A missing file reads as an empty journal.
    """
    path = Path(path)
    result = JournalReadResult()
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return result
    result.total_bytes = len(data)
    offset = 0
    while offset < len(data):
        torn = _parse_record(data, offset, result)
        if torn is not None:
            result.torn = True
            result.torn_reason = torn
            break
        offset = result.valid_bytes
    return result


def _parse_record(
    data: bytes, offset: int, result: JournalReadResult
) -> str | None:
    """Parse one record at ``offset``; returns a torn-reason or None.

    On success the record is appended and ``result.valid_bytes`` moves
    past the record's trailing newline.
    """
    header_end = data.find(b" ", offset)
    if header_end < 0:
        return "truncated header (no length field)"
    crc_end = data.find(b" ", header_end + 1)
    if crc_end < 0:
        return "truncated header (no crc field)"
    try:
        length = int(data[offset:header_end])
        declared_crc = int(data[header_end + 1:crc_end], 16)
    except ValueError:
        return "unparseable header"
    if length < 0 or length > 64 * 1024 * 1024:
        return "implausible record length"
    payload_start = crc_end + 1
    payload_end = payload_start + length
    if payload_end + 1 > len(data):
        return "truncated payload"
    if data[payload_end:payload_end + 1] != b"\n":
        return "missing record terminator"
    payload = data[payload_start:payload_end]
    if crc32(payload) != declared_crc:
        return "crc mismatch"
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return "unparseable payload"
    if not isinstance(record, dict):
        return "non-object payload"
    result.records.append(record)
    result.valid_bytes = payload_end + 1
    return None


class SessionJournal:
    """The appending writer for one session's journal file.

    Thread-safe; opened lazily on the first append so sessions that
    never complete a turn leave no file behind.  ``appends``/``fsyncs``
    feed the persistence counters on ``/metrics``.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "always",
        fsync_interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r} (choose from {FSYNC_POLICIES})"
            )
        if fsync_interval <= 0:
            raise JournalError("fsync_interval must be positive")
        self.path = Path(path)
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self._clock = clock
        self._lock = threading.Lock()
        self._handle = None
        self._last_fsync = 0.0
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0

    def append(self, record: dict[str, Any]) -> int:
        """Append one framed record; returns the bytes written.

        The record is durable per the fsync policy when this returns —
        the caller may acknowledge the turn to the client.
        """
        frame = frame_record(record)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "ab")
            self._handle.write(frame)
            self._handle.flush()
            self.appends += 1
            self.bytes_written += len(frame)
            if self.fsync_policy == "always":
                self._fsync_locked()
            elif self.fsync_policy == "interval":
                now = self._clock()
                if now - self._last_fsync >= self.fsync_interval:
                    self._fsync_locked()
                    self._last_fsync = now
        return len(frame)

    def _fsync_locked(self) -> None:
        os.fsync(self._handle.fileno())
        self.fsyncs += 1

    def fsync_count(self) -> int:
        """How many fsyncs this journal has issued, read under the lock."""
        with self._lock:
            return self.fsyncs

    def sync(self) -> None:
        """Force an fsync regardless of policy (used on graceful close)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._fsync_locked()

    def close(self, sync: bool = True) -> None:
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            if sync:
                self._fsync_locked()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SessionJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def compact_journal(path: str | Path, keep_after_turn: int) -> int:
    """Drop records covered by a snapshot (``turn <= keep_after_turn``).

    Rewrites the journal atomically (temp file + ``os.replace``) keeping
    only the suffix a recovery would still need to replay; returns how
    many records were dropped.  Must not race an open writer — callers
    close the session's :class:`SessionJournal` first.
    """
    path = Path(path)
    result = read_journal(path)
    if not path.exists():
        return 0
    kept = [
        record
        for record in result.records
        if int(record.get("turn", 0)) > keep_after_turn
    ]
    dropped = len(result.records) - len(kept)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            for record in kept:
                handle.write(frame_record(record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return dropped
