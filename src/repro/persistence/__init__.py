"""Durable, resumable conversation sessions and multi-worker serving.

The paper's system serves long-lived clinical conversations from an
always-on cloud deployment (§6–§7); this subsystem gives the
reproduction the same durability and horizontal-scale properties on top
of the in-memory serving layer:

* :mod:`repro.persistence.journal` — append-only per-session journal
  (length+CRC framed JSONL, configurable fsync policy, torn-tail
  tolerant reader, compaction),
* :mod:`repro.persistence.snapshot` — atomic
  :class:`~repro.dialogue.context.ConversationContext` snapshots
  (temp file + ``os.replace``) that double as journal compaction
  points,
* :mod:`repro.persistence.store` — :class:`DurableSessionStore`, the
  journaling wrapper around the serving layer's session store, plus
  the restart-safe :class:`DurableSessionIdAllocator`,
* :mod:`repro.persistence.recovery` — crash recovery by snapshot
  restore + deterministic journal replay through the turn pipeline,
* :mod:`repro.persistence.router` — the session-affine multi-process
  front end: N worker subprocesses, each with its own immutable KB
  replica, behind a hash router with restart-and-recover supervision.
"""

from repro.persistence.journal import (
    FSYNC_POLICIES,
    JournalReadResult,
    SessionJournal,
    compact_journal,
    frame_record,
    read_journal,
)
from repro.persistence.recovery import (
    RecoveredSession,
    RecoveryReport,
    inspect_session,
    list_session_ids,
    recover_all,
    recover_session,
)
from repro.persistence.router import (
    SessionRouter,
    WorkerHandle,
    affinity,
    worker_dir,
)
from repro.persistence.snapshot import (
    SessionSnapshot,
    load_snapshot,
    write_snapshot,
)
from repro.persistence.store import (
    DurableSessionIdAllocator,
    DurableSessionStore,
)

__all__ = [
    "FSYNC_POLICIES",
    "DurableSessionIdAllocator",
    "DurableSessionStore",
    "JournalReadResult",
    "RecoveredSession",
    "RecoveryReport",
    "SessionJournal",
    "SessionRouter",
    "SessionSnapshot",
    "WorkerHandle",
    "affinity",
    "compact_journal",
    "frame_record",
    "inspect_session",
    "list_session_ids",
    "load_snapshot",
    "read_journal",
    "recover_all",
    "recover_session",
    "worker_dir",
    "write_snapshot",
]
