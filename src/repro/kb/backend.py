"""Pluggable KB backend seam: protocol, immutable snapshots, swap handle.

Every layer above the KB (planner consumers, template execution, the
query cache, serving, persistence workers, the analysis toolchain)
speaks :class:`KBBackend` instead of the concrete in-memory
:class:`~repro.kb.database.Database`.  Two implementations ship:

* the existing in-memory engine (``Database`` itself satisfies the
  protocol; :class:`KBSnapshot` freezes one into an immutable view), and
* :class:`~repro.kb.sqlite_backend.SQLiteBackend`, which lowers parsed
  SQL to real SQLite where the dialect allows and falls back to the
  in-memory executor where it does not.

:class:`KBHandle` is the copy-on-write indirection that makes
zero-downtime refresh possible: the serving layer holds one handle for
the lifetime of the process, and ``refresh`` atomically swaps the
backend underneath it.  In-flight plans keep executing against the old
snapshot (they captured the backend object before the swap); new turns
observe the new one.  The handle's ``generation`` is *epoch-scaled* so
the existing generation-tagged caches (plan cache, query cache)
invalidate across swaps even when the new snapshot's own counters are
numerically smaller than the old one's.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Protocol, runtime_checkable

from repro.errors import KBError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kb.database import Database
    from repro.kb.schema import TableSchema
    from repro.kb.sql.result import ResultSet
    from repro.kb.statistics import TableStatistics
    from repro.kb.table import Table

__all__ = [
    "KBBackend",
    "KBHandle",
    "KBSnapshot",
    "backend_spec_from_env",
    "open_backend",
    "parse_backend_spec",
    "wrap_database",
]

#: Environment variable selecting the KB backend for CLI entry points.
BACKEND_ENV_VAR = "REPRO_KB_BACKEND"

#: Multiplier applied to the handle epoch when deriving generations.  A
#: fresh snapshot restarts its local generation counters near zero, so a
#: naive swap could *lower* the observed generation and let a stale
#: cache entry validate.  Scaling by a stride far above any realistic
#: local counter makes every swap strictly monotonic.
EPOCH_STRIDE = 10**12


@runtime_checkable
class KBBackend(Protocol):
    """What the rest of the system is allowed to ask of a KB.

    ``Database`` satisfies this structurally; so do :class:`KBSnapshot`,
    :class:`KBHandle` and the SQLite backend.  The protocol is
    deliberately read-only — mutation (``insert``/``create_table``) is a
    construction-time concern, not part of the serving seam.
    """

    @property
    def name(self) -> str: ...

    @property
    def backend_name(self) -> str: ...

    @property
    def generation(self) -> int: ...

    @property
    def schema_generation(self) -> int: ...

    def schema(self) -> dict[str, "TableSchema"]: ...

    def has_table(self, name: str) -> bool: ...

    def table(self, name: str) -> "Table": ...

    def tables(self) -> Iterable["Table"]: ...

    def table_names(self) -> list[str]: ...

    def prepare(self, sql: str, *, use_indexes: bool = True) -> Any: ...

    def query(self, sql: str, params: Mapping[str, Any] | None = None) -> "ResultSet": ...

    def explain(self, sql: str) -> str: ...

    def plan_stats(self) -> dict[str, int]: ...

    def execution_paths(self) -> dict[str, int]: ...

    def statistics(self, table_name: str) -> "TableStatistics": ...

    def all_statistics(self) -> dict[str, "TableStatistics"]: ...


_MUTATORS = ("insert", "insert_many", "create_table")


class KBSnapshot:
    """An immutable read-only view over a fully built ``Database``.

    Freezing is the contract the refresh machinery relies on: once a
    snapshot is behind a :class:`KBHandle`, nothing may mutate it, so
    in-flight queries on the old snapshot stay correct after a swap.
    All read methods delegate; the three mutators raise ``KBError``.
    """

    backend_name = "memory"

    def __init__(self, database: "Database") -> None:
        from repro.kb.database import Database as _Database

        if isinstance(database, KBSnapshot):
            database = database.wrapped
        if not isinstance(database, _Database):
            raise KBError(
                "KBSnapshot wraps the in-memory Database; got "
                f"{type(database).__name__}"
            )
        self._database = database

    @property
    def wrapped(self) -> "Database":
        return self._database

    @property
    def name(self) -> str:
        return self._database.name

    @property
    def generation(self) -> int:
        return self._database.generation

    @property
    def schema_generation(self) -> int:
        return self._database.schema_generation

    def insert(self, *args: Any, **kwargs: Any) -> Any:
        raise KBError("KB snapshot is immutable: insert is not allowed")

    def insert_many(self, *args: Any, **kwargs: Any) -> Any:
        raise KBError("KB snapshot is immutable: insert_many is not allowed")

    def create_table(self, *args: Any, **kwargs: Any) -> Any:
        raise KBError("KB snapshot is immutable: create_table is not allowed")

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._database, attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KBSnapshot({self._database.name!r}, generation={self.generation})"


class KBHandle:
    """Copy-on-write indirection over the active :class:`KBBackend`.

    The hot path (``query``/``prepare``/attribute delegation) performs a
    single read of ``self._state`` — an ``(epoch, backend)`` tuple bound
    in one assignment — so it takes **no lock**.  ``swap`` replaces the
    whole tuple atomically (CPython attribute stores are atomic);
    readers either see the old pair or the new pair, never a torn mix of
    old epoch with new backend.  A small lock serialises writers only.
    """

    def __init__(self, backend: "KBBackend") -> None:
        import threading

        if isinstance(backend, KBHandle):
            raise KBError("KBHandle cannot wrap another KBHandle")
        # _state is replaced wholesale on swap; hot-path readers bind it
        # once and index the bound tuple, never self._state twice.
        self._state: tuple[int, Any] = (0, backend)
        self._swap_lock = threading.Lock()
        self.refreshes = 0

    # -- swap machinery ------------------------------------------------------

    @property
    def backend(self) -> "KBBackend":
        return self._state[1]

    @property
    def epoch(self) -> int:
        return self._state[0]

    def swap(self, backend: "KBBackend") -> int:
        """Atomically install ``backend``; returns the new epoch."""

        if isinstance(backend, KBHandle):
            raise KBError("cannot swap a KBHandle into a KBHandle")
        with self._swap_lock:
            epoch = self._state[0] + 1
            self._state = (epoch, backend)
            self.refreshes = epoch
            return epoch

    # -- generation scaling --------------------------------------------------

    @property
    def generation(self) -> int:
        epoch, backend = self._state
        return epoch * EPOCH_STRIDE + backend.generation

    @property
    def schema_generation(self) -> int:
        epoch, backend = self._state
        return epoch * EPOCH_STRIDE + backend.schema_generation

    # -- protocol delegation -------------------------------------------------

    @property
    def name(self) -> str:
        return self._state[1].name

    @property
    def backend_name(self) -> str:
        return self._state[1].backend_name

    def schema(self) -> dict[str, "TableSchema"]:
        return self._state[1].schema()

    def has_table(self, name: str) -> bool:
        return self._state[1].has_table(name)

    def table(self, name: str) -> "Table":
        return self._state[1].table(name)

    def tables(self) -> Iterable["Table"]:
        return self._state[1].tables()

    def table_names(self) -> list[str]:
        return self._state[1].table_names()

    def prepare(self, sql: str, *, use_indexes: bool = True) -> Any:
        return self._state[1].prepare(sql, use_indexes=use_indexes)

    def query(self, sql: str, params: Mapping[str, Any] | None = None) -> "ResultSet":
        # One state read: the plan both compiles and executes against a
        # single backend even if a swap lands mid-call.
        return self._state[1].query(sql, params)

    def explain(self, sql: str) -> str:
        return self._state[1].explain(sql)

    def plan_stats(self) -> dict[str, int]:
        return self._state[1].plan_stats()

    def execution_paths(self) -> dict[str, int]:
        return self._state[1].execution_paths()

    def statistics(self, table_name: str) -> "TableStatistics":
        return self._state[1].statistics(table_name)

    def all_statistics(self) -> dict[str, "TableStatistics"]:
        return self._state[1].all_statistics()

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._state[1], attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        epoch, backend = self._state
        return f"KBHandle(epoch={epoch}, backend={type(backend).__name__})"


def parse_backend_spec(spec: str) -> tuple[str, str | None]:
    """Parse ``memory`` / ``sqlite`` / ``sqlite:<path>`` into (kind, path)."""

    text = (spec or "").strip()
    if not text or text == "memory":
        return ("memory", None)
    if text == "sqlite":
        return ("sqlite", None)
    if text.startswith("sqlite:"):
        path = text[len("sqlite:"):].strip()
        return ("sqlite", path or None)
    raise KBError(
        f"unknown KB backend spec {spec!r}; expected 'memory', 'sqlite', or"
        " 'sqlite:<path>'"
    )


def backend_spec_from_env(default: str = "memory") -> str:
    """Read the backend spec from ``REPRO_KB_BACKEND`` (default memory)."""

    return os.environ.get(BACKEND_ENV_VAR, "").strip() or default


def wrap_database(database: "Database", spec: str = "memory") -> "KBBackend":
    """Materialise ``database`` behind the backend named by ``spec``.

    ``memory`` returns a :class:`KBSnapshot` view; ``sqlite`` (optionally
    with a path, defaulting to an in-process ``:memory:`` database)
    round-trips rows and schema through a real SQLite file.
    """

    kind, path = parse_backend_spec(spec)
    if kind == "memory":
        return KBSnapshot(database)
    from repro.kb.sqlite_backend import SQLiteBackend

    return SQLiteBackend.from_database(database, path or ":memory:")


def open_backend(spec: str) -> "KBBackend":
    """Open an already-materialised backend (``sqlite:<path>``)."""

    kind, path = parse_backend_spec(spec)
    if kind != "sqlite" or path is None:
        raise KBError(
            f"cannot open backend from spec {spec!r}: a persisted backend"
            " path is required (e.g. 'sqlite:kb.db')"
        )
    from repro.kb.sqlite_backend import SQLiteBackend

    return SQLiteBackend(path)
