"""Column data types and value coercion for the relational engine."""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import IntegrityError


class DataType(enum.Enum):
    """Supported column data types.

    The paper's KB stores reference text (descriptions, dosing notes),
    identifiers, names and a handful of numeric attributes; four scalar
    types cover all of it.
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"

    def python_type(self) -> type:
        """Return the Python type used to store values of this data type."""
        return _PYTHON_TYPES[self]


_PYTHON_TYPES = {
    DataType.INTEGER: int,
    DataType.FLOAT: float,
    DataType.TEXT: str,
    DataType.BOOLEAN: bool,
}


def coerce_value(value: Any, data_type: DataType, column: str = "?") -> Any:
    """Coerce ``value`` to ``data_type``, or raise :class:`IntegrityError`.

    ``None`` is passed through unchanged; nullability is enforced by the
    schema layer, not here.  Coercions are conservative: we accept exact
    types, int→float widening, and numeric strings only for numeric types
    when they parse cleanly.
    """
    if value is None:
        return None

    if data_type is DataType.INTEGER:
        # bool is a subclass of int; reject it to avoid silent surprises.
        if isinstance(value, bool):
            raise IntegrityError(f"column {column!r}: expected integer, got bool")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                pass
        raise IntegrityError(f"column {column!r}: cannot coerce {value!r} to integer")

    if data_type is DataType.FLOAT:
        if isinstance(value, bool):
            raise IntegrityError(f"column {column!r}: expected float, got bool")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise IntegrityError(f"column {column!r}: cannot coerce {value!r} to float")

    if data_type is DataType.TEXT:
        if isinstance(value, str):
            return value
        raise IntegrityError(f"column {column!r}: expected text, got {type(value).__name__}")

    if data_type is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise IntegrityError(f"column {column!r}: cannot coerce {value!r} to boolean")

    raise IntegrityError(f"unsupported data type: {data_type}")


def normalize_key(value: Any) -> Any:
    """The hashable equality key for ``value`` under SQL ``=`` semantics.

    Two non-NULL values compare equal in the executor iff their
    normalized keys are equal, so hash joins, secondary indexes and
    GROUP BY/DISTINCT grouping all agree with the row-at-a-time
    comparison: strings are case-folded, and booleans are tagged so that
    ``TRUE`` never silently matches the integer ``1`` the way raw Python
    dict keys would.  ``None`` normalizes to ``None`` — callers must
    exclude it, since NULL never equals anything (not even NULL).
    """
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, str):
        return value.lower()
    return value


def is_comparable(left: Any, right: Any) -> bool:
    """Return True if ``left`` and ``right`` can be ordered against each other."""
    if left is None or right is None:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return type(left) is type(right)
