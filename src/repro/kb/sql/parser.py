"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.kb.sql import ast
from repro.kb.sql.lexer import Token, TokenType, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise SQLSyntaxError(
                f"expected {' or '.join(names)}, got {token.value or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def _expect_punct(self, value: str) -> Token:
        token = self._peek()
        if token.type is not TokenType.PUNCT or token.value != value:
            raise SQLSyntaxError(
                f"expected {value!r}, got {token.value or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def _match_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == value:
            self._advance()
            return True
        return False

    def _match_keyword(self, *names: str) -> Token | None:
        token = self._peek()
        if token.is_keyword(*names):
            return self._advance()
        return None

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise SQLSyntaxError(
                f"expected identifier, got {token.value or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    # -- grammar ------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT") is not None
        items = self._parse_select_list()
        self._expect_keyword("FROM")
        source = self._parse_table_ref()
        joins: list[ast.Join] = []
        while True:
            join = self._parse_join()
            if join is None:
                break
            joins.append(join)
        where = None
        if self._match_keyword("WHERE"):
            where = self._parse_expression()
        group_by: tuple[ast.ColumnRef, ...] = ()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._parse_column_ref_list())
        order_by: list[ast.OrderItem] = []
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                col = self._parse_column_ref()
                descending = False
                if self._match_keyword("DESC"):
                    descending = True
                else:
                    self._match_keyword("ASC")
                order_by.append(ast.OrderItem(col, descending))
                if not self._match_punct(","):
                    break
        limit = offset = None
        if self._match_keyword("LIMIT"):
            limit = self._parse_nonnegative_int("LIMIT")
        # OFFSET is valid with or without a preceding LIMIT.
        if self._match_keyword("OFFSET"):
            offset = self._parse_nonnegative_int("OFFSET")
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise SQLSyntaxError(
                f"unexpected trailing input {token.value!r}", token.position
            )
        return ast.Select(
            items=items,
            source=source,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER or "." in token.value:
            raise SQLSyntaxError(f"{clause} expects an integer", token.position)
        self._advance()
        return int(token.value)

    def _parse_select_list(self) -> tuple[ast.SelectItem, ...]:
        if self._match_punct("*"):
            return ()
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        expression: ast.ColumnRef | ast.Aggregate
        if token.is_keyword(*_AGGREGATES):
            expression = self._parse_aggregate()
        else:
            expression = self._parse_column_ref()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier().value
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expression, alias)

    def _parse_aggregate(self) -> ast.Aggregate:
        func = self._advance().value
        self._expect_punct("(")
        distinct = self._match_keyword("DISTINCT") is not None
        if self._match_punct("*"):
            if func != "COUNT":
                raise SQLSyntaxError(f"{func}(*) is not valid", self._peek().position)
            argument = None
        else:
            argument = self._parse_column_ref()
        self._expect_punct(")")
        return ast.Aggregate(func, argument, distinct)

    def _parse_column_ref_list(self) -> list[ast.ColumnRef]:
        cols = [self._parse_column_ref()]
        while self._match_punct(","):
            cols.append(self._parse_column_ref())
        return cols

    def _parse_column_ref(self) -> ast.ColumnRef:
        first = self._expect_identifier().value
        if self._match_punct("."):
            second = self._expect_identifier().value
            return ast.ColumnRef(column=second, table=first)
        return ast.ColumnRef(column=first)

    def _parse_table_ref(self) -> ast.TableRef:
        table = self._expect_identifier().value
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier().value
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.TableRef(table, alias)

    def _parse_join(self) -> ast.Join | None:
        token = self._peek()
        if token.is_keyword("INNER"):
            self._advance()
            self._expect_keyword("JOIN")
            kind = "inner"
        elif token.is_keyword("LEFT"):
            self._advance()
            self._match_keyword("OUTER")
            self._expect_keyword("JOIN")
            kind = "left"
        elif token.is_keyword("JOIN"):
            self._advance()
            kind = "inner"
        else:
            return None
        table = self._parse_table_ref()
        self._expect_keyword("ON")
        condition = self._parse_expression()
        return ast.Join(kind, table, condition)

    # -- expressions ----------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._match_keyword("OR"):
            left = ast.Or(left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = ast.And(left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._match_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        if self._match_punct("("):
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        operand = self._parse_operand()
        token = self._peek()
        if token.type is TokenType.OPERATOR:
            op = self._advance().value
            if op == "!=":
                op = "<>"
            right = self._parse_operand()
            return ast.Comparison(op, operand, right)
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._parse_operand()
            return ast.LikePredicate(operand, pattern)
        if token.is_keyword("NOT"):
            self._advance()
            next_token = self._peek()
            if next_token.is_keyword("LIKE"):
                self._advance()
                pattern = self._parse_operand()
                return ast.LikePredicate(operand, pattern, negated=True)
            if next_token.is_keyword("IN"):
                self._advance()
                values = self._parse_value_list()
                return ast.InPredicate(operand, values, negated=True)
            raise SQLSyntaxError("expected LIKE or IN after NOT", next_token.position)
        if token.is_keyword("IN"):
            self._advance()
            values = self._parse_value_list()
            return ast.InPredicate(operand, values)
        if token.is_keyword("IS"):
            self._advance()
            negated = self._match_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return ast.IsNullPredicate(operand, negated)
        raise SQLSyntaxError(
            f"expected comparison after operand, got {token.value or 'end of input'!r}",
            token.position,
        )

    def _parse_value_list(self) -> tuple[ast.Expression, ...]:
        self._expect_punct("(")
        values = [self._parse_operand()]
        while self._match_punct(","):
            values.append(self._parse_operand())
        self._expect_punct(")")
        return tuple(values)

    def _parse_operand(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            return ast.Literal(float(text) if "." in text else int(text))
        if token.type is TokenType.PARAMETER:
            self._advance()
            return ast.Parameter(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.type is TokenType.IDENTIFIER:
            return self._parse_column_ref()
        raise SQLSyntaxError(
            f"expected value or column, got {token.value or 'end of input'!r}",
            token.position,
        )


def parse(sql: str) -> ast.Select:
    """Parse ``sql`` into a :class:`repro.kb.sql.ast.Select` tree."""
    return _Parser(tokenize(sql)).parse_select()
