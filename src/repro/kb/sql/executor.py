"""SQL evaluation primitives: scopes, predicates, aggregates, projection.

This module holds the row-at-a-time *evaluation* layer of the SQL
engine; *planning* (join strategy, index selection, predicate pushdown)
lives in :mod:`repro.kb.sql.planner`, which compiles a parsed SELECT
into a reusable :class:`~repro.kb.sql.planner.CompiledPlan`.  The
:func:`execute` entry point here compiles and runs in one shot for
callers that do not need plan reuse.

The evaluation semantics are intentionally simple and predictable:

* FROM/JOIN build an intermediate row list; equality joins use a hash
  join on the join key (index-backed when the planner allows it),
  everything else falls back to a nested loop.
* WHERE filters, GROUP BY + aggregates reduce, then DISTINCT,
  ORDER BY, LIMIT/OFFSET shape the output.

NULL semantics are simplified two-valued logic: any comparison against
NULL is false (matching what the paper's lookup/relationship templates
need, without implementing full SQL three-valued logic).  Every
equality path — nested loop, hash join, and secondary-index probe —
shares :func:`repro.kb.types.normalize_key`, so NULL join keys never
match (not even NULL == NULL) and booleans never silently match
integers on any path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import (
    AmbiguousColumnError,
    BindingError,
    SQLExecutionError,
    UnknownColumnError,
)
from repro.kb.sql import ast
from repro.kb.sql.result import ResultSet
from repro.kb.types import is_comparable, normalize_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kb.database import Database


class _Scope:
    """Maps column references to positions in the combined join row."""

    def __init__(self) -> None:
        self._bindings: list[str] = []          # binding names, lowering preserved
        self._widths: list[int] = []
        self._qualified: dict[tuple[str, str], int] = {}
        self._unqualified: dict[str, list[int]] = {}
        self._position_binding: list[str] = []  # row position -> binding name
        self._memo: dict[ast.ColumnRef, int] = {}

    def add_table(self, binding: str, column_names: list[str]) -> None:
        base = sum(self._widths)
        low_binding = binding.lower()
        if any(b == low_binding for b in self._bindings):
            raise SQLExecutionError(f"duplicate table binding {binding!r}")
        self._bindings.append(low_binding)
        self._widths.append(len(column_names))
        for offset, col in enumerate(column_names):
            pos = base + offset
            self._qualified[(low_binding, col.lower())] = pos
            self._unqualified.setdefault(col.lower(), []).append(pos)
            self._position_binding.append(low_binding)

    @property
    def width(self) -> int:
        return sum(self._widths)

    def resolve(self, ref: ast.ColumnRef) -> int:
        """Return the combined-row index for ``ref``.

        An unqualified reference matching columns in more than one
        registered table raises :class:`AmbiguousColumnError` naming
        every candidate binding — it is never silently resolved to the
        first-registered table.
        """
        memoized = self._memo.get(ref)
        if memoized is not None:
            return memoized
        if ref.table is not None:
            key = (ref.table.lower(), ref.column.lower())
            if key not in self._qualified:
                raise UnknownColumnError(ref.column, table=ref.table)
            self._memo[ref] = self._qualified[key]
            return self._qualified[key]
        positions = self._unqualified.get(ref.column.lower())
        if not positions:
            raise UnknownColumnError(ref.column)
        if len(positions) > 1:
            candidates = tuple(
                f"{self._position_binding[pos]}.{ref.column}" for pos in positions
            )
            raise AmbiguousColumnError(ref.column, candidates)
        self._memo[ref] = positions[0]
        return positions[0]


def _eval_operand(
    node: ast.Expression, row: tuple, scope: _Scope, params: dict[str, Any]
) -> Any:
    if isinstance(node, ast.Literal):
        return node.value
    if isinstance(node, ast.ColumnRef):
        return row[scope.resolve(node)]
    if isinstance(node, ast.Parameter):
        if node.name not in params:
            raise BindingError(f"missing parameter :{node.name}")
        return params[node.name]
    raise SQLExecutionError(f"expected a value operand, got {type(node).__name__}")


def _values_equal(left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    return left == right


def _like_match(value: Any, pattern: Any) -> bool:
    if value is None or pattern is None:
        return False
    text = str(value).lower()
    pat = str(pattern).lower()
    # Translate SQL wildcards into a simple backtracking match.
    return _wildcard_match(text, pat)


def _wildcard_match(text: str, pattern: str) -> bool:
    """Match SQL LIKE semantics: % = any run, _ = any single char."""
    ti = pi = 0
    star_pi = -1
    star_ti = 0
    while ti < len(text):
        if pi < len(pattern) and (pattern[pi] == "_" or pattern[pi] == text[ti]):
            ti += 1
            pi += 1
        elif pi < len(pattern) and pattern[pi] == "%":
            star_pi = pi
            star_ti = ti
            pi += 1
        elif star_pi >= 0:
            star_ti += 1
            ti = star_ti
            pi = star_pi + 1
        else:
            return False
    while pi < len(pattern) and pattern[pi] == "%":
        pi += 1
    return pi == len(pattern)


def _eval_predicate(
    node: ast.Expression, row: tuple, scope: _Scope, params: dict[str, Any]
) -> bool:
    if isinstance(node, ast.And):
        return _eval_predicate(node.left, row, scope, params) and _eval_predicate(
            node.right, row, scope, params
        )
    if isinstance(node, ast.Or):
        return _eval_predicate(node.left, row, scope, params) or _eval_predicate(
            node.right, row, scope, params
        )
    if isinstance(node, ast.Not):
        return not _eval_predicate(node.operand, row, scope, params)
    if isinstance(node, ast.Comparison):
        left = _eval_operand(node.left, row, scope, params)
        right = _eval_operand(node.right, row, scope, params)
        if node.op == "=":
            return _values_equal(left, right)
        if node.op == "<>":
            if left is None or right is None:
                return False
            return not _values_equal(left, right)
        if not is_comparable(left, right):
            return False
        if isinstance(left, str) and isinstance(right, str):
            left = left.lower()
            right = right.lower()
        if node.op == "<":
            return left < right
        if node.op == ">":
            return left > right
        if node.op == "<=":
            return left <= right
        if node.op == ">=":
            return left >= right
        raise SQLExecutionError(f"unknown comparison operator {node.op!r}")
    if isinstance(node, ast.LikePredicate):
        matched = _like_match(
            _eval_operand(node.operand, row, scope, params),
            _eval_operand(node.pattern, row, scope, params),
        )
        return not matched if node.negated else matched
    if isinstance(node, ast.InPredicate):
        value = _eval_operand(node.operand, row, scope, params)
        found = any(
            _values_equal(value, _eval_operand(item, row, scope, params))
            for item in node.values
        )
        return not found if node.negated else found
    if isinstance(node, ast.IsNullPredicate):
        value = _eval_operand(node.operand, row, scope, params)
        return (value is not None) if node.negated else (value is None)
    raise SQLExecutionError(f"cannot evaluate {type(node).__name__} as predicate")


def _split_equi_join(
    condition: ast.Expression, left_scope: _Scope, right_scope: _Scope
) -> tuple[int, int] | None:
    """If ``condition`` is ``left.col = right.col``, return their indices.

    Returns (index_into_left_row, index_into_right_row) or None when the
    condition is not a simple cross-side equality.
    """
    if not isinstance(condition, ast.Comparison) or condition.op != "=":
        return None
    if not isinstance(condition.left, ast.ColumnRef):
        return None
    if not isinstance(condition.right, ast.ColumnRef):
        return None
    for first, second in (
        (condition.left, condition.right),
        (condition.right, condition.left),
    ):
        try:
            left_idx = left_scope.resolve(first)
        except (UnknownColumnError, SQLExecutionError):
            continue
        try:
            right_idx = right_scope.resolve(second)
        except (UnknownColumnError, SQLExecutionError):
            continue
        return left_idx, right_idx
    return None


def _norm_key(value: Any) -> Any:
    return normalize_key(value)


def _aggregate_value(agg: ast.Aggregate, rows: list[tuple], scope: _Scope) -> Any:
    if agg.argument is None:  # COUNT(*)
        return len(rows)
    idx = scope.resolve(agg.argument)
    values = [row[idx] for row in rows if row[idx] is not None]
    if agg.distinct:
        seen: dict[Any, Any] = {}
        for value in values:
            seen.setdefault(_norm_key(value), value)
        values = list(seen.values())
    func = agg.function
    if func == "COUNT":
        return len(values)
    if not values:
        return None
    if func == "SUM":
        return sum(values)
    if func == "AVG":
        return sum(values) / len(values)
    if func == "MIN":
        return min(values)
    if func == "MAX":
        return max(values)
    raise SQLExecutionError(f"unknown aggregate {func!r}")


def _sort_key(value: Any) -> tuple:
    # NULLs sort first; strings case-insensitively.
    if value is None:
        return (0, "")
    if isinstance(value, str):
        return (1, value.lower())
    if isinstance(value, bool):
        return (1, int(value))
    return (1, value)


def execute(
    database: "Database",
    query: str | ast.Select,
    params: dict[str, Any] | None = None,
    *,
    use_indexes: bool = True,
) -> ResultSet:
    """Execute ``query`` (SQL text or a parsed Select) against ``database``.

    ``params`` binds named ``:name`` parameters.  Unused parameters are
    ignored; missing ones raise :class:`~repro.errors.BindingError`.

    This compiles a fresh plan on every call; callers on a hot path
    should use :meth:`repro.kb.database.Database.prepare`, which caches
    compiled plans per SQL text.  ``use_indexes=False`` forces the
    reference full-scan path (used by the differential tests and the
    executor benchmark) — results are identical either way.
    """
    from repro.kb.sql.parser import parse
    from repro.kb.sql.planner import compile_plan

    select = parse(query) if isinstance(query, str) else query
    plan = compile_plan(database, select, use_indexes=use_indexes)
    return plan.execute(params)


def _project_plain(
    select: ast.Select,
    rows: list[tuple],
    scope: _Scope,
    database: "Database",
) -> tuple[list[str], list[tuple]]:
    if select.is_star():
        columns: list[str] = []
        for table_ref in [select.source] + [j.table for j in select.joins]:
            table = database.table(table_ref.table)
            columns.extend(table.schema.column_names())
        return columns, list(rows)
    indices = []
    names = []
    for item in select.items:
        assert isinstance(item.expression, ast.ColumnRef)
        indices.append(scope.resolve(item.expression))
        names.append(item.output_name())
    projected = [tuple(row[i] for i in indices) for row in rows]
    return names, projected


def _project_grouped(
    select: ast.Select, rows: list[tuple], scope: _Scope
) -> tuple[list[str], list[tuple]]:
    if select.is_star():
        raise SQLExecutionError("SELECT * cannot be combined with GROUP BY/aggregates")
    group_indices = [scope.resolve(col) for col in select.group_by]
    group_names = {idx for idx in group_indices}

    # Non-aggregate select items must be grouping columns.
    plan: list[tuple[str, Any]] = []  # ("col", index) or ("agg", Aggregate)
    names: list[str] = []
    for item in select.items:
        names.append(item.output_name())
        if isinstance(item.expression, ast.Aggregate):
            plan.append(("agg", item.expression))
        else:
            idx = scope.resolve(item.expression)
            if select.group_by and idx not in group_names:
                raise SQLExecutionError(
                    f"column {item.expression} must appear in GROUP BY"
                )
            if not select.group_by:
                raise SQLExecutionError(
                    f"column {item.expression} mixed with aggregates "
                    "requires GROUP BY"
                )
            plan.append(("col", idx))

    groups: dict[tuple, list[tuple]] = {}
    if select.group_by:
        order: list[tuple] = []
        for row in rows:
            key = tuple(_norm_key(row[i]) for i in group_indices)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        keys = order
    else:
        groups[()] = list(rows)
        keys = [()]

    out_rows: list[tuple] = []
    for key in keys:
        group_rows = groups[key]
        values = []
        for kind, payload in plan:
            if kind == "col":
                values.append(group_rows[0][payload])
            else:
                values.append(_aggregate_value(payload, group_rows, scope))
        out_rows.append(tuple(values))
    return names, out_rows
