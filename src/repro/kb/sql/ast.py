"""Abstract syntax tree for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A constant value: number, string, boolean or NULL."""

    value: Any


@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference (``alias.column`` or ``column``)."""

    column: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Parameter:
    """A named parameter ``:name`` bound at execution time."""

    name: str


@dataclass(frozen=True)
class Comparison:
    """A binary comparison: =, <>, <, >, <=, >=."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class LikePredicate:
    """``expr LIKE pattern`` with % and _ wildcards (case-insensitive)."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class InPredicate:
    """``expr IN (v1, v2, ...)``."""

    operand: Expression
    values: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNullPredicate:
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class And:
    left: Expression
    right: Expression


@dataclass(frozen=True)
class Or:
    left: Expression
    right: Expression


@dataclass(frozen=True)
class Not:
    operand: Expression


Expression = Union[
    Literal,
    ColumnRef,
    Parameter,
    Comparison,
    LikePredicate,
    InPredicate,
    IsNullPredicate,
    And,
    Or,
    Not,
]


# ---------------------------------------------------------------------------
# Select structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call: COUNT/SUM/AVG/MIN/MAX over a column or ``*``."""

    function: str  # COUNT, SUM, AVG, MIN, MAX
    argument: ColumnRef | None  # None means COUNT(*)
    distinct: bool = False


@dataclass(frozen=True)
class SelectItem:
    """One projected output: a column reference or an aggregate, with alias."""

    expression: ColumnRef | Aggregate
    alias: str | None = None

    def output_name(self) -> str:
        """The column name used for this item in the result set."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.column
        agg = self.expression
        arg = str(agg.argument) if agg.argument else "*"
        return f"{agg.function.lower()}({arg})"


@dataclass(frozen=True)
class TableRef:
    """A table in FROM/JOIN with an optional alias."""

    table: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by in the query scope."""
        return self.alias or self.table


@dataclass(frozen=True)
class Join:
    """A join clause."""

    kind: str  # "inner" or "left"
    table: TableRef
    condition: Expression


@dataclass(frozen=True)
class OrderItem:
    column: ColumnRef
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A parsed SELECT statement."""

    items: tuple[SelectItem, ...]  # empty tuple means SELECT *
    source: TableRef
    joins: tuple[Join, ...] = ()
    where: Expression | None = None
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False

    def is_star(self) -> bool:
        """True for ``SELECT *``."""
        return not self.items

    def parameters(self) -> list[str]:
        """Names of all :name parameters, in first-appearance order."""
        out: list[str] = []
        seen: set[str] = set()

        def walk(node: Any) -> None:
            if isinstance(node, Parameter):
                if node.name not in seen:
                    seen.add(node.name)
                    out.append(node.name)
            elif isinstance(node, (And, Or, Comparison)):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, Not):
                walk(node.operand)
            elif isinstance(node, LikePredicate):
                walk(node.operand)
                walk(node.pattern)
            elif isinstance(node, InPredicate):
                walk(node.operand)
                for value in node.values:
                    walk(value)
            elif isinstance(node, IsNullPredicate):
                walk(node.operand)

        for join in self.joins:
            walk(join.condition)
        if self.where is not None:
            walk(self.where)
        return out
