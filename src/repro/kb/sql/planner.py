"""Query planning: compile a parsed SELECT into a reusable execution plan.

The paper's per-intent structured query templates are executed on every
conversation turn, so the serving hot path must not re-parse, re-resolve
or re-plan SQL per request.  :func:`compile_plan` does all of that once:

* validates tables and resolves every column reference up front,
* picks a join strategy per JOIN (index-backed hash join for equality
  keys, nested loop otherwise),
* pushes sargable WHERE conjuncts (``col = ?`` / ``col IN (...)``) down
  to the table they constrain, so execution probes a lazily-built
  :meth:`~repro.kb.table.Table.secondary_index` instead of scanning.

The resulting :class:`CompiledPlan` executes with bindings only, and its
:meth:`CompiledPlan.plan` method renders an EXPLAIN-style description of
the index-vs-scan decisions that tests and audits can assert against.

Correctness contract: a plan compiled with ``use_indexes=False`` (the
reference scan path) and one with ``use_indexes=True`` return
byte-identical result sets.  The pushdown filters are re-applied as part
of the full WHERE evaluation, and index probes share the executor's
equality normalization (NULL never matches, booleans never match
integers), so the index path can only skip rows the scan path would have
discarded — in particular, pushing a null-rejecting filter below a LEFT
JOIN is safe because any extra padded rows it creates are dropped when
the full WHERE is evaluated.

:class:`PlanCache` memoizes compiled plans per SQL text behind a lock so
many serving threads can share one cache; entries are invalidated when
the database schema generation moves.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import (
    AmbiguousColumnError,
    BindingError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.kb.sql import ast
from repro.kb.sql.executor import (
    _eval_predicate,
    _project_grouped,
    _project_plain,
    _Scope,
    _sort_key,
    _split_equi_join,
    _norm_key,
)
from repro.kb.sql.result import ResultSet
from repro.kb.types import normalize_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kb.database import Database
    from repro.kb.table import Table


# ---------------------------------------------------------------------------
# EXPLAIN-style plan description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanStep:
    """One step of a query plan, for observability and tests."""

    op: str            # scan | index-lookup | hash-join | nested-loop-join | ...
    target: str = ""   # table or binding the step operates on
    detail: str = ""   # human-readable specifics (keys, pushed filters)

    def render(self) -> str:
        parts = [self.op]
        if self.target:
            parts.append(self.target)
        text = " ".join(parts)
        return f"{text} ({self.detail})" if self.detail else text


@dataclass(frozen=True)
class QueryPlan:
    """An EXPLAIN-style, parameter-independent description of a plan."""

    steps: tuple[PlanStep, ...]

    def ops(self) -> list[str]:
        return [step.op for step in self.steps]

    @property
    def uses_index(self) -> bool:
        """True when any step probes a secondary index."""
        return any(
            step.op == "index-lookup" or "index" in step.detail
            for step in self.steps
        )

    def explain(self) -> str:
        return "\n".join(
            f"{i + 1}. {step.render()}" for i, step in enumerate(self.steps)
        )


def _expr_label(node: ast.Expression) -> str:
    if isinstance(node, ast.Literal):
        return repr(node.value)
    if isinstance(node, ast.Parameter):
        return f":{node.name}"
    if isinstance(node, ast.ColumnRef):
        return str(node)
    return type(node).__name__


# ---------------------------------------------------------------------------
# Pushdown analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _PushedFilter:
    """A sargable WHERE conjunct bound to one table segment.

    ``column_position`` indexes into that table's own row tuple;
    ``values`` are the Literal/Parameter expressions the column must
    equal (one for ``=``, several for ``IN``).  Only null-rejecting
    forms are pushed, which is what makes pushdown below LEFT JOIN safe.
    """

    column_position: int
    values: tuple[ast.Expression, ...]
    label: str


@dataclass(frozen=True)
class _Segment:
    """One table's slice of the combined join row."""

    binding: str
    table: "Table"
    offset: int
    width: int


def _conjuncts(node: ast.Expression) -> list[ast.Expression]:
    if isinstance(node, ast.And):
        return _conjuncts(node.left) + _conjuncts(node.right)
    return [node]


def _sargable(conjunct: ast.Expression) -> tuple[
    ast.ColumnRef, tuple[ast.Expression, ...]
] | None:
    """``col = value`` / ``col IN (values)`` → (col, values), else None."""
    if isinstance(conjunct, ast.Comparison) and conjunct.op == "=":
        for col, value in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if isinstance(col, ast.ColumnRef) and isinstance(
                value, (ast.Literal, ast.Parameter)
            ):
                return col, (value,)
        return None
    if isinstance(conjunct, ast.InPredicate) and not conjunct.negated:
        if isinstance(conjunct.operand, ast.ColumnRef) and all(
            isinstance(value, (ast.Literal, ast.Parameter))
            for value in conjunct.values
        ):
            return conjunct.operand, tuple(conjunct.values)
    return None


def _filter_value(node: ast.Expression, params: dict[str, Any]) -> Any:
    if isinstance(node, ast.Literal):
        return node.value
    if node.name not in params:  # ast.Parameter
        raise BindingError(f"missing parameter :{node.name}")
    return params[node.name]


# ---------------------------------------------------------------------------
# The compiled plan
# ---------------------------------------------------------------------------


@dataclass
class _JoinStep:
    """Precompiled strategy for one JOIN clause."""

    join: ast.Join
    table: "Table"
    right_width: int
    combined_scope: _Scope
    equi: tuple[int, int] | None   # (left row index, right column position)
    pushed: tuple[_PushedFilter, ...]


class CompiledPlan:
    """A parsed, resolved, strategy-selected SELECT, ready to execute.

    Compile once via :func:`compile_plan` (or
    :meth:`~repro.kb.database.Database.prepare`), then call
    :meth:`execute` with parameter bindings only.  Plans are shared
    between serving threads; the ``executions``/``index_probes``
    counters are best-effort (unlocked) telemetry.
    """

    def __init__(
        self,
        database: "Database",
        select: ast.Select,
        sql: str | None = None,
        use_indexes: bool = True,
    ) -> None:
        self.database = database
        self.select = select
        self.sql = sql
        self.use_indexes = use_indexes
        self.schema_generation = getattr(database, "schema_generation", 0)
        self.executions = 0
        self.index_probes = 0
        self._compile()

    # -- compilation ---------------------------------------------------------

    def _compile(self) -> None:
        select, database = self.select, self.database
        for table_ref in [select.source] + [j.table for j in select.joins]:
            if not database.has_table(table_ref.table):
                raise UnknownTableError(table_ref.table)

        self.base_table: "Table" = database.table(select.source.table)
        base_columns = self.base_table.schema.column_names()

        # Segments: each table's slice of the combined row.
        segments: list[_Segment] = [
            _Segment(select.source.binding, self.base_table, 0, len(base_columns))
        ]
        scope = _Scope()
        scope.add_table(select.source.binding, base_columns)

        self.join_steps: list[_JoinStep] = []
        for join in select.joins:
            right = database.table(join.table.table)
            right_columns = right.schema.column_names()
            right_scope = _Scope()
            right_scope.add_table(join.table.binding, right_columns)

            combined = _Scope()
            for segment in segments:
                combined.add_table(
                    segment.binding, segment.table.schema.column_names()
                )
            combined.add_table(join.table.binding, right_columns)

            equi = _split_equi_join(join.condition, scope, right_scope)
            segments.append(
                _Segment(
                    join.table.binding,
                    right,
                    sum(s.width for s in segments),
                    len(right_columns),
                )
            )
            self.join_steps.append(
                _JoinStep(
                    join=join,
                    table=right,
                    right_width=len(right_columns),
                    combined_scope=combined,
                    equi=equi,
                    pushed=(),
                )
            )
            scope = combined

        self.final_scope = scope
        self.segments = segments

        # Resolve every WHERE column reference now, so unknown/ambiguous
        # references fail at prepare time on both the scan and the index
        # path (an index prefilter that empties the row set must not
        # swallow a resolution error the scan path would have raised).
        if select.where is not None:
            self._resolve_refs(select.where)

        # Pushdown: bind each sargable conjunct to its table segment.
        pushed_by_segment: dict[int, list[_PushedFilter]] = {}
        if select.where is not None:
            for conjunct in _conjuncts(select.where):
                sarg = _sargable(conjunct)
                if sarg is None:
                    continue
                col, values = sarg
                position = self.final_scope.resolve(col)
                for seg_index, segment in enumerate(segments):
                    if segment.offset <= position < segment.offset + segment.width:
                        label = "{} = {}".format(
                            _expr_label(col), _expr_label(values[0])
                        ) if len(values) == 1 else "{} IN ({})".format(
                            _expr_label(col),
                            ", ".join(_expr_label(v) for v in values),
                        )
                        pushed_by_segment.setdefault(seg_index, []).append(
                            _PushedFilter(
                                position - segment.offset, values, label
                            )
                        )
                        break

        self.base_pushed: tuple[_PushedFilter, ...] = tuple(
            pushed_by_segment.get(0, ())
        )
        for i, step in enumerate(self.join_steps):
            step.pushed = tuple(pushed_by_segment.get(i + 1, ()))

        self._has_aggregates = any(
            isinstance(item.expression, ast.Aggregate) for item in select.items
        )

    def _resolve_refs(self, node: ast.Expression) -> None:
        if isinstance(node, ast.ColumnRef):
            self.final_scope.resolve(node)
        elif isinstance(node, (ast.And, ast.Or, ast.Comparison)):
            self._resolve_refs(node.left)
            self._resolve_refs(node.right)
        elif isinstance(node, ast.Not):
            self._resolve_refs(node.operand)
        elif isinstance(node, ast.LikePredicate):
            self._resolve_refs(node.operand)
            self._resolve_refs(node.pattern)
        elif isinstance(node, ast.InPredicate):
            self._resolve_refs(node.operand)
            for value in node.values:
                self._resolve_refs(value)
        elif isinstance(node, ast.IsNullPredicate):
            self._resolve_refs(node.operand)

    # -- observability -------------------------------------------------------

    def plan(self) -> QueryPlan:
        """The EXPLAIN-style description of this plan's decisions."""
        steps: list[PlanStep] = []
        base_name = self.base_table.name
        if self.use_indexes and self.base_pushed:
            steps.append(PlanStep(
                "index-lookup", base_name,
                ", ".join(f.label for f in self.base_pushed),
            ))
        else:
            steps.append(PlanStep("scan", base_name))
        for step in self.join_steps:
            pushed = ", ".join(f.label for f in step.pushed)
            if step.equi is not None:
                op = "hash-join"
                cond = step.join.condition
                detail = "{} = {}".format(
                    _expr_label(cond.left), _expr_label(cond.right)
                )
                if self.use_indexes:
                    detail += (
                        f"; index-lookup push: {pushed}" if pushed
                        else "; index on join key"
                    )
            else:
                op = "nested-loop-join"
                detail = _expr_label(step.join.condition)
                if self.use_indexes and pushed:
                    detail += f"; index-lookup push: {pushed}"
            steps.append(PlanStep(op, step.table.name, detail))
        if self.select.where is not None:
            steps.append(PlanStep("filter", detail="WHERE"))
        if self.select.group_by or self._has_aggregates:
            steps.append(PlanStep("aggregate"))
        if self.select.distinct:
            steps.append(PlanStep("distinct"))
        if self.select.order_by:
            steps.append(PlanStep("sort", detail=", ".join(
                str(item.column) + (" DESC" if item.descending else "")
                for item in self.select.order_by
            )))
        if self.select.limit is not None or self.select.offset:
            steps.append(PlanStep("limit", detail=(
                f"limit={self.select.limit} offset={self.select.offset or 0}"
            )))
        return QueryPlan(tuple(steps))

    def explain(self) -> str:
        return self.plan().explain()

    # -- execution -----------------------------------------------------------

    def _probe_positions(
        self,
        table: "Table",
        filters: tuple[_PushedFilter, ...],
        params: dict[str, Any],
    ) -> list[int]:
        """Row positions matching every pushed filter, ascending."""
        result: set[int] | None = None
        for pushed in filters:
            index = table.secondary_index(pushed.column_position)
            self.index_probes += 1
            positions: set[int] = set()
            for value_expr in pushed.values:
                value = _filter_value(value_expr, params)
                if value is None:
                    continue  # NULL never equals anything
                positions.update(index.get(normalize_key(value), ()))
            result = positions if result is None else result & positions
            if not result:
                break
        return sorted(result or ())

    def _base_rows(self, params: dict[str, Any]) -> list[tuple]:
        if self.use_indexes and self.base_pushed:
            positions = self._probe_positions(
                self.base_table, self.base_pushed, params
            )
            stored = self.base_table.rows
            return [stored[p] for p in positions]
        return list(self.base_table.rows)

    def _right_rows(self, step: _JoinStep, params: dict[str, Any]) -> list[tuple]:
        if self.use_indexes and step.pushed:
            positions = self._probe_positions(step.table, step.pushed, params)
            stored = step.table.rows
            return [stored[p] for p in positions]
        return list(step.table.rows)

    def _apply_join(
        self, step: _JoinStep, rows: list[tuple], params: dict[str, Any]
    ) -> list[tuple]:
        join = step.join
        right_width = step.right_width
        new_rows: list[tuple] = []
        if step.equi is not None:
            left_idx, right_col = step.equi
            if self.use_indexes and not step.pushed:
                # Probe the table's persistent index: no per-execution
                # hash build.  Positions are ascending, so matches come
                # out in the same order the scan-path hash join yields.
                index = step.table.secondary_index(right_col)
                self.index_probes += 1
                stored = step.table.rows
                for lrow in rows:
                    key = lrow[left_idx]
                    matches = (
                        index.get(normalize_key(key), ())
                        if key is not None else ()
                    )
                    if matches:
                        for position in matches:
                            new_rows.append(lrow + stored[position])
                    elif join.kind == "left":
                        new_rows.append(lrow + (None,) * right_width)
                return new_rows
            # Per-execution hash join over the (possibly prefiltered)
            # right rows.  NULL keys are excluded on both sides — NULL
            # never equals NULL.
            right_rows = self._right_rows(step, params)
            index_map: dict[Any, list[tuple]] = {}
            for rrow in right_rows:
                key = rrow[right_col]
                if key is not None:
                    index_map.setdefault(normalize_key(key), []).append(rrow)
            for lrow in rows:
                key = lrow[left_idx]
                matches = (
                    index_map.get(normalize_key(key), [])
                    if key is not None else []
                )
                if matches:
                    for rrow in matches:
                        new_rows.append(lrow + rrow)
                elif join.kind == "left":
                    new_rows.append(lrow + (None,) * right_width)
            return new_rows
        # Nested loop: arbitrary join condition.
        right_rows = self._right_rows(step, params)
        for lrow in rows:
            matched = False
            for rrow in right_rows:
                candidate = lrow + rrow
                if _eval_predicate(
                    join.condition, candidate, step.combined_scope, params
                ):
                    new_rows.append(candidate)
                    matched = True
            if not matched and join.kind == "left":
                new_rows.append(lrow + (None,) * right_width)
        return new_rows

    def execute(self, params: dict[str, Any] | None = None) -> ResultSet:
        """Run the plan with ``params`` bound and return the result set."""
        params = params or {}
        self.executions += 1
        select = self.select

        rows = self._base_rows(params)
        for step in self.join_steps:
            rows = self._apply_join(step, rows, params)

        scope = self.final_scope
        if select.where is not None:
            where = select.where
            rows = [
                row for row in rows
                if _eval_predicate(where, row, scope, params)
            ]

        if select.group_by or self._has_aggregates:
            result_columns, out_rows = _project_grouped(select, rows, scope)
        else:
            result_columns, out_rows = _project_plain(
                select, rows, scope, self.database
            )

        if select.distinct:
            seen: set = set()
            deduped = []
            kept_source_rows = []
            for position, row in enumerate(out_rows):
                key = tuple(_norm_key(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
                    if position < len(rows):
                        kept_source_rows.append(rows[position])
            out_rows = deduped
            # Keep ORDER BY's source rows aligned with the deduplicated output.
            if len(kept_source_rows) == len(out_rows):
                rows = kept_source_rows

        if select.order_by:
            if select.group_by or self._has_aggregates:
                # ORDER BY must reference output columns after grouping.
                lowered = [c.lower() for c in result_columns]
                # Sort ascending first, then apply per-key direction via
                # stable sorts.
                for item in reversed(select.order_by):
                    name = item.column.column.lower()
                    matches = [i for i, c in enumerate(lowered) if c == name]
                    if not matches:
                        raise UnknownColumnError(item.column.column)
                    if len(matches) > 1:
                        raise AmbiguousColumnError(
                            item.column.column,
                            tuple(f"output column {i + 1}" for i in matches),
                        )
                    idx = matches[0]
                    out_rows.sort(
                        key=lambda r: _sort_key(r[idx]), reverse=item.descending
                    )
            else:
                for item in reversed(select.order_by):
                    idx = scope.resolve(item.column)
                    paired = sorted(
                        zip(rows, out_rows),
                        key=lambda pair: _sort_key(pair[0][idx]),
                        reverse=item.descending,
                    )
                    rows = [p[0] for p in paired]
                    out_rows = [p[1] for p in paired]

        if select.offset:
            out_rows = out_rows[select.offset:]
        if select.limit is not None:
            out_rows = out_rows[: select.limit]

        return ResultSet(columns=result_columns, rows=out_rows)


def compile_plan(
    database: "Database",
    select: ast.Select,
    sql: str | None = None,
    use_indexes: bool = True,
) -> CompiledPlan:
    """Compile ``select`` against ``database`` into a reusable plan."""
    return CompiledPlan(database, select, sql=sql, use_indexes=use_indexes)


# ---------------------------------------------------------------------------
# The plan cache
# ---------------------------------------------------------------------------


class PlanCache:
    """A thread-safe LRU cache of compiled plans, keyed by SQL text.

    Entries are invalidated when the owning database's schema generation
    moves (new tables change what a SQL text can resolve to).  Data
    mutations do *not* invalidate plans: plans read rows and secondary
    indexes live at execution time, and the tables themselves rebuild
    stale indexes.
    """

    def __init__(self, max_plans: int = 256, compile_factory: Any = None) -> None:
        if max_plans < 1:
            raise ValueError("max_plans must be >= 1")
        self.max_plans = max_plans
        # Optional ``(database, sql, use_indexes) -> plan`` hook letting
        # alternative KB backends cache their own plan type behind the
        # same LRU + schema-generation invalidation.  Cached plans only
        # need ``schema_generation``/``executions``/``index_probes``.
        self._compile_factory = compile_factory
        self._lock = threading.Lock()
        self._plans: "OrderedDict[tuple[str, bool], CompiledPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __getstate__(self) -> dict[str, Any]:
        # Locks can't be copied/pickled; a copied database starts with a
        # fresh, empty cache (cached plans point at the original tables).
        return {"max_plans": self.max_plans}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(state["max_plans"])

    def get_or_compile(
        self, database: "Database", sql: str, use_indexes: bool = True
    ) -> CompiledPlan:
        from repro.kb.sql.parser import parse

        key = (sql, use_indexes)
        schema_generation = getattr(database, "schema_generation", 0)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None and plan.schema_generation == schema_generation:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.misses += 1
        # Compile outside the lock: parsing + resolution can be slow and
        # must not serialize unrelated queries.  A concurrent duplicate
        # compile is harmless — last writer wins.
        if self._compile_factory is not None:
            plan = self._compile_factory(database, sql, use_indexes)
        else:
            plan = CompiledPlan(database, parse(sql), sql=sql, use_indexes=use_indexes)
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "plans": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "executions": sum(p.executions for p in self._plans.values()),
                "index_probes": sum(
                    p.index_probes for p in self._plans.values()
                ),
            }
