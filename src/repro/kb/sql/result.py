"""Query result container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import SQLExecutionError


@dataclass
class ResultSet:
    """An executed query's output: column names plus row tuples."""

    columns: list[str]
    rows: list[tuple[Any, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> tuple[Any, ...] | None:
        """Return the first row, or None when empty."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """Return the single value of a one-column result's first row.

        Raises :class:`SQLExecutionError` when the result is empty or has
        more than one column.
        """
        if not self.rows:
            raise SQLExecutionError("scalar() on empty result")
        if len(self.columns) != 1:
            raise SQLExecutionError(
                f"scalar() needs exactly one column, result has {len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[Any]:
        """Return every value of the named output column."""
        try:
            idx = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise SQLExecutionError(f"result has no column {name!r}") from None
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Return rows as a list of column->value dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]
