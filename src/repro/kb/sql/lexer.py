"""SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT", "AS",
    "INNER", "LEFT", "OUTER", "JOIN", "ON", "GROUP", "ORDER", "BY",
    "ASC", "DESC", "LIMIT", "LIKE", "IN", "IS", "NULL", "COUNT", "SUM",
    "AVG", "MIN", "MAX", "TRUE", "FALSE", "OFFSET",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    STRING = "string"
    NUMBER = "number"
    PARAMETER = "parameter"  # :name
    OPERATOR = "operator"    # = <> != < > <= >=
    PUNCT = "punct"          # ( ) , . *
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL ``text`` into a list of tokens ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while True:
                if j >= n:
                    raise SQLSyntaxError("unterminated string literal", i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote ''
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot followed by a non-digit is a qualifier, not a decimal.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
            continue
        if ch == ":":
            j = i + 1
            if j >= n or not (text[j].isalpha() or text[j] == "_"):
                raise SQLSyntaxError("expected parameter name after ':'", i)
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(TokenType.PARAMETER, text[i + 1 : j], i))
            i = j
            continue
        if ch in "<>!=":
            two = text[i : i + 2]
            if two in ("<=", ">=", "<>", "!="):
                tokens.append(Token(TokenType.OPERATOR, two, i))
                i += 2
                continue
            if ch == "!":
                raise SQLSyntaxError("unexpected '!'", i)
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        if ch in "(),.*":
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
