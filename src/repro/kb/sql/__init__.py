"""SQL subset engine: lexer, parser and executor.

Supports the statement shape used by the paper's structured query
templates (Figure 9) and the surrounding tooling::

    SELECT [DISTINCT] cols | aggregates
    FROM table [alias]
    [INNER|LEFT] JOIN table [alias] ON <expr> ...
    [WHERE <expr>]
    [GROUP BY cols]
    [ORDER BY col [ASC|DESC], ...]
    [LIMIT n]

with named parameters written ``:name`` (the template layer binds these).
"""

from repro.kb.sql.executor import execute
from repro.kb.sql.parser import parse
from repro.kb.sql.result import ResultSet

__all__ = ["execute", "parse", "ResultSet"]
