"""SQL subset engine: lexer, parser and executor.

Supports the statement shape used by the paper's structured query
templates (Figure 9) and the surrounding tooling::

    SELECT [DISTINCT] cols | aggregates
    FROM table [alias]
    [INNER|LEFT] JOIN table [alias] ON <expr> ...
    [WHERE <expr>]
    [GROUP BY cols]
    [ORDER BY col [ASC|DESC], ...]
    [LIMIT n] [OFFSET n]

with named parameters written ``:name`` (the template layer binds these).

Execution is split in two layers: :mod:`repro.kb.sql.planner` compiles a
parsed SELECT into a reusable :class:`CompiledPlan` (join strategy,
secondary-index pushdown), while :mod:`repro.kb.sql.executor` holds the
row-at-a-time evaluation primitives and a one-shot :func:`execute`.
"""

from repro.kb.sql.executor import execute
from repro.kb.sql.parser import parse
from repro.kb.sql.planner import CompiledPlan, PlanCache, QueryPlan, compile_plan
from repro.kb.sql.result import ResultSet

__all__ = [
    "CompiledPlan",
    "PlanCache",
    "QueryPlan",
    "ResultSet",
    "compile_plan",
    "execute",
    "parse",
]
