"""The database catalog: tables, constraint enforcement, query entry point."""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import IntegrityError, SchemaError, UnknownTableError
from repro.kb.schema import ForeignKey, TableSchema
from repro.kb.statistics import TableStatistics, compute_table_statistics
from repro.kb.table import Table
from repro.kb.sql.result import ResultSet


class Database:
    """An in-memory relational database.

    A :class:`Database` owns a set of :class:`~repro.kb.table.Table` objects,
    enforces foreign keys on insert, computes the statistics that the
    ontology-generation step consumes, and executes SQL via
    :func:`repro.kb.sql.execute`.
    """

    def __init__(self, name: str = "kb") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    # -- catalog ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from ``schema`` and register it."""
        key = schema.name.lower()
        if key in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            self._validate_foreign_key(schema, fk)
        table = Table(schema)
        self._tables[key] = table
        return table

    def _validate_foreign_key(self, schema: TableSchema, fk: ForeignKey) -> None:
        # Self-references are allowed; other targets must already exist.
        if fk.referenced_table.lower() == schema.name.lower():
            target_schema = schema
        else:
            target = self._tables.get(fk.referenced_table.lower())
            if target is None:
                raise SchemaError(
                    f"table {schema.name!r}: foreign key references unknown "
                    f"table {fk.referenced_table!r}"
                )
            target_schema = target.schema
        if not target_schema.has_column(fk.referenced_column):
            raise SchemaError(
                f"table {schema.name!r}: foreign key references unknown column "
                f"{fk.referenced_table}.{fk.referenced_column}"
            )
        if target_schema.primary_key is None or (
            target_schema.primary_key.lower() != fk.referenced_column.lower()
        ):
            raise SchemaError(
                f"table {schema.name!r}: foreign key must reference the "
                f"primary key of {fk.referenced_table!r}"
            )

    def has_table(self, name: str) -> bool:
        """Return True if a table named ``name`` exists (case-insensitive)."""
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        """Return the table named ``name`` or raise :class:`UnknownTableError`."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise UnknownTableError(name) from None

    def tables(self) -> list[Table]:
        """All tables, in creation order."""
        return list(self._tables.values())

    def table_names(self) -> list[str]:
        """Declared table names, in creation order."""
        return [t.name for t in self._tables.values()]

    # -- data ----------------------------------------------------------------

    def insert(
        self, table_name: str, values: dict[str, Any] | Iterable[Any]
    ) -> tuple[Any, ...]:
        """Insert one row, enforcing foreign keys against referenced tables."""
        table = self.table(table_name)
        row = table._build_row(values)
        for fk in table.schema.foreign_keys:
            idx = table.schema.column_index(fk.column)
            value = row[idx]
            if value is None:
                continue
            target = self.table(fk.referenced_table)
            if not target.has_pk(value):
                raise IntegrityError(
                    f"table {table.name!r}: foreign key violation — "
                    f"{fk.column}={value!r} not found in "
                    f"{fk.referenced_table}.{fk.referenced_column}"
                )
        return table.insert(row)

    def insert_many(
        self, table_name: str, rows: Iterable[dict[str, Any] | Iterable[Any]]
    ) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(table_name, row)
            count += 1
        return count

    # -- queries -----------------------------------------------------------------

    def query(self, sql: str, params: dict[str, Any] | None = None) -> ResultSet:
        """Parse and execute ``sql`` with optional named parameters."""
        from repro.kb.sql.executor import execute

        return execute(self, sql, params)

    # -- statistics ----------------------------------------------------------------

    def statistics(self, table_name: str) -> TableStatistics:
        """Compute statistics for one table."""
        return compute_table_statistics(self.table(table_name))

    def all_statistics(self) -> dict[str, TableStatistics]:
        """Compute statistics for every table, keyed by lowercase name."""
        return {
            name: compute_table_statistics(table)
            for name, table in self._tables.items()
        }
