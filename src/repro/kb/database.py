"""The database catalog: tables, constraint enforcement, query entry point."""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import IntegrityError, SchemaError, UnknownTableError
from repro.kb.schema import ForeignKey, TableSchema
from repro.kb.statistics import TableStatistics, compute_table_statistics
from repro.kb.table import Table
from repro.kb.sql.planner import CompiledPlan, PlanCache
from repro.kb.sql.result import ResultSet


class Database:
    """An in-memory relational database.

    A :class:`Database` owns a set of :class:`~repro.kb.table.Table` objects,
    enforces foreign keys on insert, computes the statistics that the
    ontology-generation step consumes, and executes SQL via
    :func:`repro.kb.sql.execute`.

    It is also the reference implementation of the
    :class:`~repro.kb.backend.KBBackend` protocol (``backend_name ==
    "memory"``): every other backend must match its results
    byte-for-byte or fall back to it.
    """

    backend_name = "memory"

    def __init__(self, name: str = "kb") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._schema_generation = 0
        self._plan_cache = PlanCache()

    # -- catalog ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from ``schema`` and register it."""
        key = schema.name.lower()
        if key in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            self._validate_foreign_key(schema, fk)
        table = Table(schema)
        self._tables[key] = table
        self._schema_generation += 1
        # Cached plans resolved names against the old catalog.
        self._plan_cache.clear()
        return table

    def _validate_foreign_key(self, schema: TableSchema, fk: ForeignKey) -> None:
        # Self-references are allowed; other targets must already exist.
        if fk.referenced_table.lower() == schema.name.lower():
            target_schema = schema
        else:
            target = self._tables.get(fk.referenced_table.lower())
            if target is None:
                raise SchemaError(
                    f"table {schema.name!r}: foreign key references unknown "
                    f"table {fk.referenced_table!r}"
                )
            target_schema = target.schema
        if not target_schema.has_column(fk.referenced_column):
            raise SchemaError(
                f"table {schema.name!r}: foreign key references unknown column "
                f"{fk.referenced_table}.{fk.referenced_column}"
            )
        if target_schema.primary_key is None or (
            target_schema.primary_key.lower() != fk.referenced_column.lower()
        ):
            raise SchemaError(
                f"table {schema.name!r}: foreign key must reference the "
                f"primary key of {fk.referenced_table!r}"
            )

    def has_table(self, name: str) -> bool:
        """Return True if a table named ``name`` exists (case-insensitive)."""
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        """Return the table named ``name`` or raise :class:`UnknownTableError`."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise UnknownTableError(name) from None

    def tables(self) -> list[Table]:
        """All tables, in creation order."""
        return list(self._tables.values())

    def table_names(self) -> list[str]:
        """Declared table names, in creation order."""
        return [t.name for t in self._tables.values()]

    def schema(self) -> dict[str, TableSchema]:
        """Every table schema, keyed by lowercase name, in creation order."""
        return {name: table.schema for name, table in self._tables.items()}

    # -- data ----------------------------------------------------------------

    def insert(
        self, table_name: str, values: dict[str, Any] | Iterable[Any]
    ) -> tuple[Any, ...]:
        """Insert one row, enforcing foreign keys against referenced tables."""
        table = self.table(table_name)
        row = table._build_row(values)
        for fk in table.schema.foreign_keys:
            idx = table.schema.column_index(fk.column)
            value = row[idx]
            if value is None:
                continue
            target = self.table(fk.referenced_table)
            if not target.has_pk(value):
                raise IntegrityError(
                    f"table {table.name!r}: foreign key violation — "
                    f"{fk.column}={value!r} not found in "
                    f"{fk.referenced_table}.{fk.referenced_column}"
                )
        return table.insert(row)

    def insert_many(
        self, table_name: str, rows: Iterable[dict[str, Any] | Iterable[Any]]
    ) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(table_name, row)
            count += 1
        return count

    # -- generations ---------------------------------------------------------

    @property
    def schema_generation(self) -> int:
        """Bumps whenever the catalog changes (new tables)."""
        return self._schema_generation

    @property
    def generation(self) -> int:
        """Monotonic counter covering schema *and* data mutations.

        Computed as the schema generation plus the sum of every table's
        mutation counter, so it moves even when rows are inserted
        directly through a :class:`~repro.kb.table.Table` handle rather
        than :meth:`insert`.  Serving-layer caches key their entries on
        this value to guarantee stale answers are impossible.
        """
        return self._schema_generation + sum(
            table.generation for table in self._tables.values()
        )

    # -- queries -----------------------------------------------------------------

    def query(self, sql: str, params: dict[str, Any] | None = None) -> ResultSet:
        """Parse and execute ``sql`` with optional named parameters.

        SQL text is routed through the compiled-plan cache, so repeated
        queries (the serving hot path) skip parse/resolve/plan entirely.
        """
        return self.prepare(sql).execute(params)

    def prepare(self, sql: str, *, use_indexes: bool = True) -> "CompiledPlan":
        """Parse, resolve and plan ``sql`` once; returns a reusable plan.

        Plans are cached per SQL text, so calling this repeatedly with
        the same template string is cheap.  ``use_indexes=False``
        compiles the reference full-scan plan (results are identical;
        used by differential tests and the executor benchmark).
        """
        return self._plan_cache.get_or_compile(self, sql, use_indexes=use_indexes)

    def explain(self, sql: str) -> str:
        """The EXPLAIN-style plan description for ``sql``."""
        return self.prepare(sql).explain()

    def plan_stats(self) -> dict[str, int]:
        """Plan-cache observability: plans, hits, misses, executions, probes."""
        return self._plan_cache.stats()

    def execution_paths(self) -> dict[str, int]:
        """Executions by physical path; the in-memory engine has one path."""
        return {"memory": self.plan_stats()["executions"]}

    # -- statistics ----------------------------------------------------------------

    def statistics(self, table_name: str) -> TableStatistics:
        """Compute statistics for one table."""
        return compute_table_statistics(self.table(table_name))

    def all_statistics(self) -> dict[str, TableStatistics]:
        """Compute statistics for every table, keyed by lowercase name."""
        return {
            name: compute_table_statistics(table)
            for name, table in self._tables.items()
        }
