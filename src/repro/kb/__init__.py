"""Relational knowledge-base engine with pluggable backends.

This package is the storage substrate of the reproduction: the paper keeps
its medical KB in Db2-on-Cloud and answers every intent by executing a
structured (SQL) query template against it.  We provide the equivalent:

* :mod:`repro.kb.types` — column data types and value coercion,
* :mod:`repro.kb.schema` — table schemas with primary/foreign keys,
* :mod:`repro.kb.table` — row storage with constraint enforcement,
* :mod:`repro.kb.database` — the database catalog and query entry point,
* :mod:`repro.kb.statistics` — column statistics used by the ontology
  bootstrapping process (categorical-attribute detection),
* :mod:`repro.kb.sql` — a SQL subset (lexer, parser, executor) sufficient
  for the paper's SELECT/JOIN/WHERE query templates,
* :mod:`repro.kb.backend` — the :class:`KBBackend` protocol every layer
  above the KB speaks, plus the copy-on-write :class:`KBHandle` that
  swaps generation-tagged snapshots under live traffic,
* :mod:`repro.kb.sqlite_backend` — a stdlib-``sqlite3`` backend lowering
  the parsed SQL AST to real SQL with an in-memory fallback path.
"""

from repro.kb.backend import (
    KBBackend,
    KBHandle,
    KBSnapshot,
    backend_spec_from_env,
    open_backend,
    parse_backend_spec,
    wrap_database,
)
from repro.kb.database import Database
from repro.kb.schema import Column, ForeignKey, TableSchema
from repro.kb.sqlite_backend import SQLiteBackend
from repro.kb.statistics import ColumnStatistics, TableStatistics
from repro.kb.table import Table
from repro.kb.types import DataType
from repro.kb.sql.result import ResultSet

__all__ = [
    "Column",
    "ColumnStatistics",
    "DataType",
    "Database",
    "ForeignKey",
    "KBBackend",
    "KBHandle",
    "KBSnapshot",
    "ResultSet",
    "SQLiteBackend",
    "Table",
    "TableSchema",
    "TableStatistics",
    "backend_spec_from_env",
    "open_backend",
    "parse_backend_spec",
    "wrap_database",
]
