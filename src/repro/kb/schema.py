"""Table schemas: columns, primary keys and foreign keys.

The schema layer carries the metadata that the data-driven ontology
generation step (paper §3, reference [18]) relies on: primary-key and
foreign-key constraints are the signals from which concepts and
relationships are inferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.kb.types import DataType

_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _validate_identifier(name: str, kind: str) -> None:
    if not name:
        raise SchemaError(f"{kind} name must be non-empty")
    if name[0].isdigit():
        raise SchemaError(f"{kind} name {name!r} must not start with a digit")
    if not set(name) <= _IDENT_CHARS:
        raise SchemaError(f"{kind} name {name!r} contains invalid characters")


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Parameters
    ----------
    name:
        Column name (valid SQL identifier).
    data_type:
        One of :class:`repro.kb.types.DataType`.
    nullable:
        Whether NULL values are accepted (default True).
    """

    name: str
    data_type: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        _validate_identifier(self.name, "column")
        if not isinstance(self.data_type, DataType):
            raise SchemaError(f"column {self.name!r}: data_type must be a DataType")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint from one column to another table's column.

    Foreign keys are single-column: the synthetic medical KB, like the
    paper's, uses surrogate integer keys throughout.
    """

    column: str
    referenced_table: str
    referenced_column: str

    def __post_init__(self) -> None:
        _validate_identifier(self.column, "foreign-key column")
        _validate_identifier(self.referenced_table, "referenced table")
        _validate_identifier(self.referenced_column, "referenced column")


@dataclass
class TableSchema:
    """Schema for one table: ordered columns, primary key, foreign keys."""

    name: str
    columns: list[Column]
    primary_key: str | None = None
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        _validate_identifier(self.name, "table")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        seen: set[str] = set()
        for col in self.columns:
            low = col.name.lower()
            if low in seen:
                raise SchemaError(f"table {self.name!r}: duplicate column {col.name!r}")
            seen.add(low)
        if self.primary_key is not None:
            if self.primary_key.lower() not in seen:
                raise SchemaError(
                    f"table {self.name!r}: primary key {self.primary_key!r} "
                    "is not a column"
                )
        for fk in self.foreign_keys:
            if fk.column.lower() not in seen:
                raise SchemaError(
                    f"table {self.name!r}: foreign-key column {fk.column!r} "
                    "is not a column"
                )
        self._by_name = {col.name.lower(): col for col in self.columns}

    # -- lookups ----------------------------------------------------------

    def column(self, name: str) -> Column:
        """Return the column named ``name`` (case-insensitive)."""
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """Return True if a column named ``name`` exists (case-insensitive)."""
        return name.lower() in self._by_name

    def column_index(self, name: str) -> int:
        """Return the positional index of column ``name``."""
        low = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == low:
                return i
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column_names(self) -> list[str]:
        """Return the column names in declaration order."""
        return [col.name for col in self.columns]

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        """Return the foreign key declared on ``column``, if any."""
        low = column.lower()
        for fk in self.foreign_keys:
            if fk.column.lower() == low:
                return fk
        return None
