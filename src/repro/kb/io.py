"""CSV import/export for knowledge bases.

A database round-trips through a directory of one CSV file per table
plus a ``schema.json`` manifest (columns, types, keys, creation order).
NULL is written as ``\\N`` (the Postgres COPY convention), so empty
strings stay distinguishable.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import KBError
from repro.kb.database import Database
from repro.kb.schema import Column, ForeignKey, TableSchema
from repro.kb.types import DataType

_NULL = "\\N"
MANIFEST_NAME = "schema.json"


def _encode(value) -> str:
    if value is None:
        return _NULL
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _decode(text: str, data_type: DataType):
    if text == _NULL:
        return None
    if data_type is DataType.INTEGER:
        return int(text)
    if data_type is DataType.FLOAT:
        return float(text)
    if data_type is DataType.BOOLEAN:
        return text == "true"
    return text


def database_manifest(database: Database) -> dict:
    """The JSON-safe schema manifest for ``database``.

    Shared by the CSV round-trip here and the SQLite backend's embedded
    metadata table, so both persistence formats describe schemas
    identically.
    """
    return {
        "database": database.name,
        "tables": [
            {
                "name": table.schema.name,
                "primary_key": table.schema.primary_key,
                "columns": [
                    {
                        "name": col.name,
                        "type": col.data_type.value,
                        "nullable": col.nullable,
                    }
                    for col in table.schema.columns
                ],
                "foreign_keys": [
                    {
                        "column": fk.column,
                        "referenced_table": fk.referenced_table,
                        "referenced_column": fk.referenced_column,
                    }
                    for fk in table.schema.foreign_keys
                ],
            }
            for table in database.tables()
        ],
    }


def table_schema_from_manifest(tdata: dict) -> TableSchema:
    """Rebuild one :class:`TableSchema` from its manifest entry."""
    return TableSchema(
        name=tdata["name"],
        columns=[
            Column(
                c["name"],
                DataType(c["type"]),
                nullable=c.get("nullable", True),
            )
            for c in tdata["columns"]
        ],
        primary_key=tdata.get("primary_key"),
        foreign_keys=[
            ForeignKey(
                fk["column"], fk["referenced_table"], fk["referenced_column"]
            )
            for fk in tdata.get("foreign_keys", [])
        ],
    )


def save_database(database: Database, directory: str | Path) -> Path:
    """Write ``database`` to ``directory`` (created if needed).

    Returns the manifest path.  Layout: ``schema.json`` plus one
    ``<table>.csv`` per table with a header row.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = database_manifest(database)
    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    for table in database.tables():
        with open(directory / f"{table.name}.csv", "w", newline="",
                  encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.column_names())
            for row in table.rows:
                writer.writerow([_encode(v) for v in row])
    return manifest_path


def load_database(directory: str | Path) -> Database:
    """Load a database written by :func:`save_database`.

    Tables are created and filled in manifest order, so foreign keys
    validate as rows stream in.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise KBError(f"no {MANIFEST_NAME} manifest in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise KBError(f"invalid manifest: {exc}") from exc

    database = Database(manifest.get("database", "kb"))
    for tdata in manifest.get("tables", []):
        schema = table_schema_from_manifest(tdata)
        database.create_table(schema)
        csv_path = directory / f"{schema.name}.csv"
        if not csv_path.exists():
            continue  # an empty table need not ship a CSV
        with open(csv_path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue
            expected = [c.lower() for c in schema.column_names()]
            if [h.lower() for h in header] != expected:
                raise KBError(
                    f"{csv_path.name}: header {header} does not match the "
                    f"manifest columns {schema.column_names()}"
                )
            types = [col.data_type for col in schema.columns]
            for line_number, raw in enumerate(reader, start=2):
                if len(raw) != len(types):
                    raise KBError(
                        f"{csv_path.name}: line {line_number} has "
                        f"{len(raw)} fields, expected {len(types)}"
                    )
                try:
                    values = [
                        _decode(text, data_type)
                        for text, data_type in zip(raw, types)
                    ]
                except ValueError as exc:
                    raise KBError(
                        f"{csv_path.name}: line {line_number}: {exc}"
                    ) from exc
                database.insert(schema.name, values)
    return database
