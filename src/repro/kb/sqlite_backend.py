"""A stdlib-``sqlite3`` KB backend behind the ``KBBackend`` protocol.

The backend stores every table of a built
:class:`~repro.kb.database.Database` in a real SQLite database (a file
or ``:memory:``), and compiles the repo's parsed SQL AST two ways:

* **lowered**: rendered into genuine SQLite SQL and executed by the
  SQLite engine, *when the dialect gap can be closed exactly*, or
* **fallback**: the ordinary in-memory :class:`CompiledPlan` compiled
  against a row-for-row mirror of the SQLite contents.

"Exactly" is a strong word because the reference engine deliberately
deviates from standard SQL:

* two-valued NULL logic (any comparison with NULL is *false*, and
  ``NOT`` negates that false to true),
* case-insensitive string equality/ordering via ``str.lower()``,
* booleans are a real type that never equals the integers 0/1,
* results come back in a deterministic order — stable sorts layered
  over insertion-order scans and match-order joins.

The lowering closes each gap head-on instead of approximating:

* every atomic predicate is wrapped ``COALESCE(<pred>, 0)`` so the
  rendered expression is always 0/1, making ``AND``/``OR``/``NOT``
  compose exactly like the reference's Python ``and``/``or``/``not``;
* a Python collation (``repro_nocase``) and LIKE function
  (``repro_like``) reuse the reference comparison code itself;
* booleans are stored as 0/1 in columns created *without declared
  affinity* (so ints stay ints and floats stay floats bit-for-bit) and
  converted back to ``bool`` after fetch; known cross-type comparisons
  refuse to lower;
* a hidden ``_repro_pos_`` column records each row's insertion
  position, and every lowered query appends ``ORDER BY …, b0._repro_pos_,
  b1._repro_pos_, …`` reproducing the reference's scan/join enumeration
  order and stable sort ties;
* ``DISTINCT`` (keep the first occurrence of each case-folded key in
  enumeration order, NULLs equal) lowers to a window-function dedup:
  ``ROW_NUMBER() OVER (PARTITION BY <keys> ORDER BY <positions>) = 1``.

What cannot be reproduced in SQLite declines to lower and runs on the
fallback plan — the explicit dialect-gap rules are:

* GROUP BY / aggregates (first-seen group order, case-folded group keys)
* LIKE over boolean operands (``str(True)`` is ``'true'``, not ``'1'``)
* cross-type comparisons with both sides' types known (affinity rules
  would coerce where the reference compares False)
* parameter-to-parameter comparisons (no type anchor at prepare time)
* out-of-range (non-64-bit) integer or non-finite float literals

plus two *execute-time* reroutes decided per call: a bound parameter
whose runtime type contradicts the column type it is compared against
(SQLite affinity would coerce ``'5' = 5`` to true; the reference says
false), and a missing parameter (the reference binds lazily, so an OR
short-circuit may legally never read it).  ``EXPLAIN`` names the path:
lowered plans start with ``backend sqlite (path=lowered)``, fallback
plans with ``path=fallback`` and the blocking rule.
"""

from __future__ import annotations

import json
import math
import os
import re
import sqlite3
import threading
from typing import Any, Iterable, Mapping

from repro.errors import KBError, SQLExecutionError
from repro.kb.database import Database
from repro.kb.io import database_manifest, table_schema_from_manifest
from repro.kb.schema import TableSchema
from repro.kb.sql import ast
from repro.kb.sql.executor import _like_match
from repro.kb.sql.parser import parse
from repro.kb.sql.planner import PlanCache, PlanStep, QueryPlan, compile_plan
from repro.kb.sql.result import ResultSet
from repro.kb.statistics import TableStatistics, compute_table_statistics
from repro.kb.table import Table
from repro.kb.types import DataType

__all__ = ["SQLiteBackend", "SQLitePlan", "POSITION_COLUMN", "META_TABLE"]

#: Hidden per-row insertion-position column appended to every table.
POSITION_COLUMN = "_repro_pos_"

#: Embedded metadata table carrying the schema manifest + generations.
META_TABLE = "_repro_meta_"

_INT64_MAX = 2**63

_PARAM_NAME = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

#: Planner type classes used to detect cross-type comparisons.
_TYPE_CLASS = {
    DataType.INTEGER: "number",
    DataType.FLOAT: "number",
    DataType.TEXT: "text",
    DataType.BOOLEAN: "bool",
}

_KNOWN_CLASSES = frozenset({"text", "number", "bool"})


def _quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _quote_text(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def _nocase_collation(left: str, right: str) -> int:
    """SQLite collation mirroring the reference's ``str.lower()`` compares."""
    low_left = left.lower()
    low_right = right.lower()
    if low_left < low_right:
        return -1
    if low_left > low_right:
        return 1
    return 0


def _sql_like(value: Any, pattern: Any) -> int:
    """SQLite function wrapping the reference LIKE matcher (never NULL)."""
    return 1 if _like_match(value, pattern) else 0


class _NotLowerable(Exception):
    """Raised during lowering when a dialect-gap rule blocks real SQL."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _LowerScope:
    """Column resolution for the lowering pass (binding → schema)."""

    def __init__(self) -> None:
        self.ordered: list[tuple[str, TableSchema]] = []
        self._qualified: dict[tuple[str, str], tuple[str, str]] = {}
        self._unqualified: dict[str, list[tuple[str, str]]] = {}

    def add_table(self, binding: str, schema: TableSchema) -> None:
        low = binding.lower()
        self.ordered.append((low, schema))
        for col in schema.columns:
            cls = _TYPE_CLASS[col.data_type]
            self._qualified[(low, col.name.lower())] = (
                f"{_quote_ident(low)}.{_quote_ident(col.name)}",
                cls,
            )
            self._unqualified.setdefault(col.name.lower(), []).append(
                self._qualified[(low, col.name.lower())]
            )

    def resolve(self, ref: ast.ColumnRef) -> tuple[str, str]:
        """Return ``(rendered_sql, type_class)`` for a column reference.

        Unknown/ambiguous references cannot reach here in practice — the
        fallback plan is compiled first and raises the reference errors
        at prepare time — so these are defensive bail-outs.
        """
        if ref.table is not None:
            entry = self._qualified.get((ref.table.lower(), ref.column.lower()))
            if entry is None:
                raise _NotLowerable(f"unresolved column {ref.table}.{ref.column}")
            return entry
        entries = self._unqualified.get(ref.column.lower())
        if not entries or len(entries) > 1:
            raise _NotLowerable(f"unresolved or ambiguous column {ref.column}")
        return entries[0]


class _Lowered:
    """A successfully lowered query: SQL text + output/bind metadata."""

    __slots__ = ("sql", "columns", "bool_positions", "param_expectations")

    def __init__(
        self,
        sql: str,
        columns: list[str],
        bool_positions: tuple[int, ...],
        param_expectations: dict[str, frozenset[str]],
    ) -> None:
        self.sql = sql
        self.columns = columns
        self.bool_positions = bool_positions
        self.param_expectations = param_expectations


class _Lowerer:
    """Renders one parsed SELECT into SQLite SQL, or raises _NotLowerable."""

    def __init__(self, select: ast.Select, schemas: Mapping[str, TableSchema]) -> None:
        self.select = select
        self.schemas = schemas
        self.scope = _LowerScope()
        self.expectations: dict[str, set[str]] = {}

    # -- operands ------------------------------------------------------------

    def _expect(self, node: ast.Expression, cls: str) -> None:
        if isinstance(node, ast.Parameter):
            self.expectations.setdefault(node.name, set()).add(cls)

    def _operand(self, node: ast.Expression) -> tuple[str, str]:
        if isinstance(node, ast.Literal):
            return self._literal(node.value)
        if isinstance(node, ast.ColumnRef):
            return self.scope.resolve(node)
        if isinstance(node, ast.Parameter):
            if not _PARAM_NAME.match(node.name):
                raise _NotLowerable(f"parameter name {node.name!r} not SQLite-safe")
            return f":{node.name}", "param"
        raise _NotLowerable(f"unsupported operand {type(node).__name__}")

    def _literal(self, value: Any) -> tuple[str, str]:
        if value is None:
            return "NULL", "null"
        if isinstance(value, bool):
            return ("1" if value else "0"), "bool"
        if isinstance(value, int):
            if abs(value) >= _INT64_MAX:
                raise _NotLowerable("integer literal outside SQLite's 64-bit range")
            return repr(value), "number"
        if isinstance(value, float):
            if not math.isfinite(value):
                raise _NotLowerable("non-finite float literal")
            return repr(value), "number"
        if isinstance(value, str):
            return _quote_text(value), "text"
        raise _NotLowerable(f"unsupported literal type {type(value).__name__}")

    # -- predicates ----------------------------------------------------------

    def _predicate(self, node: ast.Expression) -> str:
        """Render ``node`` as an expression that is always 0 or 1.

        Atomic predicates are COALESCE-wrapped so NULL collapses to 0
        (the reference's two-valued logic); AND/OR/NOT then compose over
        0/1 exactly like Python ``and``/``or``/``not`` over bools.
        """
        if isinstance(node, ast.And):
            return f"({self._predicate(node.left)} AND {self._predicate(node.right)})"
        if isinstance(node, ast.Or):
            return f"({self._predicate(node.left)} OR {self._predicate(node.right)})"
        if isinstance(node, ast.Not):
            return f"(NOT {self._predicate(node.operand)})"
        if isinstance(node, ast.Comparison):
            return self._comparison(node)
        if isinstance(node, ast.LikePredicate):
            return self._like(node)
        if isinstance(node, ast.InPredicate):
            return self._in(node)
        if isinstance(node, ast.IsNullPredicate):
            operand_sql, operand_cls = self._operand(node.operand)
            self._expect(node.operand, "null")
            test = "IS NOT NULL" if node.negated else "IS NULL"
            return f"({operand_sql} {test})"
        raise _NotLowerable(f"unsupported predicate {type(node).__name__}")

    def _comparison(self, node: ast.Comparison) -> str:
        left_sql, left_cls = self._operand(node.left)
        right_sql, right_cls = self._operand(node.right)
        if left_cls == "param" and right_cls == "param":
            raise _NotLowerable("parameter-to-parameter comparison")
        if (
            left_cls in _KNOWN_CLASSES
            and right_cls in _KNOWN_CLASSES
            and left_cls != right_cls
        ):
            raise _NotLowerable(f"cross-type comparison ({left_cls} vs {right_cls})")
        cls = left_cls if left_cls in _KNOWN_CLASSES else right_cls
        if cls not in _KNOWN_CLASSES:
            cls = "null"
        self._expect(node.left, cls)
        self._expect(node.right, cls)
        if cls == "text":
            right_sql = f"({right_sql} COLLATE repro_nocase)"
        return f"COALESCE(({left_sql} {node.op} {right_sql}), 0)"

    def _like(self, node: ast.LikePredicate) -> str:
        operand_sql, operand_cls = self._operand(node.operand)
        pattern_sql, pattern_cls = self._operand(node.pattern)
        if operand_cls == "bool" or pattern_cls == "bool":
            # str(True) is 'true' in the reference but the store holds 1.
            raise _NotLowerable("LIKE over a boolean operand")
        self._expect(node.operand, "like")
        self._expect(node.pattern, "like")
        core = f"repro_like({operand_sql}, {pattern_sql})"
        return f"(NOT {core})" if node.negated else core

    def _in(self, node: ast.InPredicate) -> str:
        operand_sql, operand_cls = self._operand(node.operand)
        rendered: list[tuple[ast.Expression, str, str]] = []
        for item in node.values:
            item_sql, item_cls = self._operand(item)
            rendered.append((item, item_sql, item_cls))
        item_known = {cls for _, _, cls in rendered if cls in _KNOWN_CLASSES}
        if operand_cls in _KNOWN_CLASSES:
            target = operand_cls
        elif len(item_known) == 1:
            target = next(iter(item_known))
        elif not item_known:
            if operand_cls == "param":
                raise _NotLowerable("parameter-to-parameter comparison")
            target = "null"
        else:
            raise _NotLowerable("mixed-type IN list")
        for item, _, item_cls in rendered:
            if item_cls in _KNOWN_CLASSES and target in _KNOWN_CLASSES:
                if item_cls != target:
                    raise _NotLowerable(
                        f"cross-type comparison ({target} vs {item_cls})"
                    )
            self._expect(item, target)
        self._expect(node.operand, target)
        if target == "text":
            operand_sql = f"({operand_sql} COLLATE repro_nocase)"
        items_sql = ", ".join(sql for _, sql, _ in rendered)
        core = f"COALESCE(({operand_sql} IN ({items_sql})), 0)"
        return f"(NOT {core})" if node.negated else core

    # -- the statement -------------------------------------------------------

    def lower(self) -> _Lowered:
        select = self.select
        if select.group_by:
            raise _NotLowerable(
                "GROUP BY (first-seen group order and case-folded keys)"
            )
        for item in select.items:
            if isinstance(item.expression, ast.Aggregate):
                raise _NotLowerable("aggregation (first-seen group order)")
        if select.distinct and sqlite3.sqlite_version_info < (3, 25, 0):
            raise _NotLowerable(
                "DISTINCT needs SQLite window functions (>= 3.25)"
            )

        # FROM / JOIN — progressive scope like the reference planner.
        table_refs = [(None, select.source)] + [
            (join, join.table) for join in select.joins
        ]
        from_parts: list[str] = []
        for join, table_ref in table_refs:
            schema = self.schemas.get(table_ref.table.lower())
            if schema is None:
                raise _NotLowerable(f"unresolved table {table_ref.table}")
            binding = table_ref.binding
            self.scope.add_table(binding, schema)
            clause = (
                f"{_quote_ident(schema.name)} AS {_quote_ident(binding.lower())}"
            )
            if join is None:
                from_parts.append(f"FROM {clause}")
            else:
                keyword = "LEFT JOIN" if join.kind == "left" else "JOIN"
                if join.condition is None:
                    raise _NotLowerable("JOIN without ON condition")
                condition = self._predicate(join.condition)
                from_parts.append(f"{keyword} {clause} ON {condition}")

        # SELECT list (never ``*``: the hidden position column must stay
        # hidden, so star expands to explicit schema columns).
        out_names: list[str] = []
        out_sqls: list[str] = []
        out_classes: list[str] = []
        bool_positions: list[int] = []
        if select.is_star():
            for binding, schema in self.scope.ordered:
                for col in schema.columns:
                    out_sqls.append(
                        f"{_quote_ident(binding)}.{_quote_ident(col.name)}"
                    )
                    out_names.append(col.name)
                    out_classes.append(_TYPE_CLASS[col.data_type])
                    if col.data_type is DataType.BOOLEAN:
                        bool_positions.append(len(out_names) - 1)
        else:
            for item in select.items:
                expr = item.expression
                if not isinstance(expr, ast.ColumnRef):
                    raise _NotLowerable(
                        f"non-column projection {type(expr).__name__}"
                    )
                sql, cls = self.scope.resolve(expr)
                out_sqls.append(sql)
                out_names.append(item.output_name())
                out_classes.append(cls)
                if cls == "bool":
                    bool_positions.append(len(out_names) - 1)

        where_sql = ""
        if select.where is not None:
            where_sql = f" WHERE {self._predicate(select.where)}"

        # ORDER BY: requested keys first, then every binding's hidden
        # position column — this reproduces the reference's stable sort
        # over scan/join enumeration order, byte for byte.
        order_items: list[tuple[str, str, bool]] = []
        for item in select.order_by:
            sql, cls = self.scope.resolve(item.column)
            order_items.append((sql, cls, item.descending))
        position_columns = [
            f"{_quote_ident(binding)}.{_quote_ident(POSITION_COLUMN)}"
            for binding, _ in self.scope.ordered
        ]

        limit_sql = ""
        offset = select.offset or 0
        if select.limit is not None or offset:
            limit = -1 if select.limit is None else select.limit
            limit_sql = f" LIMIT {limit}"
            if offset:
                limit_sql += f" OFFSET {offset}"

        if select.distinct:
            sql = self._render_distinct(
                out_sqls, out_classes, from_parts, where_sql,
                order_items, position_columns, limit_sql,
            )
        else:
            order_parts = []
            for sql_expr, cls, descending in order_items:
                if cls == "text":
                    sql_expr = f"{sql_expr} COLLATE repro_nocase"
                if descending:
                    sql_expr = f"{sql_expr} DESC"
                order_parts.append(sql_expr)
            order_parts.extend(position_columns)
            sql = (
                f"SELECT {', '.join(out_sqls)} "
                + " ".join(from_parts)
                + where_sql
                + f" ORDER BY {', '.join(order_parts)}"
                + limit_sql
            )
        expectations = {
            name: frozenset(classes) for name, classes in self.expectations.items()
        }
        return _Lowered(sql, out_names, tuple(bool_positions), expectations)

    def _render_distinct(
        self,
        out_sqls: list[str],
        out_classes: list[str],
        from_parts: list[str],
        where_sql: str,
        order_items: list[tuple[str, str, bool]],
        position_columns: list[str],
        limit_sql: str,
    ) -> str:
        """DISTINCT with reference semantics, via a window-function dedup.

        The reference keeps the *first* occurrence of each projected row
        (keys case-folded per :func:`~repro.kb.types.normalize_key`, with
        NULLs equal to each other) in join-enumeration order, then sorts
        the survivors.  ``ROW_NUMBER() OVER (PARTITION BY <key exprs>
        ORDER BY <position columns>)`` reproduces exactly that: text keys
        partition under the comparison collation, NULLs share a
        partition, and ``rn = 1`` is the first-enumerated row of each
        group — whose own position columns then break ORDER BY ties the
        same way the reference's stable sort does.
        """
        inner: list[str] = []
        keys: list[str] = []
        for index, (expr, cls) in enumerate(zip(out_sqls, out_classes)):
            inner.append(f"{expr} AS {_quote_ident(f'_repro_c{index}_')}")
            keys.append(
                f"{expr} COLLATE repro_nocase" if cls == "text" else expr
            )
        for index, (expr, _cls, _descending) in enumerate(order_items):
            inner.append(f"{expr} AS {_quote_ident(f'_repro_o{index}_')}")
        for index, expr in enumerate(position_columns):
            inner.append(f"{expr} AS {_quote_ident(f'_repro_p{index}_')}")
        inner.append(
            f"ROW_NUMBER() OVER (PARTITION BY {', '.join(keys)} "
            f"ORDER BY {', '.join(position_columns)}) AS "
            f"{_quote_ident('_repro_rn_')}"
        )
        outer_order: list[str] = []
        for index, (_expr, cls, descending) in enumerate(order_items):
            rendered = _quote_ident(f"_repro_o{index}_")
            if cls == "text":
                rendered = f"{rendered} COLLATE repro_nocase"
            if descending:
                rendered = f"{rendered} DESC"
            outer_order.append(rendered)
        outer_order.extend(
            _quote_ident(f"_repro_p{index}_")
            for index in range(len(position_columns))
        )
        outer_columns = ", ".join(
            _quote_ident(f"_repro_c{index}_") for index in range(len(out_sqls))
        )
        return (
            f"SELECT {outer_columns} FROM ("
            f"SELECT {', '.join(inner)} "
            + " ".join(from_parts)
            + where_sql
            + f") WHERE {_quote_ident('_repro_rn_')} = 1"
            + f" ORDER BY {', '.join(outer_order)}"
            + limit_sql
        )


def _admit_param(value: Any, classes: frozenset[str]) -> tuple[bool, Any]:
    """Can ``value`` bind directly into the lowered SQL?

    Returns ``(ok, converted)``.  A rejection is not an error — the call
    reroutes to the in-memory fallback, which implements the reference
    semantics for mistyped parameters (comparisons are simply false).
    """
    if value is None:
        return True, None
    if isinstance(value, float) and math.isnan(value):
        return False, None  # sqlite3 binds NaN as NULL
    if isinstance(value, int) and not isinstance(value, bool):
        if abs(value) >= _INT64_MAX:
            return False, None
    for cls in classes:
        if cls == "text" and not isinstance(value, str):
            return False, None
        if cls == "number" and (
            isinstance(value, bool) or not isinstance(value, (int, float))
        ):
            return False, None
        if cls == "bool" and not isinstance(value, bool):
            return False, None
        if cls == "like" and isinstance(value, bool):
            return False, None
        if cls == "null":
            continue
    if isinstance(value, bool):
        return True, int(value)
    if not isinstance(value, (str, int, float)):
        return False, None
    return True, value


class SQLitePlan:
    """A compiled plan against :class:`SQLiteBackend`.

    Carries both the lowered SQL (when the dialect allows) and the
    always-available in-memory fallback plan compiled against the
    backend's row mirror; ``execute`` picks per call.  Exposes the same
    observability surface as :class:`CompiledPlan` (``executions``,
    ``index_probes``, ``schema_generation``, ``plan()``/``explain()``)
    so the shared :class:`PlanCache` and serving metrics need no
    special-casing.
    """

    def __init__(self, backend: "SQLiteBackend", sql: str, use_indexes: bool = True) -> None:
        self.backend = backend
        self.sql = sql
        self.use_indexes = use_indexes
        self.schema_generation = backend.schema_generation
        select = parse(sql)
        # Compile the reference plan first: prepare-time errors (unknown
        # tables/columns, ambiguity) surface identically on both backends.
        self.fallback = compile_plan(
            backend._mirror(), select, sql=sql, use_indexes=use_indexes
        )
        self.select = select
        self.executions = 0
        self.lowered_executions = 0
        self.fallback_executions = 0
        try:
            self._lowered: _Lowered | None = _Lowerer(
                select, backend._schemas
            ).lower()
            self.fallback_reason: str | None = None
        except _NotLowerable as exc:
            self._lowered = None
            self.fallback_reason = exc.reason

    @property
    def lowered_sql(self) -> str | None:
        return self._lowered.sql if self._lowered is not None else None

    @property
    def index_probes(self) -> int:
        return self.fallback.index_probes

    def execute(self, params: Mapping[str, Any] | None = None) -> ResultSet:
        self.executions += 1
        lowered = self._lowered
        if lowered is None:
            return self._run_fallback(params)
        supplied = dict(params or {})
        bound: dict[str, Any] = {}
        for name, classes in lowered.param_expectations.items():
            if name not in supplied:
                # The reference binds parameters lazily (an OR
                # short-circuit may never read one); its path decides
                # whether this is a BindingError.
                return self._run_fallback(params)
            ok, converted = _admit_param(supplied[name], classes)
            if not ok:
                # Runtime type contradicts the compared column's type;
                # SQLite affinity would coerce where the reference
                # compares false.  Reroute, don't guess.
                return self._run_fallback(params)
            bound[name] = converted
        rows = self.backend._execute_sql(lowered.sql, bound)
        if lowered.bool_positions:
            bool_set = set(lowered.bool_positions)
            rows = [
                tuple(
                    bool(value) if index in bool_set and value is not None else value
                    for index, value in enumerate(row)
                )
                for row in rows
            ]
        self.lowered_executions += 1
        self.backend.lowered_total += 1
        return ResultSet(columns=list(lowered.columns), rows=rows)

    def _run_fallback(self, params: Mapping[str, Any] | None) -> ResultSet:
        self.fallback_executions += 1
        self.backend.fallback_total += 1
        return self.fallback.execute(params)

    def plan(self) -> QueryPlan:
        if self._lowered is not None:
            steps = [
                PlanStep("backend", "sqlite", "path=lowered"),
                PlanStep("sqlite-sql", self.select.source.table, self._lowered.sql),
            ]
            return QueryPlan(steps=tuple(steps))
        steps = [
            PlanStep(
                "backend",
                "sqlite",
                f"path=fallback ({self.fallback_reason})",
            )
        ]
        return QueryPlan(steps=tuple(steps) + tuple(self.fallback.plan().steps))

    def explain(self) -> str:
        return self.plan().explain()


class SQLiteBackend:
    """Read-only :class:`KBBackend` over a SQLite file built from a KB.

    Construction is two-phase: :meth:`from_database` materialises a
    built in-memory database into SQLite (rows, hidden position column,
    schema manifest, generation counters, pk/fk indexes), while the
    constructor opens an already-materialised file.  The backend itself
    is immutable — refresh replaces the whole backend behind a
    :class:`~repro.kb.backend.KBHandle`, never mutates one in place.
    """

    backend_name = "sqlite"

    def __init__(self, path: str | os.PathLike[str], *, _connection: sqlite3.Connection | None = None) -> None:
        self.path = str(path)
        if _connection is not None:
            connection = _connection
        else:
            if self.path != ":memory:" and not os.path.exists(self.path):
                raise KBError(f"no SQLite KB database at {self.path!r}")
            connection = sqlite3.connect(self.path, check_same_thread=False)
        self._conn = connection
        # sqlite3 serializes on its own for safety, but the module-level
        # threadsafety varies by build; one explicit lock keeps the
        # execute+fetch pair atomic under concurrent serving threads.
        self._conn_lock = threading.Lock()
        self._conn.create_collation("repro_nocase", _nocase_collation)
        self._conn.create_function("repro_like", 2, _sql_like, deterministic=True)
        meta = self._read_meta()
        self.name = meta.get("database", "kb")
        self._generation = int(meta.get("generation", 0))
        self._schema_generation = int(meta.get("schema_generation", 0))
        self._schemas: dict[str, TableSchema] = {}
        for tdata in meta.get("tables", []):
            schema = table_schema_from_manifest(tdata)
            self._schemas[schema.name.lower()] = schema
        self._mirror_db: Database | None = None
        self._mirror_lock = threading.Lock()
        self._plan_cache = PlanCache(compile_factory=self._compile_plan)
        # Best-effort (unlocked) telemetry, like the table index counters.
        self.lowered_total = 0
        self.fallback_total = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_database(
        cls, database: Any, path: str | os.PathLike[str] = ":memory:"
    ) -> "SQLiteBackend":
        """Materialise ``database`` (any memory-backed KB view) into SQLite."""
        source = database
        for attr in ("backend", "wrapped"):  # unwrap KBHandle / KBSnapshot
            while hasattr(source, attr):
                source = getattr(source, attr)
        tables = list(source.tables())
        for table in tables:
            if table.name.lower() == META_TABLE:
                raise KBError(f"table name {META_TABLE!r} is reserved")
            for col in table.schema.column_names():
                if col.lower() == POSITION_COLUMN:
                    raise KBError(
                        f"column name {POSITION_COLUMN!r} is reserved "
                        f"(table {table.name!r})"
                    )
        manifest = database_manifest(source)
        manifest["generation"] = int(source.generation)
        manifest["schema_generation"] = int(source.schema_generation)

        target = str(path)
        connection = sqlite3.connect(target, check_same_thread=False)
        try:
            with connection:
                connection.execute(f"DROP TABLE IF EXISTS {_quote_ident(META_TABLE)}")
                connection.execute(
                    f"CREATE TABLE {_quote_ident(META_TABLE)} "
                    '("key" TEXT PRIMARY KEY, "value" TEXT)'
                )
                connection.execute(
                    f"INSERT INTO {_quote_ident(META_TABLE)} VALUES ('manifest', ?)",
                    (json.dumps(manifest),),
                )
                for table in tables:
                    cls._write_table(connection, table)
        except (sqlite3.Error, OverflowError) as exc:
            connection.close()
            raise KBError(f"could not materialise SQLite KB: {exc}") from exc
        return cls(target, _connection=connection)

    @staticmethod
    def _write_table(connection: sqlite3.Connection, table: Table) -> None:
        schema = table.schema
        quoted = _quote_ident(schema.name)
        connection.execute(f"DROP TABLE IF EXISTS {quoted}")
        # Columns carry *no declared type*: BLOB (none) affinity stores
        # every value exactly as bound — ints stay ints, floats stay
        # floats — so fetched rows reproduce the reference byte-for-byte.
        column_defs = [_quote_ident(col.name) for col in schema.columns]
        column_defs.append(f"{_quote_ident(POSITION_COLUMN)} INTEGER")
        connection.execute(f"CREATE TABLE {quoted} ({', '.join(column_defs)})")
        names = [col.name for col in schema.columns] + [POSITION_COLUMN]
        placeholders = ", ".join("?" for _ in names)
        insert_sql = (
            f"INSERT INTO {quoted} "
            f"({', '.join(_quote_ident(n) for n in names)}) "
            f"VALUES ({placeholders})"
        )
        connection.executemany(
            insert_sql,
            (
                tuple(
                    int(value) if isinstance(value, bool) else value
                    for value in row
                )
                + (position,)
                for position, row in enumerate(table.rows)
            ),
        )
        # Index the key columns the reference planner would probe.  Text
        # keys are indexed under the comparison collation so lowered
        # equality predicates can actually use them.
        indexed: set[str] = set()
        key_columns = []
        if schema.primary_key is not None:
            key_columns.append(schema.primary_key)
        key_columns.extend(fk.column for fk in schema.foreign_keys)
        for column_name in key_columns:
            low = column_name.lower()
            if low in indexed:
                continue
            indexed.add(low)
            column = schema.column(column_name)
            collate = (
                " COLLATE repro_nocase"
                if column.data_type is DataType.TEXT
                else ""
            )
            connection.execute(
                f"CREATE INDEX {_quote_ident(f'idx_{schema.name}_{column.name}')} "
                f"ON {quoted} ({_quote_ident(column.name)}{collate})"
            )

    def _read_meta(self) -> dict:
        try:
            with self._conn_lock:
                rows = self._conn.execute(
                    f'SELECT "value" FROM {_quote_ident(META_TABLE)} '
                    "WHERE \"key\" = 'manifest'"
                ).fetchall()
        except sqlite3.Error as exc:
            raise KBError(
                f"{self.path!r} is not a repro KB SQLite database: {exc}"
            ) from exc
        if not rows:
            raise KBError(f"{self.path!r} has no KB manifest")
        try:
            return json.loads(rows[0][0])
        except (TypeError, json.JSONDecodeError) as exc:
            raise KBError(f"{self.path!r} has a corrupt KB manifest: {exc}") from exc

    # -- the row mirror ------------------------------------------------------

    def _mirror(self) -> Database:
        """The in-memory mirror powering fallback plans and statistics.

        Built lazily (double-checked under a lock) by fetching every
        table ``ORDER BY _repro_pos_``, so mirror row order — and hence
        every fallback result — matches the original database exactly.
        """
        mirror = self._mirror_db
        if mirror is not None:
            return mirror
        with self._mirror_lock:
            if self._mirror_db is None:
                self._mirror_db = self._load_mirror()
            return self._mirror_db

    def _load_mirror(self) -> Database:
        mirror = Database(self.name)
        for schema in self._schemas.values():
            mirror.create_table(schema)
        for schema in self._schemas.values():
            columns = ", ".join(
                _quote_ident(col.name) for col in schema.columns
            )
            sql = (
                f"SELECT {columns} FROM {_quote_ident(schema.name)} "
                f"ORDER BY {_quote_ident(POSITION_COLUMN)}"
            )
            rows = self._execute_sql(sql, {})
            table = mirror.table(schema.name)
            for row in rows:
                # Table coercion restores booleans from their 0/1
                # storage; FK re-validation is skipped (the source
                # database already enforced it).
                table.insert(list(row))
        return mirror

    def _execute_sql(
        self, sql: str, bound: Mapping[str, Any]
    ) -> list[tuple[Any, ...]]:
        try:
            with self._conn_lock:
                cursor = self._conn.execute(sql, dict(bound))
                rows = cursor.fetchall()
        except sqlite3.Error as exc:
            raise SQLExecutionError(f"sqlite execution failed: {exc}") from exc
        return rows

    def _compile_plan(self, database: Any, sql: str, use_indexes: bool) -> SQLitePlan:
        return SQLitePlan(self, sql, use_indexes=use_indexes)

    # -- KBBackend protocol --------------------------------------------------

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def schema_generation(self) -> int:
        return self._schema_generation

    def schema(self) -> dict[str, TableSchema]:
        return dict(self._schemas)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._schemas

    def table(self, name: str) -> Table:
        return self._mirror().table(name)

    def tables(self) -> list[Table]:
        return self._mirror().tables()

    def table_names(self) -> list[str]:
        return [schema.name for schema in self._schemas.values()]

    def prepare(self, sql: str, *, use_indexes: bool = True) -> SQLitePlan:
        return self._plan_cache.get_or_compile(self, sql, use_indexes=use_indexes)

    def query(
        self, sql: str, params: Mapping[str, Any] | None = None
    ) -> ResultSet:
        return self.prepare(sql).execute(params)

    def explain(self, sql: str) -> str:
        return self.prepare(sql).explain()

    def plan_stats(self) -> dict[str, int]:
        return self._plan_cache.stats()

    def execution_paths(self) -> dict[str, int]:
        """Executions by physical path (``sql`` = lowered, ``fallback``)."""
        return {"sql": self.lowered_total, "fallback": self.fallback_total}

    def statistics(self, table_name: str) -> TableStatistics:
        return compute_table_statistics(self._mirror().table(table_name))

    def all_statistics(self) -> dict[str, TableStatistics]:
        return self._mirror().all_statistics()

    # -- immutability guards -------------------------------------------------

    def insert(self, *args: Any, **kwargs: Any) -> Any:
        raise KBError("SQLite KB backend is read-only: insert is not allowed")

    def insert_many(self, *args: Any, **kwargs: Any) -> Any:
        raise KBError("SQLite KB backend is read-only: insert_many is not allowed")

    def create_table(self, *args: Any, **kwargs: Any) -> Any:
        raise KBError("SQLite KB backend is read-only: create_table is not allowed")

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SQLiteBackend({self.path!r}, tables={len(self._schemas)})"
