"""Column and table statistics.

The bootstrapping process (paper §4.2.1) gathers "data statistics from the
underlying knowledge base" to decide which neighbouring concepts are
*categorical attributes* — i.e. dependent concepts — based on their number
of distinct data values.  This module computes those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kb.table import Table
from repro.kb.types import DataType

#: Default ceiling on the distinct-value ratio for a column to count as
#: categorical.  A column whose distinct/total ratio is below this (or whose
#: absolute distinct count is small) behaves like a category label rather
#: than free text.
DEFAULT_CATEGORICAL_RATIO = 0.5

#: Absolute distinct-count ceiling under which a column is always categorical.
DEFAULT_CATEGORICAL_MAX_DISTINCT = 64


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics for one column of one table."""

    table: str
    column: str
    data_type: DataType
    row_count: int
    distinct_count: int
    null_count: int

    @property
    def distinct_ratio(self) -> float:
        """Distinct non-null values divided by non-null row count (0 if empty)."""
        non_null = self.row_count - self.null_count
        if non_null == 0:
            return 0.0
        return self.distinct_count / non_null

    def is_categorical(
        self,
        max_ratio: float = DEFAULT_CATEGORICAL_RATIO,
        max_distinct: int = DEFAULT_CATEGORICAL_MAX_DISTINCT,
    ) -> bool:
        """Return True if the column behaves like a categorical attribute.

        A column is categorical when its distinct count is small in
        absolute terms, or when it repeats values often enough that the
        distinct ratio falls below ``max_ratio``.  Boolean columns are
        always categorical.
        """
        if self.data_type is DataType.BOOLEAN:
            return True
        non_null = self.row_count - self.null_count
        if non_null == 0:
            return False
        if self.distinct_count <= max_distinct:
            return True
        return self.distinct_ratio <= max_ratio


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for every column of one table."""

    table: str
    row_count: int
    columns: dict[str, ColumnStatistics]

    def column(self, name: str) -> ColumnStatistics:
        """Return statistics for column ``name`` (case-insensitive)."""
        return self.columns[name.lower()]


def compute_table_statistics(table: Table) -> TableStatistics:
    """Compute :class:`TableStatistics` for ``table`` in one pass per column."""
    stats: dict[str, ColumnStatistics] = {}
    row_count = len(table)
    for col in table.schema.columns:
        idx = table.schema.column_index(col.name)
        distinct: set = set()
        nulls = 0
        for row in table.rows:
            value = row[idx]
            if value is None:
                nulls += 1
            else:
                distinct.add(value)
        stats[col.name.lower()] = ColumnStatistics(
            table=table.name,
            column=col.name,
            data_type=col.data_type,
            row_count=row_count,
            distinct_count=len(distinct),
            null_count=nulls,
        )
    return TableStatistics(table=table.name, row_count=row_count, columns=stats)
