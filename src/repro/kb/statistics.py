"""Column and table statistics.

The bootstrapping process (paper §4.2.1) gathers "data statistics from the
underlying knowledge base" to decide which neighbouring concepts are
*categorical attributes* — i.e. dependent concepts — based on their number
of distinct data values.  This module computes those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kb.table import Table
from repro.kb.types import DataType

#: Default ceiling on the distinct-value ratio for a column to count as
#: categorical.  A column whose distinct/total ratio is below this (or whose
#: absolute distinct count is small) behaves like a category label rather
#: than free text.
DEFAULT_CATEGORICAL_RATIO = 0.5

#: Absolute distinct-count ceiling under which a column is always categorical.
DEFAULT_CATEGORICAL_MAX_DISTINCT = 64

#: Ceiling on distinct values captured verbatim into ``values``.  Small
#: (categorical-sized) domains are kept so static analysis can decide
#: whether a literal predicate can ever match; larger domains only keep
#: the numeric min/max envelope.
DEFAULT_CAPTURED_VALUES = 64


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics for one column of one table.

    ``min_value``/``max_value`` are populated for numeric columns only;
    ``values`` holds the full distinct-value set when it is small enough
    to capture (``None`` means the domain was too large, *not* empty).
    """

    table: str
    column: str
    data_type: DataType
    row_count: int
    distinct_count: int
    null_count: int
    min_value: float | int | None = None
    max_value: float | int | None = None
    values: frozenset | None = None

    @property
    def distinct_ratio(self) -> float:
        """Distinct non-null values divided by non-null row count (0 if empty)."""
        non_null = self.row_count - self.null_count
        if non_null == 0:
            return 0.0
        return self.distinct_count / non_null

    def is_categorical(
        self,
        max_ratio: float = DEFAULT_CATEGORICAL_RATIO,
        max_distinct: int = DEFAULT_CATEGORICAL_MAX_DISTINCT,
    ) -> bool:
        """Return True if the column behaves like a categorical attribute.

        A column is categorical when its distinct count is small in
        absolute terms, or when it repeats values often enough that the
        distinct ratio falls below ``max_ratio``.  Boolean columns are
        always categorical.
        """
        if self.data_type is DataType.BOOLEAN:
            return True
        non_null = self.row_count - self.null_count
        if non_null == 0:
            return False
        if self.distinct_count <= max_distinct:
            return True
        return self.distinct_ratio <= max_ratio


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for every column of one table."""

    table: str
    row_count: int
    columns: dict[str, ColumnStatistics]

    def column(self, name: str) -> ColumnStatistics:
        """Return statistics for column ``name`` (case-insensitive)."""
        return self.columns[name.lower()]


def compute_table_statistics(
    table: Table, captured_values: int = DEFAULT_CAPTURED_VALUES
) -> TableStatistics:
    """Compute :class:`TableStatistics` for ``table`` in one pass per column.

    ``captured_values`` bounds how many distinct values are kept verbatim
    per column (for static always-false/always-true predicate analysis);
    pass 0 to disable value capture entirely.
    """
    stats: dict[str, ColumnStatistics] = {}
    row_count = len(table)
    for col in table.schema.columns:
        idx = table.schema.column_index(col.name)
        distinct: set = set()
        nulls = 0
        numeric = col.data_type in (DataType.INTEGER, DataType.FLOAT)
        lo = hi = None
        for row in table.rows:
            value = row[idx]
            if value is None:
                nulls += 1
                continue
            distinct.add(value)
            if numeric:
                if lo is None or value < lo:
                    lo = value
                if hi is None or value > hi:
                    hi = value
        stats[col.name.lower()] = ColumnStatistics(
            table=table.name,
            column=col.name,
            data_type=col.data_type,
            row_count=row_count,
            distinct_count=len(distinct),
            null_count=nulls,
            min_value=lo,
            max_value=hi,
            values=(
                frozenset(distinct) if len(distinct) <= captured_values else None
            ),
        )
    return TableStatistics(table=table.name, row_count=row_count, columns=stats)
