"""Row storage with constraint enforcement and secondary hash indexes."""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Iterator

from repro.errors import IntegrityError
from repro.kb.schema import TableSchema
from repro.kb.types import coerce_value, normalize_key


class Table:
    """An in-memory table: a schema plus a list of row tuples.

    Rows are stored as tuples in column-declaration order.  A primary-key
    index (value -> row position) is maintained when the schema declares a
    primary key, giving O(1) point lookups for foreign-key validation and
    for the SQL executor's hash joins.

    Secondary hash indexes (:meth:`secondary_index`) are built lazily the
    first time the query planner asks for one, and invalidated wholesale
    on any mutation; :attr:`generation` counts mutations so callers (the
    plan cache, the serving query cache) can detect staleness without
    subscribing to change events.
    """

    def __init__(
        self,
        schema: TableSchema,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.schema = schema
        # Injected so the build-time stats below never read the wall
        # clock on the turn path (replay determinism, P001).
        self._clock = clock
        self._rows: list[tuple[Any, ...]] = []
        self._pk_index: dict[Any, int] | None = (
            {} if schema.primary_key is not None else None
        )
        self._pk_pos = (
            schema.column_index(schema.primary_key)
            if schema.primary_key is not None
            else None
        )
        self._generation = 0
        # column position -> {normalized value -> ascending row positions}
        self._indexes: dict[int, dict[Any, list[int]]] = {}
        self._index_builds = 0
        self._index_build_seconds = 0.0

    # -- basic properties ---------------------------------------------------

    @property
    def name(self) -> str:
        """The table name from the schema."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    @property
    def rows(self) -> list[tuple[Any, ...]]:
        """The stored rows (do not mutate)."""
        return self._rows

    @property
    def generation(self) -> int:
        """Monotonic mutation counter; bumps on every insert."""
        return self._generation

    # -- mutation -------------------------------------------------------------

    def insert(self, values: dict[str, Any] | Iterable[Any]) -> tuple[Any, ...]:
        """Insert one row given as a column->value dict or positional iterable.

        Returns the stored (coerced) row tuple.  Raises
        :class:`IntegrityError` on type, nullability or primary-key
        violations.  Foreign keys are validated by the owning
        :class:`~repro.kb.database.Database`, which can see other tables.
        """
        row = self._build_row(values)
        if self._pk_index is not None:
            key = row[self._pk_pos]
            if key is None:
                raise IntegrityError(
                    f"table {self.name!r}: primary key must not be NULL"
                )
            if key in self._pk_index:
                raise IntegrityError(
                    f"table {self.name!r}: duplicate primary key {key!r}"
                )
            self._pk_index[key] = len(self._rows)
        self._rows.append(row)
        self._generation += 1
        if self._indexes:
            # Lazily rebuilt on next use; clearing keeps mutation O(1).
            self._indexes.clear()
        return row

    def _build_row(self, values: dict[str, Any] | Iterable[Any]) -> tuple[Any, ...]:
        columns = self.schema.columns
        if isinstance(values, dict):
            unknown = [k for k in values if not self.schema.has_column(k)]
            if unknown:
                raise IntegrityError(
                    f"table {self.name!r}: unknown columns {unknown!r}"
                )
            lowered = {k.lower(): v for k, v in values.items()}
            raw = [lowered.get(col.name.lower()) for col in columns]
        else:
            raw = list(values)
            if len(raw) != len(columns):
                raise IntegrityError(
                    f"table {self.name!r}: expected {len(columns)} values, "
                    f"got {len(raw)}"
                )
        out = []
        for col, value in zip(columns, raw):
            coerced = coerce_value(value, col.data_type, column=col.name)
            if coerced is None and not col.nullable:
                raise IntegrityError(
                    f"table {self.name!r}: column {col.name!r} is NOT NULL"
                )
            out.append(coerced)
        return tuple(out)

    # -- lookups ----------------------------------------------------------------

    def lookup_pk(self, key: Any) -> tuple[Any, ...] | None:
        """Return the row whose primary key equals ``key``, or None."""
        if self._pk_index is None:
            raise IntegrityError(f"table {self.name!r} has no primary key")
        pos = self._pk_index.get(key)
        return self._rows[pos] if pos is not None else None

    def has_pk(self, key: Any) -> bool:
        """Return True if a row with primary key ``key`` exists."""
        if self._pk_index is None:
            raise IntegrityError(f"table {self.name!r} has no primary key")
        return key in self._pk_index

    def column_values(self, column: str) -> list[Any]:
        """Return all values of ``column`` in row order (including NULLs)."""
        idx = self.schema.column_index(column)
        return [row[idx] for row in self._rows]

    def secondary_index(self, column: str | int) -> dict[Any, list[int]]:
        """The lazily-built hash index for ``column``.

        Maps :func:`~repro.kb.types.normalize_key` of each non-NULL value
        to the ascending row positions holding it, so index probes return
        rows in exactly the order a full scan would.  NULLs are excluded:
        NULL never equals anything, so an index probe can never match a
        NULL cell — this keeps the index path in agreement with the
        executor's two-valued NULL semantics.

        The index is cached until the next mutation.  Callers must treat
        the returned mapping as read-only.
        """
        position = (
            column if isinstance(column, int)
            else self.schema.column_index(column)
        )
        cached = self._indexes.get(position)
        if cached is not None:
            return cached
        start = self._clock()
        index: dict[Any, list[int]] = {}
        for row_pos, row in enumerate(self._rows):
            value = row[position]
            if value is None:
                continue
            index.setdefault(normalize_key(value), []).append(row_pos)
        self._indexes[position] = index
        self._index_builds += 1
        self._index_build_seconds += self._clock() - start
        return index

    def index_stats(self) -> dict[str, float]:
        """Observability: live index count, total builds, build time."""
        return {
            "indexes": float(len(self._indexes)),
            "builds": float(self._index_builds),
            "build_seconds": self._index_build_seconds,
        }

    def distinct_values(self, column: str) -> list[Any]:
        """Return the distinct non-NULL values of ``column``, in first-seen order."""
        idx = self.schema.column_index(column)
        seen: dict[Any, None] = {}
        for row in self._rows:
            value = row[idx]
            if value is not None and value not in seen:
                seen[value] = None
        return list(seen)
