"""Entity recognition in user utterances.

Implements the recognition behaviours §6.1 describes for MDX:

* exact matching of entity values *and their synonyms* (brand names,
  base-with-salt descriptions, concept synonyms),
* fuzzy matching for misspellings ("asprin" → Aspirin; §7.2 names heavy
  misspellings as a main source of negative interactions),
* partial-name matching with disambiguation candidates ("Calcium" →
  Calcium Carbonate, Calcium Citrate, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bootstrap.entities import Entity
from repro.nlp.similarity import similarity_ratio
from repro.nlp.tokenizer import stem, tokenize

#: Minimum normalized similarity for a fuzzy (misspelling) match.
DEFAULT_FUZZY_THRESHOLD = 0.84

#: Longest token n-gram considered when matching surfaces.
MAX_SURFACE_TOKENS = 6


@dataclass
class RecognitionResult:
    """Everything recognized in one utterance."""

    #: concept name -> canonical instance value (exact + fuzzy matches).
    values: dict[str, str] = field(default_factory=dict)
    #: ontology concepts mentioned by name/synonym ("precautions", "dosage").
    concepts: list[str] = field(default_factory=list)
    #: partial-name matches needing disambiguation:
    #: surface text -> list of (concept, candidate value).
    ambiguous: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    #: matches that were fuzzy (concept -> matched surface), for logging.
    fuzzy_matches: dict[str, str] = field(default_factory=dict)

    def has_any_entity(self) -> bool:
        return bool(self.values)


class EntityRecognizer:
    """Dictionary-based recognizer built from the conversation space's
    entities.

    Matching runs longest-n-gram-first over the tokenized utterance:
    instance values win over concept mentions on the same span, exact
    matches win over fuzzy ones, and leftover single tokens are checked
    for misspellings and partial names.
    """

    def __init__(
        self,
        entities: list[Entity],
        fuzzy_threshold: float = DEFAULT_FUZZY_THRESHOLD,
        enable_fuzzy: bool = True,
        enable_partial: bool = True,
    ) -> None:
        self.fuzzy_threshold = fuzzy_threshold
        self.enable_fuzzy = enable_fuzzy
        self.enable_partial = enable_partial
        # surface (token-joined) -> (concept, canonical value)
        self._instance_surfaces: dict[str, tuple[str, str]] = {}
        # surface -> concept name
        self._concept_surfaces: dict[str, str] = {}
        # first word of a multi-word value -> [(concept, value)]
        self._partial_index: dict[str, list[tuple[str, str]]] = {}
        # surfaces bucketed by first character, for bounded fuzzy scans
        self._fuzzy_buckets: dict[str, list[tuple[str, str, str]]] = {}

        for entity in entities:
            if entity.kind == "instance" and entity.concept:
                for value in entity.values:
                    for form in value.surface_forms():
                        key = " ".join(tokenize(form))
                        if not key:
                            continue
                        self._instance_surfaces.setdefault(
                            key, (entity.concept, value.value)
                        )
                        words = key.split()
                        if len(words) > 1:
                            self._partial_index.setdefault(words[0], []).append(
                                (entity.concept, value.value)
                            )
                        if len(key) >= 4:
                            self._fuzzy_buckets.setdefault(key[0], []).append(
                                (key, entity.concept, value.value)
                            )
            elif entity.kind in ("concept", "group"):
                for value in entity.values:
                    for form in value.surface_forms():
                        key = " ".join(tokenize(form))
                        if key:
                            self._concept_surfaces.setdefault(key, value.value)
                        # Concept mentions are inflection-tolerant:
                        # "precautions"/"drugs" must hit "Precaution"/"Drug".
                        stemmed = " ".join(stem(t) for t in tokenize(form))
                        if stemmed:
                            self._concept_surfaces.setdefault(stemmed, value.value)

    # -- matching ----------------------------------------------------------

    def recognize(self, utterance: str) -> RecognitionResult:
        """Recognize entities, concept mentions and ambiguities in
        ``utterance``."""
        tokens = tokenize(utterance)
        result = RecognitionResult()
        used = [False] * len(tokens)

        # Pass 1: exact n-gram matches, longest first.
        for length in range(min(MAX_SURFACE_TOKENS, len(tokens)), 0, -1):
            for start in range(len(tokens) - length + 1):
                if any(used[start : start + length]):
                    continue
                gram = " ".join(tokens[start : start + length])
                stemmed_gram = " ".join(
                    stem(t) for t in tokens[start : start + length]
                )
                if gram in self._instance_surfaces:
                    concept, value = self._instance_surfaces[gram]
                    result.values.setdefault(concept, value)
                    for i in range(start, start + length):
                        used[i] = True
                elif gram in self._concept_surfaces or (
                    stemmed_gram in self._concept_surfaces
                ):
                    concept = self._concept_surfaces.get(
                        gram, self._concept_surfaces.get(stemmed_gram)
                    )
                    if concept not in result.concepts:
                        result.concepts.append(concept)
                    for i in range(start, start + length):
                        used[i] = True

        # Pass 2: leftover tokens — partial names, then misspellings.
        for i, token in enumerate(tokens):
            if used[i] or len(token) < 4:
                continue
            if self.enable_partial:
                candidates = self._partial_index.get(token, [])
                distinct = []
                seen_values: set[str] = set()
                for concept, value in candidates:
                    if value.lower() not in seen_values:
                        seen_values.add(value.lower())
                        distinct.append((concept, value))
                if len(distinct) == 1:
                    concept, value = distinct[0]
                    result.values.setdefault(concept, value)
                    used[i] = True
                    continue
                if len(distinct) > 1:
                    # Candidate order reaches the disambiguation prompt
                    # (and the journal): sort so it never depends on
                    # entity declaration/load order.
                    distinct.sort(key=lambda pair: (pair[1], pair[0]))
                    result.ambiguous[token] = distinct
                    used[i] = True
                    continue
            if self.enable_fuzzy:
                match = self._fuzzy_match(token)
                if match is not None:
                    concept, value, surface = match
                    if concept not in result.values:
                        result.values[concept] = value
                        result.fuzzy_matches[concept] = surface
                    used[i] = True
        return result

    def _fuzzy_match(self, token: str) -> tuple[str, str, str] | None:
        bucket = self._fuzzy_buckets.get(token[0], [])
        best: tuple[float, str, str, str] | None = None
        for surface, concept, value in bucket:
            if " " in surface:
                continue  # fuzzy only against single-word surfaces
            if abs(len(surface) - len(token)) > 2:
                continue
            ratio = similarity_ratio(token, surface)
            if ratio >= self.fuzzy_threshold and (best is None or ratio > best[0]):
                best = (ratio, concept, value, surface)
        if best is None:
            return None
        return best[1], best[2], best[3]

    # -- lookups used by the agent ---------------------------------------------

    def values_for_concept(self, concept: str) -> list[str]:
        """Every canonical value recognized as ``concept`` (for elicitation
        checks)."""
        out: dict[str, None] = {}
        for mapped_concept, value in self._instance_surfaces.values():
            if mapped_concept.lower() == concept.lower():
                out.setdefault(value)
        return list(out)

    def whole_utterance_instance(self, utterance: str) -> tuple[str, str] | None:
        """If the *entire* utterance names one instance value (any surface
        form), return (concept, canonical value) — the paper's keyword-
        style, entity-only query ("cogentin")."""
        gram = " ".join(tokenize(utterance))
        hit = self._instance_surfaces.get(gram)
        return hit if hit else None

    def is_instance_of(self, utterance: str, concept: str) -> str | None:
        """If the whole utterance names an instance of ``concept``, return
        the canonical value (used when answering an elicitation)."""
        gram = " ".join(tokenize(utterance))
        hit = self._instance_surfaces.get(gram)
        if hit and hit[0].lower() == concept.lower():
            return hit[1]
        result = self.recognize(utterance)
        return result.values.get(concept) or next(
            (
                v
                for c, v in result.values.items()
                if c.lower() == concept.lower()
            ),
            None,
        )
