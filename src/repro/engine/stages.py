"""The concrete stages of the online turn pipeline.

Each stage is one behaviour the imperative ``ConversationAgent.respond``
dispatcher used to thread through private helpers, now with its own
unit-testable contract.  Execution order (assembled by
:func:`default_stages`) is behaviour-preserving with respect to the old
dispatcher and is enforced by the golden-transcript suite:

==================  =====================================================
Stage               Responsibility (paper reference)
==================  =====================================================
classify            Intent classification + entity recognition + the
                    gibberish guard (Figure 1(b); §7.2 "apfjhd").
management_rescue   A weakly-classified management intent yields to a
                    domain reading carrying entities and concepts.
resolve_disambig    A pending "Did you mean ...?" answer resolves first.
proposal            A pending keyword proposal ("Would you like to see
                    ...?") consumes yes/no (§6.3, User 480).
slot_fill           A bare answer to an elicitation adopts the pending
                    intent (§6.3 lines 02–05).
context_reinterp    Entity mentions related to the prior request modify
                    it instead of starting over (§6.3 line 06).
entity_rescue       Low classifier confidence corroborated against
                    recognized entities/concepts (§6.3 intent + entity).
keyword_route       An entity-only utterance routes to the keyword
                    intent ("cogentin", §6.3).
slot_arbitration    A confident classification missing required slots
                    yields to a runner-up whose slots are filled.
ask_disambiguation  Unresolved ambiguity on a needed concept: ask.
tree                Dialogue-tree traversal (§5) produces the outcome.
management          Acts on a ``management`` outcome (canned replies,
                    definition repair, paraphrase, abort).
elicit              Acts on an ``elicit`` outcome (slot prompt).
keyword             Acts on a ``keyword`` outcome (redirect or proposal).
answer              Acts on an ``answer`` outcome: template selection,
                    query execution, response generation.
fallback            Total: entity-mention proposal or the apology.
==================  =====================================================
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable

from repro.bootstrap.intents import Intent, keyword_intent_name
from repro.dialogue.logic_table import context_key
from repro.dialogue.responses import (
    format_grouped_rows,
    format_result_rows,
    render_template,
)
from repro.dialogue.tree import NodeOutcome
from repro.engine.kinds import ResponseKind
from repro.engine.pipeline import AgentResponse, Stage, TurnState
from repro.engine.recognizer import RecognitionResult
from repro.errors import (
    DialogueError,
    KBError,
    MissingBindingsError,
    TemplateError,
)
from repro.nlp.tokenizer import tokenize
from repro.nlq.templates import StructuredQueryTemplate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dialogue.context import ConversationContext
    from repro.engine.agent import ConversationAgent

#: Confidence assigned when context (slot filling / incremental
#: modification) determines the intent instead of the classifier.
CONTEXT_CONFIDENCE = 0.99

#: Classifier confidence above which context-based reinterpretation is
#: not attempted (the classifier is trusted).
TRUST_THRESHOLD = 0.75


# ---------------------------------------------------------------------------
# Shared helpers (the old private methods, now free functions)
# ---------------------------------------------------------------------------


def domain_intent(agent: "ConversationAgent", name: str | None) -> Intent | None:
    """The named intent when it exists and is not a management intent."""
    if name is None or not agent.space.has_intent(name):
        return None
    intent = agent.space.intent(name)
    if intent.kind in ("management",):
        return None
    return intent


def rescue_low_confidence(
    agent: "ConversationAgent", utterance: str, recognition: RecognitionResult
) -> tuple[str, float] | None:
    """Corroborate low-confidence top-k candidates with entities.

    A candidate domain intent is adopted when the recognized entities
    satisfy all of its required slots, and either its result concept
    was mentioned by name or its slots are genuinely filled.  Keyword
    intents are never rescued (they are the fallback of last resort).
    """
    mentioned_concepts = {c.lower() for c in recognition.concepts}
    recognized = {c.lower() for c in recognition.values}
    candidates = agent.classifier.top_k(utterance, k=3)
    # Pass 1: a candidate whose *result concept* was named outranks
    # everything — "pk profile of X" names Pharmacokinetics.
    for candidate in candidates:
        intent = domain_intent(agent, candidate.intent)
        if intent is None or intent.kind == "keyword" or not intent.patterns:
            continue
        if (
            intent.result_concept is not None
            and intent.result_concept.lower() in mentioned_concepts
        ):
            return intent.name, max(
                candidate.confidence, agent.tree.confidence_threshold
            )
    # Pass 2: full slot corroboration, but only when the utterance also
    # names some concept — a bare drug name must stay on the keyword
    # path, not hijack a slot-filled intent.
    if mentioned_concepts:
        for candidate in candidates:
            intent = domain_intent(agent, candidate.intent)
            if intent is None or intent.kind == "keyword" or not intent.patterns:
                continue
            required = {c.lower() for c in intent.required_entities}
            if required and required <= recognized:
                return intent.name, max(
                    candidate.confidence, agent.tree.confidence_threshold
                )
    return None


def slot_answer(
    agent: "ConversationAgent",
    utterance: str,
    recognition: RecognitionResult,
    context: "ConversationContext",
) -> str | None:
    """The value answering the pending elicitation, if the utterance
    provides one."""
    pending = context.pending_entity
    if pending is None:
        return None
    for concept, value in recognition.values.items():
        if concept.lower() == pending.lower():
            return value
    return agent.recognizer.is_instance_of(utterance, pending)


def ask_disambiguation(
    agent: "ConversationAgent",
    recognition: RecognitionResult,
    intent_name: str | None,
    confidence: float,
    context: "ConversationContext",
) -> AgentResponse:
    """Ask which of several partial-name matches was meant."""
    surface, candidates = next(iter(recognition.ambiguous.items()))
    shown = candidates[:4]
    options = ", ".join(value for _, value in shown)
    context.variables["disambiguation"] = {
        "surface": surface,
        "candidates": shown,
        "intent": intent_name,
        "confidence": confidence,
    }
    return AgentResponse(
        text=f"I know several matches for \"{surface}\": {options}. "
        "Which one do you mean?",
        intent=intent_name,
        confidence=confidence,
        kind=ResponseKind.DISAMBIGUATE,
        entities=dict(recognition.values),
    )


def resolve_disambiguation(
    agent: "ConversationAgent",
    utterance: str,
    recognition: RecognitionResult,
    context: "ConversationContext",
) -> tuple[str | None, float] | None:
    """Resolve a pending "Did you mean ...?" from the user's reply."""
    pending = context.variables.get("disambiguation")
    if not pending:
        return None
    tokens = set(tokenize(utterance))
    chosen: tuple[str, str] | None = None
    for concept, value in pending["candidates"]:
        value_tokens = set(tokenize(value))
        if value_tokens and value_tokens <= tokens | set(
            itertools.chain.from_iterable(
                tokenize(v) for v in recognition.values.values()
            )
        ):
            chosen = (concept, value)
            break
    if chosen is None:
        # Try containment the other way: the reply may be a fragment
        # uniquely identifying one candidate.
        matches = [
            (concept, value)
            for concept, value in pending["candidates"]
            if tokens & set(tokenize(value))
        ]
        if len(matches) == 1:
            chosen = matches[0]
    context.variables.pop("disambiguation", None)
    if chosen is None:
        return None
    concept, value = chosen
    recognition.values[concept] = value
    stored_intent = pending.get("intent")
    if stored_intent and domain_intent(agent, stored_intent):
        return stored_intent, CONTEXT_CONFIDENCE
    return None


# -- keyword (entity-only) proposal flow ------------------------------------


def proposal_options(agent: "ConversationAgent", concept: str) -> list[str]:
    """Lookup intents that can be proposed for an entity-only mention,
    ordered by the dependent-concept list of the classification."""
    options = []
    for dependent in agent.space.classification.dependents_of.get(concept, []):
        for intent in agent.space.intents:
            if (
                intent.kind == "lookup"
                and intent.result_concept
                and intent.result_concept.lower() == dependent.lower()
                and any(
                    r.lower() == concept.lower()
                    for r in intent.required_entities
                )
            ):
                options.append(intent.name)
                break
    return options


def start_proposal(
    agent: "ConversationAgent",
    concept: str,
    value: str,
    context: "ConversationContext",
) -> AgentResponse | None:
    """Open a proposal sequence for an entity-only mention, if any
    lookup intent can be proposed."""
    options = proposal_options(agent, concept)
    if not options:
        return None
    context.remember_entity(concept, value)
    context.variables["proposal"] = {
        "concept": concept,
        "value": value,
        "options": options,
        "index": 0,
    }
    return propose_next(agent, context)


def propose_next(
    agent: "ConversationAgent", context: "ConversationContext"
) -> AgentResponse:
    """Propose the next query pattern, or give up after two rejections."""
    proposal = context.variables["proposal"]
    index = proposal["index"]
    options = proposal["options"]
    if index >= len(options) or index >= 2:
        # Give up after two rejected proposals (§6.3, User 480 lines 5-6).
        context.variables.pop("proposal", None)
        return AgentResponse(
            text="OK. Please modify your search.",
            intent="abort",
            confidence=1.0,
            kind=ResponseKind.MANAGEMENT,
        )
    intent = agent.space.intent(options[index])
    subject = intent.result_concept or intent.name
    return AgentResponse(
        text=(
            f"Would you like to see the {subject.lower()} of "
            f"{proposal['value']}?"
        ),
        intent=intent.name,
        confidence=1.0,
        kind=ResponseKind.PROPOSAL,
        entities={proposal["concept"]: proposal["value"]},
    )


def handle_proposal(
    agent: "ConversationAgent",
    intent_name: str | None,
    confidence: float,
    recognition: RecognitionResult,
    context: "ConversationContext",
) -> AgentResponse | None:
    """Consume the user's reply to a pending proposal, if any."""
    proposal = context.variables.get("proposal")
    if not proposal:
        return None
    if (
        intent_name == "affirmative"
        and confidence >= agent.tree.confidence_threshold
    ):
        context.variables.pop("proposal", None)
        chosen = agent.space.intent(proposal["options"][proposal["index"]])
        outcome = agent.tree.respond(
            chosen.name,
            CONTEXT_CONFIDENCE,
            {proposal["concept"]: proposal["value"]},
            context,
        )
        return act(
            agent, outcome, proposal["value"], recognition,
            CONTEXT_CONFIDENCE, context,
        )
    if intent_name == "negative" and confidence >= agent.tree.confidence_threshold:
        proposal["index"] += 1
        return propose_next(agent, context)
    # Anything else abandons the proposal and is processed normally.
    context.variables.pop("proposal", None)
    return None


# -- acting on tree outcomes ------------------------------------------------


def act(
    agent: "ConversationAgent",
    outcome: NodeOutcome,
    utterance: str,
    recognition: RecognitionResult,
    confidence: float,
    context: "ConversationContext",
) -> AgentResponse:
    """Dispatch one tree outcome through the acting functions — the same
    path the acting stages take, for callers that already hold an
    outcome (the proposal-acceptance flow)."""
    if outcome.kind == "management":
        return management_response(agent, outcome, utterance, context)
    if outcome.kind == "elicit":
        return elicit_response(agent, outcome, recognition, confidence, context)
    if outcome.kind == "keyword":
        return keyword_response(agent, outcome, recognition, confidence, context)
    if outcome.kind == "answer":
        return answer_response(agent, outcome, recognition, confidence, context)
    return fallback_act(agent, recognition, confidence, context)


def elicit_response(
    agent: "ConversationAgent",
    outcome: NodeOutcome,
    recognition: RecognitionResult,
    confidence: float,
    context: "ConversationContext",
) -> AgentResponse:
    """Prompt for the missing slot the tree asked for."""
    context.remember_entities(recognition.values)
    assert outcome.intent_name and outcome.elicit_concept
    context.begin_slot_filling(outcome.intent_name, outcome.elicit_concept)
    return AgentResponse(
        text=outcome.elicit_prompt or f"Which {outcome.elicit_concept}?",
        intent=outcome.intent_name,
        confidence=confidence,
        kind=ResponseKind.ELICIT,
        entities=dict(recognition.values),
        elicit_concept=outcome.elicit_concept,
    )


def keyword_response(
    agent: "ConversationAgent",
    outcome: NodeOutcome,
    recognition: RecognitionResult,
    confidence: float,
    context: "ConversationContext",
) -> AgentResponse:
    """Act on a keyword (entity-only) outcome: redirect or propose."""
    context.end_slot_filling()
    assert outcome.intent_name
    intent = agent.space.intent(outcome.intent_name)
    concept = intent.required_entities[0]
    value = outcome.bindings.get(concept) or next(
        iter(recognition.values.values()), None
    )
    if value:
        # "cogentin adverse effects": a keyword-style utterance that
        # still names a dependent concept is a recognizable lookup
        # request (§6.3, User 480 line 07) — answer it directly.
        redirected = redirect_keyword(
            agent, concept, value, recognition, confidence, context
        )
        if redirected is not None:
            return redirected
        started = start_proposal(agent, concept, value, context)
        if started is not None:
            return started
    return fallback_response(agent, confidence)


def redirect_keyword(
    agent: "ConversationAgent",
    concept: str,
    value: str,
    recognition: RecognitionResult,
    confidence: float,
    context: "ConversationContext",
) -> AgentResponse | None:
    """Answer a keyword utterance that also names a dependent concept."""
    mentioned = {c.lower() for c in recognition.concepts}
    if not mentioned:
        return None
    for intent in agent.space.intents:
        if intent.kind != "lookup" or not intent.result_concept:
            continue
        if intent.result_concept.lower() not in mentioned:
            continue
        if not any(
            r.lower() == concept.lower() for r in intent.required_entities
        ):
            continue
        outcome = agent.tree.respond(
            intent.name, CONTEXT_CONFIDENCE, {concept: value}, context
        )
        if outcome.kind == "answer":
            return answer_response(agent, outcome, recognition, confidence, context)
    return None


def fallback_act(
    agent: "ConversationAgent",
    recognition: RecognitionResult,
    confidence: float,
    context: "ConversationContext",
) -> AgentResponse:
    """The total fallback: a mentioned-but-unclassified entity still gets
    the keyword treatment (search-engine style users, §6.3)."""
    if recognition.values and not context.is_slot_filling:
        concept, value = next(iter(recognition.values.items()))
        started = start_proposal(agent, concept, value, context)
        if started is not None:
            return started
    return fallback_response(agent, confidence)


def fallback_response(agent: "ConversationAgent", confidence: float) -> AgentResponse:
    """The apologetic not-understood response."""
    return AgentResponse(
        text=(
            "I'm sorry, I didn't understand that. Try asking about the "
            f"{agent.domain} — say 'help' for examples."
        ),
        intent=None,
        confidence=confidence,
        kind=ResponseKind.FALLBACK,
    )


def management_response(
    agent: "ConversationAgent",
    outcome: NodeOutcome,
    utterance: str,
    context: "ConversationContext",
) -> AgentResponse:
    """Render the canned management reply, with the §6 repairs (help
    examples, paraphrase, definition lookup, abort reset)."""
    intent_name = outcome.intent_name or ""
    template = outcome.response_template or ""
    values: dict[str, Any] = {
        "agent_name": agent.agent_name,
        "domain": agent.domain,
        "last_response": context.last_response or "nothing yet",
    }
    if intent_name in ("help", "capabilities"):
        values["examples"] = example_questions(agent)
    if intent_name == "paraphrase_request":
        compact = paraphrase(context)
        if compact is not None:
            values["last_response"] = compact
    if intent_name == "definition_request":
        values["definition"] = definition_for(agent, utterance)
    if intent_name == "abort":
        context.reset()
    if template:
        try:
            text = render_template(template, values)
        except (DialogueError, ValueError):
            # An SME-edited management template can carry an unbound
            # variable past `repro check`; answer apologetically rather
            # than letting DialogueError kill the worker (X001).
            text = (
                "I'm sorry, I can't do that right now — say 'help' for "
                "examples."
            )
    else:
        text = ""
    return AgentResponse(
        text=text,
        intent=intent_name,
        confidence=CONTEXT_CONFIDENCE,
        kind=ResponseKind.MANAGEMENT,
    )


def paraphrase(context: "ConversationContext") -> str | None:
    """Re-render the last answer's rows compactly (pattern B2.0.0:
    a paraphrase is a reformulation, not a verbatim repeat)."""
    rows = context.variables.get("last_rows")
    if not rows:
        return None
    if context.variables.get("last_grouped"):
        return format_grouped_rows(rows, limit_per_group=3)
    return format_result_rows(rows, limit=3)


def example_questions(agent: "ConversationAgent", count: int = 3) -> str:
    """Real example questions drawn from the space's intents, so help
    text always reflects what this agent can actually answer."""
    examples = []
    for intent in agent.space.intents:
        if intent.kind in ("management", "keyword"):
            continue
        for example in agent.space.examples_for(intent.name):
            examples.append(f"'{example.utterance}'")
            break
        if len(examples) >= count:
            break
    return ", ".join(examples) if examples else "'help'"


def definition_for(agent: "ConversationAgent", utterance: str) -> str:
    """The glossary definition for the term the utterance asks about."""
    tokens = tokenize(utterance)
    # Longest glossary term mentioned in the utterance wins.
    best: tuple[int, str, str] | None = None
    for term, definition in agent.glossary.items():
        term_tokens = tokenize(term)
        if not term_tokens:
            continue
        joined = " ".join(term_tokens)
        if joined in " ".join(tokens):
            if best is None or len(term_tokens) > best[0]:
                best = (len(term_tokens), term, definition)
    if best is None:
        return (
            "I don't have a definition for that term, but you can ask "
            "about anything in the knowledge base."
        )
    _, term, definition = best
    capitalized = term[0].upper() + term[1:]
    return f"{capitalized} is {definition}"


def select_template(
    agent: "ConversationAgent",
    intent: Intent,
    bindings: dict[str, str],
    recognition: RecognitionResult,
) -> StructuredQueryTemplate | None:
    """Pick the most specific satisfied query template for the intent."""
    candidates = agent.templates.get(intent.name, [])
    if not candidates:
        return None
    # Union/inheritance lookups: a mentioned member concept picks its
    # augmentation template ("contra indications" under "Risk").  Only
    # pattern-generated template lists align 1:1 with the patterns.
    if not intent.custom_templates:
        for concept in recognition.concepts:
            for pattern, template in zip(intent.patterns, candidates):
                if (
                    pattern.augmented_from is not None
                    and pattern.result_concept.lower() == concept.lower()
                ):
                    return template
    # Otherwise the most specific fully-satisfied template wins: the
    # indirect pattern 2 when both keys are bound, the severity-
    # filtered interaction template when a severity was mentioned.
    bound = {k.lower() for k, v in bindings.items() if v}
    best = candidates[0]
    best_filters = {c.lower() for c in best.required_concepts()}
    for template in candidates:
        filters = {c.lower() for c in template.required_concepts()}
        if filters <= bound and len(filters) > len(best_filters):
            best = template
            best_filters = filters
    return best


#: Rows per streamed ``rows`` chunk (see :meth:`TurnState.emit_chunk`).
STREAM_ROW_BATCH = 8


def answer_response(
    agent: "ConversationAgent",
    outcome: NodeOutcome,
    recognition: RecognitionResult,
    confidence: float,
    context: "ConversationContext",
    chunk_sink: "Callable[[str, dict], None] | None" = None,
) -> AgentResponse:
    """Select a template, execute it against the KB, render the answer.

    With a ``chunk_sink`` installed (a streaming turn), the result rows
    are additionally emitted as ordered ``rows`` chunks of
    :data:`STREAM_ROW_BATCH` rows each, as soon as the KB query returns
    and before the answer text is rendered or the turn committed — the
    streaming client sees data while the rest of the turn completes.
    """
    assert outcome.intent_name
    intent = agent.space.intent(outcome.intent_name)
    bindings = {k: v for k, v in outcome.bindings.items() if v}
    context.remember_entities(recognition.values)
    context.end_slot_filling()
    template = select_template(agent, intent, bindings, recognition)
    if template is None:
        return AgentResponse(
            text=(
                "I understood the question but cannot answer it from the "
                "knowledge base yet."
            ),
            intent=intent.name,
            confidence=confidence,
            kind=ResponseKind.ANSWER_UNAVAILABLE,
        )
    try:
        result = template.execute(agent.database, bindings)
    except MissingBindingsError as exc:
        # Filters the template needs are missing; elicit the first
        # (the error names them all, so the loop converges).
        concept = exc.missing[0] if exc.missing else intent.required_entities[0]
        context.begin_slot_filling(intent.name, concept)
        return AgentResponse(
            text=f"For which {concept.lower()}?",
            intent=intent.name,
            confidence=confidence,
            kind=ResponseKind.ELICIT,
            elicit_concept=concept,
        )
    except (KBError, TemplateError):
        # Template SQL that no longer matches the re-published KB
        # (dropped column, renamed table, syntax slip in an SME edit):
        # `repro check` flags these at build time, but the serving
        # handler only catches EngineError, so anything escaping here
        # would kill the worker mid-commit (X001) — degrade gracefully.
        return AgentResponse(
            text=(
                "I understood the question but cannot answer it from the "
                "knowledge base yet."
            ),
            intent=intent.name,
            confidence=confidence,
            kind=ResponseKind.ANSWER_UNAVAILABLE,
        )
    if not result.rows:
        subject = intent.result_concept or "information"
        value_text = ", ".join(bindings.values()) or "that"
        return AgentResponse(
            text=f"I could not find {subject} for {value_text}.",
            intent=intent.name,
            confidence=confidence,
            kind=ResponseKind.ANSWER_EMPTY,
            entities=bindings,
            sql=template.sql,
        )
    if chunk_sink is not None:
        for start in range(0, len(result.rows), STREAM_ROW_BATCH):
            batch = result.rows[start:start + STREAM_ROW_BATCH]
            chunk_sink("rows", {
                "batch": start // STREAM_ROW_BATCH,
                "rows": [list(row) for row in batch],
            })
    if template.grouped:
        results_text = format_grouped_rows(result.rows)
    else:
        results_text = format_result_rows(result.rows)
    context.variables["last_rows"] = list(result.rows)
    context.variables["last_grouped"] = template.grouped
    if outcome.response_template:
        values = {context_key(k): v for k, v in bindings.items()}
        values["results"] = results_text
        try:
            text = render_template(outcome.response_template, values)
        except (DialogueError, ValueError):
            # An unbound variable or malformed format spec; `repro
            # check` flags these at build time, but an SME-edited
            # template can still slip through — answer plainly.
            text = f"Here is what I found: {results_text}"
    else:
        text = f"Here is what I found: {results_text}"
    return AgentResponse(
        text=text,
        intent=intent.name,
        confidence=confidence,
        kind=ResponseKind.ANSWER,
        entities=bindings,
        rows=list(result.rows),
        sql=template.sql,
    )


# ---------------------------------------------------------------------------
# The stages
# ---------------------------------------------------------------------------


class AgentStage(Stage):
    """A stage bound to one agent.

    Stages read the agent's components (classifier, recognizer, tree,
    database, ...) through the agent attribute at run time, so the
    serving layer's instrumentation proxies (query cache, classifier
    timing) keep working when they are swapped in.
    """

    def __init__(self, agent: "ConversationAgent") -> None:
        self.agent = agent


class Classify(AgentStage):
    """Intent classification + entity recognition + the gibberish guard."""

    name = "classify"

    def run(self, state: TurnState) -> AgentResponse | None:
        agent = self.agent
        prediction = agent.classifier.classify(state.utterance)
        state.recognition = agent.recognizer.recognize(state.utterance)
        intent_name: str | None = prediction.intent
        confidence = prediction.confidence
        # Gibberish guard: a mostly-out-of-vocabulary utterance with no
        # recognizable entity must not trigger any intent ("apfjhd", §7.2).
        if (
            not state.recognition.values
            and not state.recognition.ambiguous
            and agent.classifier.vectorizer.known_word_fraction(state.utterance)
            < 0.5
        ):
            intent_name, confidence = None, 0.0
            state.annotate(gibberish=True)
        state.adopt(intent_name, confidence)
        state.annotate(
            intent=prediction.intent,
            confidence=prediction.confidence,
            entities=len(state.recognition.values),
            concepts=len(state.recognition.concepts),
        )
        return None


class ManagementRescue(AgentStage):
    """A weakly-classified *management* intent yields to a domain
    reading when the utterance carries domain entities and concepts
    ("what indication is treated by X" is not a definition request)."""

    name = "management_rescue"

    def run(self, state: TurnState) -> AgentResponse | None:
        agent = self.agent
        if (
            state.intent is not None
            and domain_intent(agent, state.intent) is None
            and state.confidence < 0.5
            and state.recognition.values
            and state.recognition.concepts
        ):
            rescued = rescue_low_confidence(agent, state.utterance, state.recognition)
            if rescued is not None:
                state.adopt(*rescued)
                state.annotate(rescued=rescued[0])
        return None


class ResolveDisambiguation(AgentStage):
    """A pending disambiguation ("Did you mean ...?") resolves first."""

    name = "resolve_disambiguation"

    def run(self, state: TurnState) -> AgentResponse | None:
        resolved = resolve_disambiguation(
            self.agent, state.utterance, state.recognition, state.context
        )
        if resolved is not None:
            state.adopt(*resolved)
            state.annotate(resolved=resolved[0])
        return None


class Proposal(AgentStage):
    """A pending keyword proposal consumes an affirmative/negative."""

    name = "proposal"

    def run(self, state: TurnState) -> AgentResponse | None:
        return handle_proposal(
            self.agent, state.intent, state.confidence,
            state.recognition, state.context,
        )


class SlotFill(AgentStage):
    """A bare answer to an elicitation adopts the pending intent."""

    name = "slot_fill"

    def run(self, state: TurnState) -> AgentResponse | None:
        context = state.context
        if context.is_slot_filling:
            value = slot_answer(
                self.agent, state.utterance, state.recognition, context
            )
            if value is not None:
                state.recognition.values[context.pending_entity] = value
                state.adopt(context.pending_intent, CONTEXT_CONFIDENCE)
                state.annotate(filled=context.pending_entity, value=value)
        return None


class ContextReinterpret(AgentStage):
    """Entity mentions related to the prior request operate on it
    instead of starting over (§6.3 line 06)."""

    name = "context_reinterpret"

    def run(self, state: TurnState) -> AgentResponse | None:
        agent = self.agent
        recognition = state.recognition
        if not recognition.values:
            return None
        if recognition.concepts:
            # A concept mention ("dosage", "adverse effects") signals a new
            # request, not an operation on the previous one.
            return None
        current = domain_intent(agent, state.context.current_intent)
        if current is None or current.kind == "keyword":
            return None
        classified = domain_intent(agent, state.intent)
        classified_is_weak = (
            state.confidence < TRUST_THRESHOLD
            or classified is None
            or classified.kind == "keyword"
        )
        if not classified_is_weak:
            return None
        relevant = set(
            c.lower() for c in current.required_entities + current.optional_entities
        )
        mentioned = {c.lower() for c in recognition.values}
        if mentioned & relevant:
            state.adopt(current.name, CONTEXT_CONFIDENCE)
            state.annotate(reinterpreted=current.name)
        return None


class EntityRescue(AgentStage):
    """When the classifier is unsure, corroborate its top candidates
    against the recognized entities and concept mentions (the
    "intent + entity model" of §6.3)."""

    name = "entity_rescue"

    def run(self, state: TurnState) -> AgentResponse | None:
        agent = self.agent
        if state.confidence < agent.tree.confidence_threshold and (
            state.recognition.values or state.recognition.concepts
        ):
            rescued = rescue_low_confidence(agent, state.utterance, state.recognition)
            if rescued is not None:
                state.adopt(*rescued)
                state.annotate(rescued=rescued[0])
        return None


class KeywordRoute(AgentStage):
    """An entity-only utterance with no claiming context routes to the
    keyword intent regardless of the classifier ("cogentin", §6.3 — the
    conversation space is intent + entity, a bare entity must trigger
    the elicitation proposal, not an arbitrary lookup)."""

    name = "keyword_route"

    def run(self, state: TurnState) -> AgentResponse | None:
        agent = self.agent
        if (
            state.confidence != CONTEXT_CONFIDENCE
            and not state.context.is_slot_filling
        ):
            whole = agent.recognizer.whole_utterance_instance(state.utterance)
            if whole is not None:
                concept, _value = whole
                keyword_name = keyword_intent_name(concept)
                if agent.space.has_intent(keyword_name):
                    state.adopt(
                        agent.space.intent(keyword_name).name,
                        max(state.confidence, agent.tree.confidence_threshold),
                    )
                    state.annotate(keyword=concept)
        return None


class SlotArbitration(AgentStage):
    """A confident classification that is missing required entities
    yields to a close runner-up whose result concept was named and
    whose slots the utterance fills."""

    name = "slot_arbitration"

    def run(self, state: TurnState) -> AgentResponse | None:
        agent = self.agent
        current = domain_intent(agent, state.intent)
        if current is None or current.kind == "keyword":
            return None
        merged = {c.lower() for c in state.context.entities}
        merged |= {c.lower() for c in state.recognition.values}
        required = {c.lower() for c in current.required_entities}
        if required <= merged:
            return None  # the classified intent can proceed — keep it
        mentioned = {c.lower() for c in state.recognition.concepts}
        recognized = {c.lower() for c in state.recognition.values}
        for candidate in agent.classifier.top_k(state.utterance, k=3):
            if candidate.intent == state.intent:
                continue
            other = domain_intent(agent, candidate.intent)
            if other is None or other.kind == "keyword" or not other.patterns:
                continue
            if candidate.confidence < state.confidence * 0.25:
                break  # too far behind to overrule
            other_required = {c.lower() for c in other.required_entities}
            result_mentioned = (
                other.result_concept is not None
                and other.result_concept.lower() in mentioned
            )
            if result_mentioned and other_required and other_required <= recognized:
                state.adopt(
                    other.name,
                    max(candidate.confidence, agent.tree.confidence_threshold),
                )
                state.annotate(arbitrated=other.name)
                return None
        return None


class AskDisambiguation(AgentStage):
    """Unresolved ambiguity on a needed concept: ask before answering."""

    name = "ask_disambiguation"

    def run(self, state: TurnState) -> AgentResponse | None:
        recognition = state.recognition
        if recognition.ambiguous and not recognition.values:
            return ask_disambiguation(
                self.agent, recognition, state.intent,
                state.confidence, state.context,
            )
        return None


class TreeTraversal(AgentStage):
    """Dialogue-tree traversal (§5): produce the outcome to act on."""

    name = "tree"

    def run(self, state: TurnState) -> AgentResponse | None:
        state.outcome = self.agent.tree.respond(
            state.intent, state.confidence,
            state.recognition.values, state.context,
        )
        state.annotate(node=state.outcome.node_name, outcome=state.outcome.kind)
        return None


class _ActStage(AgentStage):
    """Base for the acting stages: fires on one tree-outcome kind."""

    outcome_kind: str = ""

    def run(self, state: TurnState) -> AgentResponse | None:
        if state.outcome is None or state.outcome.kind != self.outcome_kind:
            return None
        return self.handle(state)

    def handle(self, state: TurnState) -> AgentResponse:
        raise NotImplementedError


class Management(_ActStage):
    """Acts on a ``management`` outcome (canned replies + repairs)."""

    name = "management"
    outcome_kind = "management"

    def handle(self, state: TurnState) -> AgentResponse:
        return management_response(
            self.agent, state.outcome, state.utterance, state.context
        )


class Elicit(_ActStage):
    """Acts on an ``elicit`` outcome (slot-filling prompt)."""

    name = "elicit"
    outcome_kind = "elicit"

    def handle(self, state: TurnState) -> AgentResponse:
        return elicit_response(
            self.agent, state.outcome, state.recognition,
            state.confidence, state.context,
        )


class KeywordRedirect(_ActStage):
    """Acts on a ``keyword`` outcome: concept-carrying redirect, else
    the proposal flow."""

    name = "keyword"
    outcome_kind = "keyword"

    def handle(self, state: TurnState) -> AgentResponse:
        return keyword_response(
            self.agent, state.outcome, state.recognition,
            state.confidence, state.context,
        )


class Answer(_ActStage):
    """Acts on an ``answer`` outcome: template selection, query
    execution against the KB, response generation."""

    name = "answer"
    outcome_kind = "answer"

    def handle(self, state: TurnState) -> AgentResponse:
        return answer_response(
            self.agent, state.outcome, state.recognition,
            state.confidence, state.context,
            chunk_sink=state.chunk_sink,
        )


class Fallback(AgentStage):
    """Total last stage: entity-mention proposal or the apology."""

    name = "fallback"

    def run(self, state: TurnState) -> AgentResponse | None:
        return fallback_act(
            self.agent, state.recognition, state.confidence, state.context
        )


def default_stages(agent: "ConversationAgent") -> list[Stage]:
    """The behaviour-preserving stage order for one agent."""
    return [
        Classify(agent),
        ManagementRescue(agent),
        ResolveDisambiguation(agent),
        Proposal(agent),
        SlotFill(agent),
        ContextReinterpret(agent),
        EntityRescue(agent),
        KeywordRoute(agent),
        SlotArbitration(agent),
        AskDisambiguation(agent),
        TreeTraversal(agent),
        Management(agent),
        Elicit(agent),
        KeywordRedirect(agent),
        Answer(agent),
        Fallback(agent),
    ]
