"""Online conversation engine.

The online process of Figure 1(b): a user utterance is classified into
an intent, its entities are recognized (with synonym, fuzzy and
partial-name matching), the dialogue tree chooses an action, the
structured query template is populated and executed against the KB, and
a natural-language response is generated.
"""

from repro.engine.agent import AgentResponse, ConversationAgent, Session
from repro.engine.feedback import FeedbackLog, InteractionRecord
from repro.engine.logging import (
    load_log,
    mine_negative_interactions,
    retrain_from_log,
    save_log,
)
from repro.engine.recognizer import EntityRecognizer, RecognitionResult

__all__ = [
    "AgentResponse",
    "ConversationAgent",
    "EntityRecognizer",
    "FeedbackLog",
    "InteractionRecord",
    "RecognitionResult",
    "Session",
    "load_log",
    "mine_negative_interactions",
    "retrain_from_log",
    "save_log",
]
