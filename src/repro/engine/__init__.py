"""Online conversation engine.

The online process of Figure 1(b), realized as an explicit stage
pipeline: a user utterance is classified into an intent, its entities
are recognized (with synonym, fuzzy and partial-name matching), the
context stages reinterpret/rescue/arbitrate, the dialogue tree chooses
an action, the structured query template is populated and executed
against the KB, and a natural-language response is generated — with a
per-stage :class:`~repro.engine.pipeline.TurnTrace` recorded for every
turn.
"""

from repro.engine.agent import AgentResponse, ConversationAgent, Session
from repro.engine.feedback import FeedbackLog, InteractionRecord
from repro.engine.kinds import ResponseKind, validate_kind
from repro.engine.logging import (
    load_log,
    mine_negative_interactions,
    retrain_from_log,
    save_log,
)
from repro.engine.pipeline import (
    Stage,
    StageTrace,
    TurnPipeline,
    TurnState,
    TurnTrace,
    render_trace,
)
from repro.engine.recognizer import EntityRecognizer, RecognitionResult
from repro.engine.stages import default_stages

__all__ = [
    "AgentResponse",
    "ConversationAgent",
    "EntityRecognizer",
    "FeedbackLog",
    "InteractionRecord",
    "RecognitionResult",
    "ResponseKind",
    "Session",
    "Stage",
    "StageTrace",
    "TurnPipeline",
    "TurnState",
    "TurnTrace",
    "default_stages",
    "load_log",
    "mine_negative_interactions",
    "render_trace",
    "retrain_from_log",
    "save_log",
    "validate_kind",
]
