"""The conversation agent: the fully-automated online process.

Wires together every component of Figure 1(b): intent classification,
entity recognition, dialogue-tree traversal with persistent context,
structured-query-template execution against the KB, and response
generation — plus the §6 behaviours: slot filling across turns,
incremental query modification, keyword-query elicitation (the
"cogentin" flow of User 480), partial-entity disambiguation, definition
repair, and thumbs feedback capture.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.bootstrap.intents import Intent, keyword_intent_name
from repro.bootstrap.space import ConversationSpace
from repro.dialogue.context import ConversationContext, TurnRecord
from repro.dialogue.logic_table import DialogueLogicTable, context_key
from repro.dialogue.management import (
    MANAGEMENT_RESPONSES,
    default_management_intents,
    management_training_examples,
)
from repro.dialogue.responses import (
    format_grouped_rows,
    format_result_rows,
    render_template,
)
from repro.dialogue.tree import (
    DEFAULT_CONFIDENCE_THRESHOLD,
    DialogueTree,
    NodeOutcome,
    build_dialogue_tree,
)
from repro.engine.feedback import FeedbackLog, InteractionRecord
from repro.engine.recognizer import EntityRecognizer, RecognitionResult
from repro.errors import (
    DialogueError,
    EngineError,
    KBError,
    MissingBindingsError,
    NLQError,
    TemplateError,
)
from repro.kb.database import Database
from repro.nlp.classifier import IntentClassifier
from repro.nlp.tokenizer import tokenize
from repro.nlq.templates import StructuredQueryTemplate, templates_for_intent

#: Confidence assigned when context (slot filling / incremental
#: modification) determines the intent instead of the classifier.
CONTEXT_CONFIDENCE = 0.99

#: Classifier confidence above which context-based reinterpretation is
#: not attempted (the classifier is trusted).
TRUST_THRESHOLD = 0.75


@dataclass
class AgentResponse:
    """One agent turn."""

    text: str
    intent: str | None
    confidence: float
    kind: str
    entities: dict[str, str] = field(default_factory=dict)
    rows: list[tuple] = field(default_factory=list)
    sql: str | None = None
    elicit_concept: str | None = None


class ConversationAgent:
    """A trained, queryable conversation agent over one KB.

    Build one with :meth:`build`, then open :class:`Session` objects for
    each user.  The agent itself is stateless across sessions; all
    per-conversation state lives in the session's context.
    """

    def __init__(
        self,
        space: ConversationSpace,
        database: Database,
        classifier: IntentClassifier,
        recognizer: EntityRecognizer,
        tree: DialogueTree,
        logic_table: DialogueLogicTable,
        templates: dict[str, list[StructuredQueryTemplate]],
        glossary: dict[str, str],
        agent_name: str = "Assistant",
        domain: str = "knowledge base",
    ) -> None:
        self.space = space
        self.database = database
        self.classifier = classifier
        self.recognizer = recognizer
        self.tree = tree
        self.logic_table = logic_table
        self.templates = templates
        self.glossary = {k.lower(): v for k, v in glossary.items()}
        self.agent_name = agent_name
        self.domain = domain
        self.feedback_log = FeedbackLog()
        # Session ids are allocated under a lock: concurrent requests on
        # the serving layer open sessions from many threads at once, and
        # two sessions sharing an id would cross their feedback records.
        self._session_id_lock = threading.Lock()
        self._next_session_id = 1

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        space: ConversationSpace,
        database: Database,
        glossary: dict[str, str] | None = None,
        agent_name: str = "Assistant",
        domain: str = "knowledge base",
        classifier: IntentClassifier | None = None,
        confidence_threshold: float = DEFAULT_CONFIDENCE_THRESHOLD,
    ) -> "ConversationAgent":
        """Assemble and train an agent from a bootstrapped space.

        Adds the built-in management intents and their training examples
        to the space (when absent), trains the classifier, builds the
        recognizer, generates the dialogue logic table + tree, and
        pre-generates one structured query template per intent pattern.
        """
        for intent in default_management_intents():
            if not space.has_intent(intent.name):
                space.add_intent(intent)
        existing = {(e.utterance.lower(), e.intent) for e in space.training_examples}
        for utterance, intent_name in management_training_examples():
            if (utterance.lower(), intent_name) not in existing:
                space.add_training_examples(intent_name, [utterance])

        trained = space.train_classifier(classifier)
        recognizer = EntityRecognizer(space.entities)
        logic_table = DialogueLogicTable.from_space(space)
        tree = build_dialogue_tree(
            logic_table, confidence_threshold=confidence_threshold
        )

        templates: dict[str, list[StructuredQueryTemplate]] = {}
        for intent in space.intents:
            if intent.custom_templates:
                templates[intent.name] = list(intent.custom_templates)
                continue
            if not intent.patterns:
                continue
            try:
                templates[intent.name] = templates_for_intent(
                    intent, space.ontology, database
                )
            except (NLQError, TemplateError):
                # Intents whose patterns cannot be realized as SQL fall
                # back to an apologetic answer at run time.
                templates[intent.name] = []

        # Pre-warm the compiled-plan cache: every shipped template is
        # parsed/resolved/planned now, so the first live request for any
        # intent never pays compilation latency (and template SQL that
        # cannot compile surfaces at build time in logs, not mid-turn).
        prepare = getattr(database, "prepare", None)
        if prepare is not None:
            for intent_templates in templates.values():
                for template in intent_templates:
                    try:
                        prepare(template.sql)
                    except KBError:
                        # Uncompilable template SQL falls back to the
                        # apologetic answer at run time, same as intents
                        # with no template at all.
                        continue

        full_glossary = dict(glossary or {})
        for concept in space.ontology.concepts():
            if concept.description and concept.name.lower() not in (
                k.lower() for k in full_glossary
            ):
                full_glossary[concept.name] = concept.description
        return cls(
            space=space,
            database=database,
            classifier=trained,
            recognizer=recognizer,
            tree=tree,
            logic_table=logic_table,
            templates=templates,
            glossary=full_glossary,
            agent_name=agent_name,
            domain=domain,
        )

    # -- sessions --------------------------------------------------------------

    def allocate_session_id(self) -> int:
        """Hand out the next session id (thread-safe)."""
        with self._session_id_lock:
            session_id = self._next_session_id
            self._next_session_id += 1
            return session_id

    def session(self) -> "Session":
        """Open a new conversation session."""
        return Session(self, self.allocate_session_id())

    def greeting(self) -> str:
        return MANAGEMENT_RESPONSES["greeting"].format(
            agent_name=self.agent_name, domain=self.domain
        )

    # -- core turn logic -----------------------------------------------------------

    def respond(
        self, utterance: str, context: ConversationContext
    ) -> AgentResponse:
        """Produce the agent turn for ``utterance`` under ``context``."""
        prediction = self.classifier.classify(utterance)
        recognition = self.recognizer.recognize(utterance)
        intent_name: str | None = prediction.intent
        confidence = prediction.confidence

        # Gibberish guard: a mostly-out-of-vocabulary utterance with no
        # recognizable entity must not trigger any intent ("apfjhd", §7.2).
        if (
            not recognition.values
            and not recognition.ambiguous
            and self.classifier.vectorizer.known_word_fraction(utterance) < 0.5
        ):
            intent_name, confidence = None, 0.0

        # A weakly-classified *management* intent yields to a domain
        # reading when the utterance carries domain entities and concepts
        # ("what indication is treated by X" is not a definition request).
        if (
            intent_name is not None
            and self._domain_intent(intent_name) is None
            and confidence < 0.5
            and recognition.values
            and recognition.concepts
        ):
            rescued = self._rescue_low_confidence(utterance, recognition)
            if rescued is not None:
                intent_name, confidence = rescued

        # Pending disambiguation ("Did you mean ...?") resolves first.
        resolved = self._resolve_disambiguation(utterance, recognition, context)
        if resolved is not None:
            intent_name, confidence = resolved

        # Pending keyword proposal ("Would you like to see ...?").
        proposal_response = self._handle_proposal(
            intent_name, confidence, recognition, context
        )
        if proposal_response is not None:
            return proposal_response

        # Slot filling: a bare answer to an elicitation adopts the
        # pending intent.
        if context.is_slot_filling:
            slot_value = self._slot_answer(utterance, recognition, context)
            if slot_value is not None:
                recognition.values[context.pending_entity] = slot_value
                intent_name = context.pending_intent
                confidence = CONTEXT_CONFIDENCE

        # Incremental modification: entity mentions related to the prior
        # request operate on it instead of starting over (§6.3 line 06).
        reinterpreted = self._reinterpret_with_context(
            intent_name, confidence, recognition, context
        )
        if reinterpreted is not None:
            intent_name, confidence = reinterpreted

        # Entity-informed rescue: when the classifier is unsure, corroborate
        # its top candidates against the recognized entities and concept
        # mentions (the "intent + entity model" of §6.3).
        if (
            confidence < self.tree.confidence_threshold
            and (recognition.values or recognition.concepts)
        ):
            rescued = self._rescue_low_confidence(utterance, recognition)
            if rescued is not None:
                intent_name, confidence = rescued

        # Entity-only utterance with no claiming context: route it to the
        # keyword intent regardless of the classifier ("cogentin", §6.3 —
        # the conversation space is intent + entity, a bare entity must
        # trigger the elicitation proposal, not an arbitrary lookup).
        if confidence != CONTEXT_CONFIDENCE and not context.is_slot_filling:
            whole = self.recognizer.whole_utterance_instance(utterance)
            if whole is not None:
                concept, _value = whole
                keyword_name = keyword_intent_name(concept)
                if self.space.has_intent(keyword_name):
                    intent_name = self.space.intent(keyword_name).name
                    confidence = max(confidence, self.tree.confidence_threshold)

        # Slot-aware arbitration: a confident classification that is
        # missing required entities yields to a close runner-up whose
        # result concept was named and whose slots the utterance fills.
        arbitrated = self._arbitrate_slots(
            utterance, intent_name, confidence, recognition, context
        )
        if arbitrated is not None:
            intent_name, confidence = arbitrated

        # Unresolved ambiguity on a needed concept: ask before answering.
        if recognition.ambiguous and not recognition.values:
            return self._ask_disambiguation(
                recognition, intent_name, confidence, context
            )

        outcome = self.tree.respond(
            intent_name, confidence, recognition.values, context
        )
        return self._act(outcome, utterance, recognition, confidence, context)

    # -- context-dependent reinterpretation ------------------------------------------

    def _domain_intent(self, name: str | None) -> Intent | None:
        if name is None or not self.space.has_intent(name):
            return None
        intent = self.space.intent(name)
        if intent.kind in ("management",):
            return None
        return intent

    def _reinterpret_with_context(
        self,
        intent_name: str | None,
        confidence: float,
        recognition: RecognitionResult,
        context: ConversationContext,
    ) -> tuple[str, float] | None:
        if not recognition.values:
            return None
        if recognition.concepts:
            # A concept mention ("dosage", "adverse effects") signals a new
            # request, not an operation on the previous one.
            return None
        current = self._domain_intent(context.current_intent)
        if current is None or current.kind == "keyword":
            return None
        classified = self._domain_intent(intent_name)
        classified_is_weak = (
            confidence < TRUST_THRESHOLD
            or classified is None
            or classified.kind == "keyword"
        )
        if not classified_is_weak:
            return None
        relevant = set(
            c.lower() for c in current.required_entities + current.optional_entities
        )
        mentioned = {c.lower() for c in recognition.values}
        if mentioned & relevant:
            return current.name, CONTEXT_CONFIDENCE
        return None

    def _rescue_low_confidence(
        self, utterance: str, recognition: RecognitionResult
    ) -> tuple[str, float] | None:
        """Corroborate low-confidence top-k candidates with entities.

        A candidate domain intent is adopted when the recognized entities
        satisfy all of its required slots, and either its result concept
        was mentioned by name or its slots are genuinely filled.  Keyword
        intents are never rescued (they are the fallback of last resort).
        """
        mentioned_concepts = {c.lower() for c in recognition.concepts}
        recognized = {c.lower() for c in recognition.values}
        candidates = self.classifier.top_k(utterance, k=3)
        # Pass 1: a candidate whose *result concept* was named outranks
        # everything — "pk profile of X" names Pharmacokinetics.
        for candidate in candidates:
            intent = self._domain_intent(candidate.intent)
            if intent is None or intent.kind == "keyword" or not intent.patterns:
                continue
            if (
                intent.result_concept is not None
                and intent.result_concept.lower() in mentioned_concepts
            ):
                return intent.name, max(
                    candidate.confidence, self.tree.confidence_threshold
                )
        # Pass 2: full slot corroboration, but only when the utterance also
        # names some concept — a bare drug name must stay on the keyword
        # path, not hijack a slot-filled intent.
        if mentioned_concepts:
            for candidate in candidates:
                intent = self._domain_intent(candidate.intent)
                if intent is None or intent.kind == "keyword" or not intent.patterns:
                    continue
                required = {c.lower() for c in intent.required_entities}
                if required and required <= recognized:
                    return intent.name, max(
                        candidate.confidence, self.tree.confidence_threshold
                    )
        return None

    def _arbitrate_slots(
        self,
        utterance: str,
        intent_name: str | None,
        confidence: float,
        recognition: RecognitionResult,
        context: ConversationContext,
    ) -> tuple[str, float] | None:
        current = self._domain_intent(intent_name)
        if current is None or current.kind == "keyword":
            return None
        merged = {c.lower() for c in context.entities}
        merged |= {c.lower() for c in recognition.values}
        required = {c.lower() for c in current.required_entities}
        if required <= merged:
            return None  # the classified intent can proceed — keep it
        mentioned = {c.lower() for c in recognition.concepts}
        recognized = {c.lower() for c in recognition.values}
        for candidate in self.classifier.top_k(utterance, k=3):
            if candidate.intent == intent_name:
                continue
            other = self._domain_intent(candidate.intent)
            if other is None or other.kind == "keyword" or not other.patterns:
                continue
            if candidate.confidence < confidence * 0.25:
                break  # too far behind to overrule
            other_required = {c.lower() for c in other.required_entities}
            result_mentioned = (
                other.result_concept is not None
                and other.result_concept.lower() in mentioned
            )
            if result_mentioned and other_required and other_required <= recognized:
                return other.name, max(
                    candidate.confidence, self.tree.confidence_threshold
                )
        return None

    def _slot_answer(
        self,
        utterance: str,
        recognition: RecognitionResult,
        context: ConversationContext,
    ) -> str | None:
        pending = context.pending_entity
        if pending is None:
            return None
        for concept, value in recognition.values.items():
            if concept.lower() == pending.lower():
                return value
        return self.recognizer.is_instance_of(utterance, pending)

    # -- disambiguation --------------------------------------------------------------

    def _ask_disambiguation(
        self,
        recognition: RecognitionResult,
        intent_name: str | None,
        confidence: float,
        context: ConversationContext,
    ) -> AgentResponse:
        surface, candidates = next(iter(recognition.ambiguous.items()))
        shown = candidates[:4]
        options = ", ".join(value for _, value in shown)
        context.variables["disambiguation"] = {
            "surface": surface,
            "candidates": shown,
            "intent": intent_name,
            "confidence": confidence,
        }
        return AgentResponse(
            text=f"I know several matches for \"{surface}\": {options}. "
            "Which one do you mean?",
            intent=intent_name,
            confidence=confidence,
            kind="disambiguate",
            entities=dict(recognition.values),
        )

    def _resolve_disambiguation(
        self,
        utterance: str,
        recognition: RecognitionResult,
        context: ConversationContext,
    ) -> tuple[str | None, float] | None:
        pending = context.variables.get("disambiguation")
        if not pending:
            return None
        tokens = set(tokenize(utterance))
        chosen: tuple[str, str] | None = None
        for concept, value in pending["candidates"]:
            value_tokens = set(tokenize(value))
            if value_tokens and value_tokens <= tokens | set(
                itertools.chain.from_iterable(
                    tokenize(v) for v in recognition.values.values()
                )
            ):
                chosen = (concept, value)
                break
        if chosen is None:
            # Try containment the other way: the reply may be a fragment
            # uniquely identifying one candidate.
            matches = [
                (concept, value)
                for concept, value in pending["candidates"]
                if tokens & set(tokenize(value))
            ]
            if len(matches) == 1:
                chosen = matches[0]
        context.variables.pop("disambiguation", None)
        if chosen is None:
            return None
        concept, value = chosen
        recognition.values[concept] = value
        stored_intent = pending.get("intent")
        if stored_intent and self._domain_intent(stored_intent):
            return stored_intent, CONTEXT_CONFIDENCE
        return None

    # -- keyword (entity-only) proposal flow -------------------------------------------

    def _proposal_options(self, concept: str) -> list[str]:
        """Lookup intents that can be proposed for an entity-only mention,
        ordered by the dependent-concept list of the classification."""
        options = []
        for dependent in self.space.classification.dependents_of.get(concept, []):
            for intent in self.space.intents:
                if (
                    intent.kind == "lookup"
                    and intent.result_concept
                    and intent.result_concept.lower() == dependent.lower()
                    and any(
                        r.lower() == concept.lower()
                        for r in intent.required_entities
                    )
                ):
                    options.append(intent.name)
                    break
        return options

    def _start_proposal(
        self, concept: str, value: str, context: ConversationContext
    ) -> AgentResponse | None:
        options = self._proposal_options(concept)
        if not options:
            return None
        context.remember_entity(concept, value)
        context.variables["proposal"] = {
            "concept": concept,
            "value": value,
            "options": options,
            "index": 0,
        }
        return self._propose_next(context)

    def _propose_next(self, context: ConversationContext) -> AgentResponse:
        proposal = context.variables["proposal"]
        index = proposal["index"]
        options = proposal["options"]
        if index >= len(options) or index >= 2:
            # Give up after two rejected proposals (§6.3, User 480 lines 5-6).
            context.variables.pop("proposal", None)
            return AgentResponse(
                text="OK. Please modify your search.",
                intent="abort",
                confidence=1.0,
                kind="management",
            )
        intent = self.space.intent(options[index])
        subject = intent.result_concept or intent.name
        return AgentResponse(
            text=(
                f"Would you like to see the {subject.lower()} of "
                f"{proposal['value']}?"
            ),
            intent=intent.name,
            confidence=1.0,
            kind="proposal",
            entities={proposal["concept"]: proposal["value"]},
        )

    def _handle_proposal(
        self,
        intent_name: str | None,
        confidence: float,
        recognition: RecognitionResult,
        context: ConversationContext,
    ) -> AgentResponse | None:
        proposal = context.variables.get("proposal")
        if not proposal:
            return None
        if intent_name == "affirmative" and confidence >= self.tree.confidence_threshold:
            context.variables.pop("proposal", None)
            chosen = self.space.intent(proposal["options"][proposal["index"]])
            outcome = self.tree.respond(
                chosen.name,
                CONTEXT_CONFIDENCE,
                {proposal["concept"]: proposal["value"]},
                context,
            )
            return self._act(
                outcome, proposal["value"], recognition, CONTEXT_CONFIDENCE, context
            )
        if intent_name == "negative" and confidence >= self.tree.confidence_threshold:
            proposal["index"] += 1
            return self._propose_next(context)
        # Anything else abandons the proposal and is processed normally.
        context.variables.pop("proposal", None)
        return None

    # -- acting on tree outcomes ---------------------------------------------------------

    def _act(
        self,
        outcome: NodeOutcome,
        utterance: str,
        recognition: RecognitionResult,
        confidence: float,
        context: ConversationContext,
    ) -> AgentResponse:
        if outcome.kind == "management":
            return self._management_response(outcome, utterance, context)
        if outcome.kind == "elicit":
            context.remember_entities(recognition.values)
            assert outcome.intent_name and outcome.elicit_concept
            context.begin_slot_filling(outcome.intent_name, outcome.elicit_concept)
            return AgentResponse(
                text=outcome.elicit_prompt or f"Which {outcome.elicit_concept}?",
                intent=outcome.intent_name,
                confidence=confidence,
                kind="elicit",
                entities=dict(recognition.values),
                elicit_concept=outcome.elicit_concept,
            )
        if outcome.kind == "keyword":
            context.end_slot_filling()
            assert outcome.intent_name
            intent = self.space.intent(outcome.intent_name)
            concept = intent.required_entities[0]
            value = outcome.bindings.get(concept) or next(
                iter(recognition.values.values()), None
            )
            if value:
                # "cogentin adverse effects": a keyword-style utterance that
                # still names a dependent concept is a recognizable lookup
                # request (§6.3, User 480 line 07) — answer it directly.
                redirected = self._redirect_keyword(
                    concept, value, recognition, confidence, context
                )
                if redirected is not None:
                    return redirected
                started = self._start_proposal(concept, value, context)
                if started is not None:
                    return started
            return self._fallback_response(confidence)
        if outcome.kind == "answer":
            return self._answer(outcome, recognition, confidence, context)
        # Fallback: a mentioned-but-unclassified entity still gets the
        # keyword treatment (search-engine style users, §6.3).
        if recognition.values and not context.is_slot_filling:
            concept, value = next(iter(recognition.values.items()))
            started = self._start_proposal(concept, value, context)
            if started is not None:
                return started
        return self._fallback_response(confidence)

    def _redirect_keyword(
        self,
        concept: str,
        value: str,
        recognition: RecognitionResult,
        confidence: float,
        context: ConversationContext,
    ) -> AgentResponse | None:
        """Answer a keyword utterance that also names a dependent concept."""
        mentioned = {c.lower() for c in recognition.concepts}
        if not mentioned:
            return None
        for intent in self.space.intents:
            if intent.kind != "lookup" or not intent.result_concept:
                continue
            if intent.result_concept.lower() not in mentioned:
                continue
            if not any(
                r.lower() == concept.lower() for r in intent.required_entities
            ):
                continue
            outcome = self.tree.respond(
                intent.name, CONTEXT_CONFIDENCE, {concept: value}, context
            )
            if outcome.kind == "answer":
                return self._answer(outcome, recognition, confidence, context)
        return None

    def _fallback_response(self, confidence: float) -> AgentResponse:
        return AgentResponse(
            text=(
                "I'm sorry, I didn't understand that. Try asking about the "
                f"{self.domain} — say 'help' for examples."
            ),
            intent=None,
            confidence=confidence,
            kind="fallback",
        )

    def _management_response(
        self, outcome: NodeOutcome, utterance: str, context: ConversationContext
    ) -> AgentResponse:
        intent_name = outcome.intent_name or ""
        template = outcome.response_template or ""
        values: dict[str, Any] = {
            "agent_name": self.agent_name,
            "domain": self.domain,
            "last_response": context.last_response or "nothing yet",
        }
        if intent_name in ("help", "capabilities"):
            values["examples"] = self._example_questions()
        if intent_name == "paraphrase_request":
            compact = self._paraphrase(context)
            if compact is not None:
                values["last_response"] = compact
        if intent_name == "definition_request":
            values["definition"] = self._definition_for(utterance)
        if intent_name == "abort":
            context.reset()
        text = render_template(template, values) if template else ""
        return AgentResponse(
            text=text,
            intent=intent_name,
            confidence=CONTEXT_CONFIDENCE,
            kind="management",
        )

    def _paraphrase(self, context: ConversationContext) -> str | None:
        """Re-render the last answer's rows compactly (pattern B2.0.0:
        a paraphrase is a reformulation, not a verbatim repeat)."""
        rows = context.variables.get("last_rows")
        if not rows:
            return None
        if context.variables.get("last_grouped"):
            return format_grouped_rows(rows, limit_per_group=3)
        return format_result_rows(rows, limit=3)

    def _example_questions(self, count: int = 3) -> str:
        """Real example questions drawn from the space's intents, so help
        text always reflects what this agent can actually answer."""
        examples = []
        for intent in self.space.intents:
            if intent.kind in ("management", "keyword"):
                continue
            for example in self.space.examples_for(intent.name):
                examples.append(f"'{example.utterance}'")
                break
            if len(examples) >= count:
                break
        return ", ".join(examples) if examples else "'help'"

    def _definition_for(self, utterance: str) -> str:
        tokens = tokenize(utterance)
        # Longest glossary term mentioned in the utterance wins.
        best: tuple[int, str, str] | None = None
        for term, definition in self.glossary.items():
            term_tokens = tokenize(term)
            if not term_tokens:
                continue
            joined = " ".join(term_tokens)
            if joined in " ".join(tokens):
                if best is None or len(term_tokens) > best[0]:
                    best = (len(term_tokens), term, definition)
        if best is None:
            return (
                "I don't have a definition for that term, but you can ask "
                "about anything in the knowledge base."
            )
        _, term, definition = best
        capitalized = term[0].upper() + term[1:]
        return f"{capitalized} is {definition}"

    def _select_template(
        self,
        intent: Intent,
        bindings: dict[str, str],
        recognition: RecognitionResult,
    ) -> StructuredQueryTemplate | None:
        candidates = self.templates.get(intent.name, [])
        if not candidates:
            return None
        # Union/inheritance lookups: a mentioned member concept picks its
        # augmentation template ("contra indications" under "Risk").  Only
        # pattern-generated template lists align 1:1 with the patterns.
        if not intent.custom_templates:
            for concept in recognition.concepts:
                for pattern, template in zip(intent.patterns, candidates):
                    if (
                        pattern.augmented_from is not None
                        and pattern.result_concept.lower() == concept.lower()
                    ):
                        return template
        # Otherwise the most specific fully-satisfied template wins: the
        # indirect pattern 2 when both keys are bound, the severity-
        # filtered interaction template when a severity was mentioned.
        bound = {k.lower() for k, v in bindings.items() if v}
        best = candidates[0]
        best_filters = {c.lower() for c in best.required_concepts()}
        for template in candidates:
            filters = {c.lower() for c in template.required_concepts()}
            if filters <= bound and len(filters) > len(best_filters):
                best = template
                best_filters = filters
        return best

    def _answer(
        self,
        outcome: NodeOutcome,
        recognition: RecognitionResult,
        confidence: float,
        context: ConversationContext,
    ) -> AgentResponse:
        assert outcome.intent_name
        intent = self.space.intent(outcome.intent_name)
        bindings = {k: v for k, v in outcome.bindings.items() if v}
        context.remember_entities(recognition.values)
        context.end_slot_filling()
        template = self._select_template(intent, bindings, recognition)
        if template is None:
            return AgentResponse(
                text=(
                    "I understood the question but cannot answer it from the "
                    "knowledge base yet."
                ),
                intent=intent.name,
                confidence=confidence,
                kind="answer_unavailable",
            )
        try:
            result = template.execute(self.database, bindings)
        except MissingBindingsError as exc:
            # Filters the template needs are missing; elicit the first
            # (the error names them all, so the loop converges).
            concept = exc.missing[0] if exc.missing else intent.required_entities[0]
            context.begin_slot_filling(intent.name, concept)
            return AgentResponse(
                text=f"For which {concept.lower()}?",
                intent=intent.name,
                confidence=confidence,
                kind="elicit",
                elicit_concept=concept,
            )
        if not result.rows:
            subject = intent.result_concept or "information"
            value_text = ", ".join(bindings.values()) or "that"
            return AgentResponse(
                text=f"I could not find {subject} for {value_text}.",
                intent=intent.name,
                confidence=confidence,
                kind="answer_empty",
                entities=bindings,
                sql=template.sql,
            )
        if template.grouped:
            results_text = format_grouped_rows(result.rows)
        else:
            results_text = format_result_rows(result.rows)
        context.variables["last_rows"] = list(result.rows)
        context.variables["last_grouped"] = template.grouped
        if outcome.response_template:
            values = {context_key(k): v for k, v in bindings.items()}
            values["results"] = results_text
            try:
                text = render_template(outcome.response_template, values)
            except (DialogueError, ValueError):
                # An unbound variable or malformed format spec; `repro
                # check` flags these at build time, but an SME-edited
                # template can still slip through — answer plainly.
                text = f"Here is what I found: {results_text}"
        else:
            text = f"Here is what I found: {results_text}"
        return AgentResponse(
            text=text,
            intent=intent.name,
            confidence=confidence,
            kind="answer",
            entities=bindings,
            rows=list(result.rows),
            sql=template.sql,
        )


class Session:
    """One user conversation: context, transcript and feedback."""

    def __init__(self, agent: ConversationAgent, session_id: int) -> None:
        self.agent = agent
        self.id = session_id
        self.context = ConversationContext()

    def open(self) -> str:
        """The agent's conversation-opening utterance (pattern A1.0.0)."""
        return self.agent.greeting()

    def ask(self, utterance: str) -> AgentResponse:
        """Process one user utterance and log the interaction."""
        if not utterance or not utterance.strip():
            raise EngineError("utterance must be non-empty")
        response = self.agent.respond(utterance, self.context)
        self.context.record_turn(
            TurnRecord(
                user=utterance,
                agent=response.text,
                intent=response.intent,
                confidence=response.confidence,
                entities=dict(response.entities),
                outcome_kind=response.kind,
            )
        )
        self.agent.feedback_log.record(
            InteractionRecord(
                utterance=utterance,
                response=response.text,
                intent=response.intent,
                confidence=response.confidence,
                outcome_kind=response.kind,
                session_id=self.id,
            )
        )
        return response

    def thumbs_up(self) -> None:
        self.agent.feedback_log.mark_last_for_session(self.id, "up")

    def thumbs_down(self) -> None:
        self.agent.feedback_log.mark_last_for_session(self.id, "down")

    def transcript(self) -> list[TurnRecord]:
        return list(self.context.history)
