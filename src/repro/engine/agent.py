"""The conversation agent: the fully-automated online process.

Wires together every component of Figure 1(b): intent classification,
entity recognition, dialogue-tree traversal with persistent context,
structured-query-template execution against the KB, and response
generation — plus the §6 behaviours: slot filling across turns,
incremental query modification, keyword-query elicitation (the
"cogentin" flow of User 480), partial-entity disambiguation, definition
repair, and thumbs feedback capture.

The turn logic itself lives in the staged pipeline
(:mod:`repro.engine.pipeline` / :mod:`repro.engine.stages`); this module
is construction and session management: :meth:`ConversationAgent.build`
trains and assembles the components, ``__init__`` assembles the default
stage pipeline over them, and :meth:`ConversationAgent.respond` runs
one traced turn through it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.bootstrap.space import ConversationSpace
from repro.dialogue.context import ConversationContext, TurnRecord
from repro.dialogue.logic_table import DialogueLogicTable
from repro.dialogue.management import (
    MANAGEMENT_RESPONSES,
    default_management_intents,
    management_training_examples,
)
from repro.dialogue.tree import (
    DEFAULT_CONFIDENCE_THRESHOLD,
    DialogueTree,
    build_dialogue_tree,
)
from repro.engine.feedback import FeedbackLog, InteractionRecord
from repro.engine.kinds import ResponseKind
from repro.engine.pipeline import AgentResponse, TurnPipeline, TurnTrace
from repro.engine.recognizer import EntityRecognizer
from repro.engine.stages import (
    CONTEXT_CONFIDENCE,
    TRUST_THRESHOLD,
    default_stages,
)
from repro.errors import EngineError, KBError, NLQError, TemplateError
from repro.kb.backend import KBBackend, KBHandle
from repro.nlp.classifier import IntentClassifier
from repro.nlq.templates import StructuredQueryTemplate, templates_for_intent

__all__ = [
    "AgentResponse",
    "ConversationAgent",
    "Session",
    "SessionIdAllocator",
    "ResponseKind",
    "CONTEXT_CONFIDENCE",
    "TRUST_THRESHOLD",
]


class SessionIdAllocator:
    """Thread-safe monotonic session-id source.

    ``start``/``stride`` carve the id space into residue classes so N
    serving workers can allocate concurrently without coordination
    (worker *i* of *N* hands out ids ≡ *i* (mod *N*)).  The default
    ``start=1, stride=1`` reproduces the historical single-process
    sequence.  Subclasses may override :meth:`reserve` to persist a
    high-water mark before ids from a batch are handed out (see
    :class:`repro.persistence.store.DurableSessionIdAllocator`).
    """

    def __init__(self, start: int = 1, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if start < 0:
            raise ValueError("start must be >= 0")
        self._lock = threading.Lock()
        self._stride = stride
        self._next = start if start > 0 else stride

    @property
    def stride(self) -> int:
        return self._stride

    def allocate(self) -> int:
        with self._lock:
            session_id = self._next
            self._next += self._stride
            self.reserve(self._next)
            return session_id

    def peek(self) -> int:
        """The id the next :meth:`allocate` call would return."""
        with self._lock:
            return self._next

    def reserve(self, up_to: int) -> None:
        """Ensure ids below ``up_to`` are never reissued (no-op here)."""


class ConversationAgent:
    """A trained, queryable conversation agent over one KB.

    Build one with :meth:`build`, then open :class:`Session` objects for
    each user.  The agent itself is stateless across sessions; all
    per-conversation state lives in the session's context.  Each turn
    runs through the agent's :class:`~repro.engine.pipeline.TurnPipeline`
    (assembled from :func:`~repro.engine.stages.default_stages`), so the
    response carries a per-stage :class:`~repro.engine.pipeline.TurnTrace`.
    """

    def __init__(
        self,
        space: ConversationSpace,
        database: "KBBackend",
        classifier: IntentClassifier,
        recognizer: EntityRecognizer,
        tree: DialogueTree,
        logic_table: DialogueLogicTable,
        templates: dict[str, list[StructuredQueryTemplate]],
        glossary: dict[str, str],
        agent_name: str = "Assistant",
        domain: str = "knowledge base",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.space = space
        # Every KB access goes through a copy-on-write handle so a live
        # refresh can atomically swap the backend under running turns.
        self.database = (
            database if isinstance(database, KBHandle) else KBHandle(database)
        )
        self.classifier = classifier
        self.recognizer = recognizer
        self.tree = tree
        self.logic_table = logic_table
        self.templates = templates
        self.glossary = {k.lower(): v for k, v in glossary.items()}
        self.agent_name = agent_name
        self.domain = domain
        self.feedback_log = FeedbackLog()
        self.pipeline = TurnPipeline(default_stages(self), clock=clock)
        # Session ids are allocated under the allocator's lock: concurrent
        # requests on the serving layer open sessions from many threads at
        # once, and two sessions sharing an id would cross their feedback
        # records.  The durable serving layer swaps in an allocator that
        # persists its high-water mark so ids survive restarts.
        self.id_allocator = SessionIdAllocator()

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        space: ConversationSpace,
        database: "KBBackend",
        glossary: dict[str, str] | None = None,
        agent_name: str = "Assistant",
        domain: str = "knowledge base",
        classifier: IntentClassifier | None = None,
        confidence_threshold: float = DEFAULT_CONFIDENCE_THRESHOLD,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "ConversationAgent":
        """Assemble and train an agent from a bootstrapped space.

        Adds the built-in management intents and their training examples
        to the space (when absent), trains the classifier, builds the
        recognizer, generates the dialogue logic table + tree, and
        pre-generates one structured query template per intent pattern.
        """
        for intent in default_management_intents():
            if not space.has_intent(intent.name):
                space.add_intent(intent)
        existing = {(e.utterance.lower(), e.intent) for e in space.training_examples}
        for utterance, intent_name in management_training_examples():
            if (utterance.lower(), intent_name) not in existing:
                space.add_training_examples(intent_name, [utterance])

        trained = space.train_classifier(classifier)
        recognizer = EntityRecognizer(space.entities)
        logic_table = DialogueLogicTable.from_space(space)
        tree = build_dialogue_tree(
            logic_table, confidence_threshold=confidence_threshold
        )

        templates: dict[str, list[StructuredQueryTemplate]] = {}
        for intent in space.intents:
            if intent.custom_templates:
                templates[intent.name] = list(intent.custom_templates)
                continue
            if not intent.patterns:
                continue
            try:
                templates[intent.name] = templates_for_intent(
                    intent, space.ontology, database
                )
            except (NLQError, TemplateError):
                # Intents whose patterns cannot be realized as SQL fall
                # back to an apologetic answer at run time.
                templates[intent.name] = []

        # Pre-warm the compiled-plan cache: every shipped template is
        # parsed/resolved/planned now, so the first live request for any
        # intent never pays compilation latency (and template SQL that
        # cannot compile surfaces at build time in logs, not mid-turn).
        prepare = getattr(database, "prepare", None)
        if prepare is not None:
            for intent_templates in templates.values():
                for template in intent_templates:
                    try:
                        prepare(template.sql)
                    except KBError:
                        # Uncompilable template SQL falls back to the
                        # apologetic answer at run time, same as intents
                        # with no template at all.
                        continue

        full_glossary = dict(glossary or {})
        for concept in space.ontology.concepts():
            if concept.description and concept.name.lower() not in (
                k.lower() for k in full_glossary
            ):
                full_glossary[concept.name] = concept.description
        return cls(
            space=space,
            database=database,
            classifier=trained,
            recognizer=recognizer,
            tree=tree,
            logic_table=logic_table,
            templates=templates,
            glossary=full_glossary,
            agent_name=agent_name,
            domain=domain,
            clock=clock,
        )

    # -- sessions --------------------------------------------------------------

    def allocate_session_id(self) -> int:
        """Hand out the next session id (thread-safe)."""
        return self.id_allocator.allocate()

    def session(self) -> "Session":
        """Open a new conversation session."""
        return Session(self, self.allocate_session_id())

    def greeting(self) -> str:
        return MANAGEMENT_RESPONSES["greeting"].format(
            agent_name=self.agent_name, domain=self.domain
        )

    # -- core turn logic -------------------------------------------------------

    def respond(
        self,
        utterance: str,
        context: ConversationContext,
        chunk_sink: Callable[[str, dict], None] | None = None,
    ) -> AgentResponse:
        """Produce the agent turn for ``utterance`` under ``context``.

        The returned response carries the turn's
        :class:`~repro.engine.pipeline.TurnTrace` in ``response.trace``.
        ``chunk_sink`` (optional) receives incremental row-batch chunks
        while the turn executes (the streaming serving path); it never
        changes the returned response.
        """
        return self.pipeline.run(utterance, context, chunk_sink=chunk_sink)


class Session:
    """One user conversation: context, transcript and feedback."""

    def __init__(self, agent: ConversationAgent, session_id: int) -> None:
        self.agent = agent
        self.id = session_id
        self.context = ConversationContext()

    def open(self) -> str:
        """The agent's conversation-opening utterance (pattern A1.0.0)."""
        return self.agent.greeting()

    def ask(
        self,
        utterance: str,
        chunk_sink: Callable[[str, dict], None] | None = None,
    ) -> AgentResponse:
        """Process one user utterance and log the interaction."""
        if not utterance or not utterance.strip():
            raise EngineError("utterance must be non-empty")
        response = self.agent.respond(utterance, self.context, chunk_sink)
        self.context.record_turn(
            TurnRecord(
                user=utterance,
                agent=response.text,
                intent=response.intent,
                confidence=response.confidence,
                entities=dict(response.entities),
                outcome_kind=response.kind,
                trace=response.trace,
            )
        )
        self.agent.feedback_log.record(
            InteractionRecord(
                utterance=utterance,
                response=response.text,
                intent=response.intent,
                confidence=response.confidence,
                outcome_kind=response.kind,
                session_id=self.id,
            )
        )
        return response

    def thumbs_up(self) -> None:
        self.agent.feedback_log.mark_last_for_session(self.id, "up")

    def thumbs_down(self) -> None:
        self.agent.feedback_log.mark_last_for_session(self.id, "down")

    def transcript(self) -> list[TurnRecord]:
        return list(self.context.history)

    def last_trace(self) -> TurnTrace | None:
        """The per-stage trace of the most recent turn, if any."""
        last = self.context.last_turn()
        return last.trace if last is not None else None
