"""The closed set of agent response kinds.

Every :class:`~repro.engine.agent.AgentResponse` carries a ``kind`` that
tells callers (the serving layer, the evaluation harness, the CLI) what
the turn *was* — an answer, a clarification, a canned management reply.
Historically these were ad-hoc strings scattered through the engine;
they are now a documented, validated constant set so a typo can never
silently produce an unroutable response.

==================  =====================================================
Kind                Meaning
==================  =====================================================
ANSWER              KB rows found and rendered into a response template.
ANSWER_EMPTY        The query ran but returned no rows.
ANSWER_UNAVAILABLE  The intent has no executable query template.
ELICIT              Slot filling: the agent asked for a missing entity.
DISAMBIGUATE        A partial name matched several instances; the agent
                    asked which one was meant.
PROPOSAL            Entity-only (keyword) utterance: the agent proposed a
                    query pattern ("Would you like to see ...?").
MANAGEMENT          A conversation-management reply (greeting, help,
                    repeat, definition, goodbye, ...).
FALLBACK            The utterance was not understood.
==================  =====================================================
"""

from __future__ import annotations

from repro.errors import EngineError


class ResponseKind:
    """Namespace of the valid ``AgentResponse.kind`` values.

    The values stay plain strings (they are serialized into the ``/chat``
    JSON, the interaction log and the golden transcripts), but every
    response constructed by the engine is checked against :data:`ALL`.
    """

    ANSWER = "answer"
    ANSWER_EMPTY = "answer_empty"
    ANSWER_UNAVAILABLE = "answer_unavailable"
    ELICIT = "elicit"
    DISAMBIGUATE = "disambiguate"
    PROPOSAL = "proposal"
    MANAGEMENT = "management"
    FALLBACK = "fallback"

    #: Every valid kind.
    ALL = frozenset({
        ANSWER, ANSWER_EMPTY, ANSWER_UNAVAILABLE, ELICIT,
        DISAMBIGUATE, PROPOSAL, MANAGEMENT, FALLBACK,
    })

    #: Kinds that terminate an interaction with KB-derived content.
    ANSWER_KINDS = frozenset({ANSWER, ANSWER_EMPTY, ANSWER_UNAVAILABLE})

    #: Kinds that keep the interaction open waiting for the user.
    CONTINUATION_KINDS = frozenset({ELICIT, DISAMBIGUATE, PROPOSAL})


def validate_kind(kind: str) -> str:
    """Return ``kind`` unchanged, or raise :class:`EngineError`."""
    if kind not in ResponseKind.ALL:
        raise EngineError(
            f"unknown response kind {kind!r}; expected one of "
            f"{sorted(ResponseKind.ALL)}"
        )
    return kind
