"""Interaction-log persistence and log-driven improvement.

§9 (lessons learned) names the next step for the system: "learning from
the system usage logs, and using that as a feedback to further improve
the system".  This module implements that loop:

* :func:`save_log` / :func:`load_log` persist the interaction log as
  JSON lines (the raw material of the §7 analyses),
* :func:`mine_negative_interactions` clusters the negatively-marked
  utterances for SME review,
* :func:`harvest_training_candidates` turns reviewed log entries into
  labelled training examples and folds them into a conversation space —
  closing exactly the loop the paper describes for "side effects"
  (§6.3: "Through such user testing, synonyms and alternative phrasings
  are identified and added to the training data").
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from repro.bootstrap.space import ConversationSpace
from repro.engine.feedback import FeedbackLog, InteractionRecord
from repro.errors import EngineError


def save_log(log: FeedbackLog, path: str | Path) -> int:
    """Write the log as JSON lines; returns the number of records.

    The write is atomic (temp file in the same directory, then
    ``os.replace``): a crash mid-write leaves the previous log intact
    instead of a truncated file — required now that the serving layer
    flushes the log on shutdown.
    """
    path = Path(path)
    records = log.records()
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps({
                    "utterance": record.utterance,
                    "response": record.response,
                    "intent": record.intent,
                    "confidence": record.confidence,
                    "outcome_kind": record.outcome_kind,
                    "feedback": record.feedback,
                    "session_id": record.session_id,
                    "sme_label": record.sme_label,
                }) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(records)


def load_log(path: str | Path) -> FeedbackLog:
    """Read a JSON-lines log written by :func:`save_log`."""
    log = FeedbackLog()
    try:
        with open(path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise EngineError(
                        f"{path}: line {line_number} is not valid JSON"
                    ) from exc
                log.record(InteractionRecord(
                    utterance=data["utterance"],
                    response=data.get("response", ""),
                    intent=data.get("intent"),
                    confidence=data.get("confidence", 0.0),
                    outcome_kind=data.get("outcome_kind", ""),
                    feedback=data.get("feedback"),
                    session_id=data.get("session_id", 0),
                    sme_label=data.get("sme_label"),
                ))
    except FileNotFoundError as exc:
        raise EngineError(f"log file not found: {path}") from exc
    return log


@dataclass
class NegativeCluster:
    """Negatively-marked interactions grouped by detected intent."""

    intent: str
    utterances: list[str] = field(default_factory=list)
    outcome_kinds: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.utterances)


def mine_negative_interactions(
    log: FeedbackLog, include_sme: bool = True
) -> list[NegativeCluster]:
    """Group negative interactions by intent, largest cluster first.

    These clusters are what SMEs review to decide which phrasings and
    synonyms the training data is missing.
    """
    clusters: dict[str, NegativeCluster] = {}
    for record in log:
        negative = record.feedback == "down" or (
            include_sme and record.sme_label == "negative"
        )
        if not negative:
            continue
        key = record.intent or "<none>"
        cluster = clusters.setdefault(key, NegativeCluster(intent=key))
        cluster.utterances.append(record.utterance)
        cluster.outcome_kinds.append(record.outcome_kind)
    return sorted(clusters.values(), key=lambda c: (-c.size, c.intent))


def harvest_training_candidates(
    log: FeedbackLog,
    space: ConversationSpace,
    min_confidence: float = 0.6,
) -> list[tuple[str, str]]:
    """Propose (utterance, intent) training candidates from the log.

    Positive interactions (not marked negative, answered, confidently
    classified) are trustworthy self-training material: the user got an
    answer for that intent and did not complain.  Returns candidates not
    already in the space's training set; feeding them to
    :meth:`ConversationSpace.add_training_examples` closes the loop.
    """
    existing = {
        (e.utterance.lower(), e.intent) for e in space.training_examples
    }
    known_intents = {i.name for i in space.intents}
    candidates: list[tuple[str, str]] = []
    seen: set[tuple[str, str]] = set()
    for record in log:
        if record.feedback == "down" or record.sme_label == "negative":
            continue
        if record.outcome_kind != "answer":
            continue
        if record.intent is None or record.intent not in known_intents:
            continue
        if record.confidence < min_confidence:
            continue
        key = (record.utterance.lower(), record.intent)
        if key in existing or key in seen:
            continue
        seen.add(key)
        candidates.append((record.utterance, record.intent))
    return candidates


def retrain_from_log(
    log: FeedbackLog,
    space: ConversationSpace,
    min_confidence: float = 0.6,
    limit: int | None = None,
) -> int:
    """Harvest candidates and fold them into the space's training set.

    Returns how many examples were added.  The caller re-trains the
    classifier (e.g. rebuilds the agent) afterwards.
    """
    candidates = harvest_training_candidates(log, space, min_confidence)
    if limit is not None:
        candidates = candidates[:limit]
    for utterance, intent in candidates:
        space.add_training_examples(intent, [utterance])
    return len(candidates)

