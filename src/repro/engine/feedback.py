"""User feedback capture (thumbs up / thumbs down).

§7.2: success is measured from the feedback buttons — "we consider the
negative feedback more credible" — so every interaction is logged with
an optional feedback mark, and the evaluation harness computes success
rates from the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class InteractionRecord:
    """One logged user interaction."""

    utterance: str
    response: str
    intent: str | None
    confidence: float
    outcome_kind: str
    feedback: str | None = None  # "up", "down" or None
    session_id: int = 0
    sme_label: str | None = None  # "positive"/"negative" when SME-reviewed


class FeedbackLog:
    """An append-only log of interactions with feedback marks."""

    def __init__(self) -> None:
        self._records: list[InteractionRecord] = []

    def record(self, record: InteractionRecord) -> InteractionRecord:
        self._records.append(record)
        return record

    def mark_last(self, feedback: str) -> None:
        """Attach thumbs feedback to the most recent interaction."""
        if feedback not in ("up", "down"):
            raise ValueError("feedback must be 'up' or 'down'")
        if not self._records:
            raise ValueError("no interaction to mark")
        self._records[-1].feedback = feedback

    def records(self) -> list[InteractionRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[InteractionRecord]:
        return iter(self._records)

    # -- aggregates -----------------------------------------------------------

    def negative_count(self) -> int:
        return sum(1 for r in self._records if r.feedback == "down")

    def success_rate(self) -> float:
        """Equation 1: (interactions - negative) / interactions."""
        if not self._records:
            return 1.0
        return 1.0 - self.negative_count() / len(self._records)

    def per_intent(self) -> dict[str, tuple[int, int]]:
        """intent -> (total interactions, negative interactions)."""
        out: dict[str, list[int]] = {}
        for record in self._records:
            key = record.intent or "<none>"
            bucket = out.setdefault(key, [0, 0])
            bucket[0] += 1
            if record.feedback == "down":
                bucket[1] += 1
        return {k: (v[0], v[1]) for k, v in out.items()}
