"""User feedback capture (thumbs up / thumbs down).

§7.2: success is measured from the feedback buttons — "we consider the
negative feedback more credible" — so every interaction is logged with
an optional feedback mark, and the evaluation harness computes success
rates from the log.

The log is shared by every concurrent session of an agent, so all
mutation and aggregation is guarded by a lock: concurrent sessions can
not interleave within an append or drop records, and
:meth:`mark_last_for_session` attaches feedback to *that conversation's*
latest interaction even when other sessions have logged since.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator


@dataclass
class InteractionRecord:
    """One logged user interaction."""

    utterance: str
    response: str
    intent: str | None
    confidence: float
    outcome_kind: str
    feedback: str | None = None  # "up", "down" or None
    session_id: int = 0
    sme_label: str | None = None  # "positive"/"negative" when SME-reviewed


def _check_feedback(feedback: str) -> None:
    if feedback not in ("up", "down"):
        raise ValueError("feedback must be 'up' or 'down'")


class FeedbackLog:
    """A thread-safe append-only log of interactions with feedback marks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[InteractionRecord] = []

    def record(self, record: InteractionRecord) -> InteractionRecord:
        with self._lock:
            self._records.append(record)
        return record

    def mark_last(self, feedback: str) -> None:
        """Attach thumbs feedback to the most recent interaction."""
        _check_feedback(feedback)
        with self._lock:
            if not self._records:
                raise ValueError("no interaction to mark")
            self._records[-1].feedback = feedback

    def mark_last_for_session(self, session_id: int, feedback: str) -> None:
        """Attach feedback to ``session_id``'s most recent interaction.

        Under concurrent sessions the global tail may belong to another
        conversation, so the thumbs buttons must address the session's
        own latest turn.
        """
        _check_feedback(feedback)
        with self._lock:
            for record in reversed(self._records):
                if record.session_id == session_id:
                    record.feedback = feedback
                    return
        raise ValueError(f"no interaction to mark for session {session_id}")

    def records(self) -> list[InteractionRecord]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[InteractionRecord]:
        return iter(self.records())

    # -- aggregates -----------------------------------------------------------

    def negative_count(self) -> int:
        with self._lock:
            return sum(1 for r in self._records if r.feedback == "down")

    def success_rate(self) -> float:
        """Equation 1: (interactions - negative) / interactions."""
        with self._lock:
            if not self._records:
                return 1.0
            negative = sum(1 for r in self._records if r.feedback == "down")
            return 1.0 - negative / len(self._records)

    def per_intent(self) -> dict[str, tuple[int, int]]:
        """intent -> (total interactions, negative interactions)."""
        out: dict[str, list[int]] = {}
        with self._lock:
            for record in self._records:
                key = record.intent or "<none>"
                bucket = out.setdefault(key, [0, 0])
                bucket[0] += 1
                if record.feedback == "down":
                    bucket[1] += 1
        return {k: (v[0], v[1]) for k, v in out.items()}
