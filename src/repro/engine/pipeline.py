"""The online turn pipeline: typed state, stages, and per-turn tracing.

Figure 1(b) describes the online process as an ordered pipeline —
intent classification → entity recognition → dialogue-tree traversal →
query execution → response generation.  This module makes that pipeline
first-class: a :class:`TurnState` flows through an ordered list of
:class:`Stage` objects, each of which either *passes* (possibly after
updating the state) or produces the final
:class:`AgentResponse` for the turn.  The concrete stages live in
:mod:`repro.engine.stages`; :class:`~repro.engine.agent.ConversationAgent`
is reduced to construction plus pipeline assembly.

Every turn produces a :class:`TurnTrace` recording, per stage, what it
decided and how long it took — the observability backbone for the
serving layer's per-stage histograms (``GET /metrics``), the
``/chat`` ``debug`` flag, ``python -m repro chat --trace``, and the
evaluation harness's where-do-turns-die reports.

Stage timing flows through an injectable ``clock`` (the lint pass's
L002 rule), so tests can drive it deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dialogue.context import ConversationContext
from repro.dialogue.tree import NodeOutcome
from repro.engine.kinds import validate_kind
from repro.engine.recognizer import RecognitionResult
from repro.errors import EngineError

#: Stage-trace outcome labels.
PASS, UPDATE, FINAL = "pass", "update", "final"

#: A per-turn incremental-output callback: ``sink(kind, data)`` receives
#: chunks (e.g. ``("rows", {"rows": [...]})``) while the turn is still
#: executing.  The serving layer's streaming endpoint installs one; the
#: sink must be cheap and must never raise (a streaming transport error
#: must not abort the committed turn).
ChunkSink = Callable[[str, dict], None]


@dataclass
class AgentResponse:
    """One agent turn.

    ``kind`` is validated against the closed
    :class:`~repro.engine.kinds.ResponseKind` set at construction time.
    ``trace`` is attached by the pipeline and excluded from equality so
    two behaviourally identical turns compare equal regardless of
    timing.
    """

    text: str
    intent: str | None
    confidence: float
    kind: str
    entities: dict[str, str] = field(default_factory=dict)
    rows: list[tuple] = field(default_factory=list)
    sql: str | None = None
    elicit_concept: str | None = None
    trace: "TurnTrace | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        validate_kind(self.kind)


@dataclass
class StageTrace:
    """What one stage did during one turn."""

    stage: str
    outcome: str  # PASS, UPDATE or FINAL
    duration: float  # seconds
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "outcome": self.outcome,
            "duration": self.duration,
            "detail": dict(self.detail),
        }


@dataclass
class TurnTrace:
    """The full per-stage record of one turn."""

    utterance: str
    stages: list[StageTrace] = field(default_factory=list)
    duration: float = 0.0
    deciding_stage: str | None = None
    kind: str | None = None
    intent: str | None = None
    confidence: float = 0.0
    classifier_intent: str | None = None
    classifier_confidence: float = 0.0
    entity_hits: int = 0
    concept_hits: int = 0
    sql: str | None = None

    def stage_named(self, name: str) -> StageTrace | None:
        for stage in self.stages:
            if stage.stage == name:
                return stage
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "utterance": self.utterance,
            "duration": self.duration,
            "deciding_stage": self.deciding_stage,
            "kind": self.kind,
            "intent": self.intent,
            "confidence": self.confidence,
            "classifier_intent": self.classifier_intent,
            "classifier_confidence": self.classifier_confidence,
            "entity_hits": self.entity_hits,
            "concept_hits": self.concept_hits,
            "sql": self.sql,
            "stages": [stage.to_dict() for stage in self.stages],
        }


@dataclass
class TurnState:
    """Everything a stage may read or refine while processing one turn.

    ``intent``/``confidence`` start as the raw classifier output and are
    refined by the context stages; ``recognition`` is the recognizer's
    result (stages may resolve ambiguities into it); ``outcome`` is set
    by the tree-traversal stage for the acting stages to consume.
    """

    utterance: str
    context: ConversationContext
    intent: str | None = None
    confidence: float = 0.0
    recognition: RecognitionResult = field(default_factory=RecognitionResult)
    outcome: NodeOutcome | None = None
    detail: dict[str, Any] = field(default_factory=dict)
    #: Streaming hook: when set, stages may emit incremental chunks
    #: (row batches from the answer stage) through :meth:`emit_chunk`
    #: while the turn runs.  ``None`` on every non-streaming turn, so
    #: replayed (recovery) and golden-transcript turns behave
    #: identically with or without a listener.
    chunk_sink: "ChunkSink | None" = field(
        default=None, repr=False, compare=False
    )

    def annotate(self, **items: Any) -> None:
        """Attach trace detail for the currently running stage."""
        self.detail.update(items)

    def emit_chunk(self, kind: str, data: dict) -> None:
        """Send one incremental chunk to the streaming listener, if any.

        Sink errors are deliberately not caught here: the serving layer
        wraps its sink so a broken client can never raise into the turn.
        """
        if self.chunk_sink is not None:
            self.chunk_sink(kind, data)

    def pop_detail(self) -> dict[str, Any]:
        detail, self.detail = self.detail, {}
        return detail

    def adopt(self, intent: str | None, confidence: float) -> None:
        """Replace the working classification."""
        self.intent = intent
        self.confidence = confidence

    def _fingerprint(self) -> tuple:
        return (
            self.intent,
            self.confidence,
            len(self.recognition.values),
            len(self.recognition.concepts),
            len(self.recognition.ambiguous),
            self.outcome is not None,
        )


class Stage:
    """One step of the turn pipeline.

    Subclasses set :attr:`name` and implement :meth:`run`, returning
    either ``None`` (pass — possibly after refining the state) or the
    final :class:`AgentResponse` for the turn.  Stages are constructed
    once per agent and must stay stateless across turns: anything
    per-turn belongs on the :class:`TurnState`.
    """

    name: str = "stage"

    def run(self, state: TurnState) -> AgentResponse | None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.name}>"


class TurnPipeline:
    """An ordered list of stages with per-stage tracing.

    The final stage must be total (always return a response); the
    pipeline raises :class:`EngineError` if every stage passes, rather
    than inventing a response of its own.
    """

    def __init__(
        self,
        stages: list[Stage],
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if not stages:
            raise EngineError("a turn pipeline needs at least one stage")
        self.stages = list(stages)
        self._clock = clock

    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]

    def run(
        self,
        utterance: str,
        context: ConversationContext,
        chunk_sink: "ChunkSink | None" = None,
    ) -> AgentResponse:
        """Process one utterance; the returned response carries its trace.

        ``chunk_sink`` (optional) receives incremental chunks — row
        batches from the answer stage — while the turn executes; the
        final response is unchanged by its presence.
        """
        state = TurnState(
            utterance=utterance, context=context, chunk_sink=chunk_sink
        )
        trace = TurnTrace(utterance=utterance)
        started = self._clock()
        response: AgentResponse | None = None
        for stage in self.stages:
            before = state._fingerprint()
            stage_started = self._clock()
            response = stage.run(state)
            elapsed = self._clock() - stage_started
            if response is not None:
                outcome = FINAL
            elif state._fingerprint() != before or state.detail:
                outcome = UPDATE
            else:
                outcome = PASS
            trace.stages.append(
                StageTrace(stage.name, outcome, elapsed, state.pop_detail())
            )
            if response is not None:
                trace.deciding_stage = stage.name
                break
        if response is None:
            raise EngineError(
                "turn pipeline exhausted its stages without a response "
                f"(stages: {self.stage_names()})"
            )
        trace.duration = self._clock() - started
        trace.kind = response.kind
        trace.intent = response.intent
        trace.confidence = response.confidence
        trace.entity_hits = len(state.recognition.values)
        trace.concept_hits = len(state.recognition.concepts)
        trace.sql = response.sql
        classify = trace.stage_named("classify")
        if classify is not None:
            trace.classifier_intent = classify.detail.get("intent")
            trace.classifier_confidence = classify.detail.get("confidence", 0.0)
        response.trace = trace
        return response


def render_trace(trace: TurnTrace) -> str:
    """A compact, human-readable rendering of one turn trace (the
    ``python -m repro chat --trace`` output)."""
    lines = [
        f"turn: {trace.duration * 1000:.2f} ms, decided by "
        f"[{trace.deciding_stage}] -> kind={trace.kind} "
        f"intent={trace.intent!r} confidence={trace.confidence:.2f}"
    ]
    lines.append(
        f"  classifier: {trace.classifier_intent!r} "
        f"({trace.classifier_confidence:.2f}); recognizer: "
        f"{trace.entity_hits} entities, {trace.concept_hits} concepts"
    )
    for stage in trace.stages:
        marker = {PASS: " ", UPDATE: "~", FINAL: "*"}.get(stage.outcome, "?")
        detail = ""
        if stage.detail:
            parts = ", ".join(f"{k}={v!r}" for k, v in stage.detail.items())
            detail = f"  ({parts})"
        lines.append(
            f"  {marker} {stage.stage:<20} {stage.outcome:<7}"
            f"{stage.duration * 1000:9.3f} ms{detail}"
        )
    if trace.sql:
        lines.append(f"  sql: {trace.sql}")
    return "\n".join(lines)
