"""The MDX relational schema.

§6.1 reports that the generated MDX ontology "consists of 59 concepts,
178 properties, and 58 relationships ... includ[ing] functional,
inheritance, and union".  This schema reaches the same scale with the
same structural features:

* **union** semantics — ``risk`` is partitioned by ``contra_indication``
  and ``black_box_warning``; ``dose_adjustment`` by ``renal_adjustment``
  and ``hepatic_adjustment`` (children's PKs are FKs to the parent and
  the generator keeps them disjoint + covering),
* **inheritance** — ``drug_interaction`` has children ``drug_drug_``,
  ``drug_food_`` and ``drug_lab_interaction`` but also keeps
  uncategorized rows, so it is inferred as plain isA, not union,
* **functional** relationships — every plain foreign key,
* **many-to-many** junction tables — ``treats``, ``off_label_treats``,
  ``prevents``, ``causes_finding``, ``presents_with``.

Several descriptive columns are optional (nullable) and sparsely
populated, as in a real curated drug reference.
"""

from __future__ import annotations

from repro.kb.database import Database
from repro.kb.schema import Column, ForeignKey, TableSchema
from repro.kb.types import DataType

_T = DataType.TEXT
_I = DataType.INTEGER
_F = DataType.FLOAT
_B = DataType.BOOLEAN


def _table(
    db: Database,
    name: str,
    columns: list[tuple],
    pk: str | None = None,
    fks: list[tuple[str, str, str]] | None = None,
) -> None:
    db.create_table(
        TableSchema(
            name=name,
            columns=[
                Column(col[0], col[1], nullable=(len(col) < 3 or col[2]))
                for col in columns
            ],
            primary_key=pk,
            foreign_keys=[ForeignKey(*fk) for fk in (fks or [])],
        )
    )


def create_mdx_schema(db: Database | None = None) -> Database:
    """Create (or extend) a database with the full MDX schema."""
    db = db or Database("mdx")

    # -- reference / category tables -------------------------------------
    _table(db, "drug_class", [("class_id", _I, False), ("name", _T), ("description", _T), ("atc_prefix", _T)], pk="class_id")
    _table(db, "therapeutic_class", [("tc_id", _I, False), ("name", _T), ("description", _T), ("code", _T)], pk="tc_id")
    _table(db, "manufacturer", [("mfr_id", _I, False), ("name", _T), ("country", _T), ("founded_year", _I)], pk="mfr_id")
    _table(db, "age_group", [("age_group_id", _I, False), ("name", _T), ("description", _T), ("min_age_years", _F), ("max_age_years", _F)], pk="age_group_id")
    _table(db, "route", [("route_id", _I, False), ("name", _T), ("description", _T), ("abbreviation", _T)], pk="route_id")
    _table(db, "severity", [("severity_id", _I, False), ("name", _T), ("rank", _I), ("description", _T)], pk="severity_id")
    _table(db, "efficacy", [("efficacy_id", _I, False), ("name", _T), ("description", _T), ("rank", _I)], pk="efficacy_id")
    _table(db, "pregnancy_category", [("pc_id", _I, False), ("name", _T), ("description", _T), ("source", _T)], pk="pc_id")
    _table(db, "iv_solution", [("solution_id", _I, False), ("name", _T), ("concentration", _T), ("osmolarity", _T), ("ph", _F)], pk="solution_id")
    _table(db, "specimen_type", [("specimen_id", _I, False), ("name", _T), ("description", _T), ("collection_note", _T)], pk="specimen_id")
    _table(db, "lab_test", [("lab_test_id", _I, False), ("name", _T), ("units", _T), ("reference_range", _T), ("specimen_id", _I)], pk="lab_test_id", fks=[("specimen_id", "specimen_type", "specimen_id")])
    _table(db, "food_item", [("food_id", _I, False), ("name", _T), ("category", _T), ("interaction_note", _T)], pk="food_id")
    _table(db, "monitor_parameter", [("param_id", _I, False), ("name", _T), ("description", _T), ("units", _T)], pk="param_id")
    _table(db, "allergen", [("allergen_id", _I, False), ("name", _T), ("cross_reactivity", _T), ("category", _T)], pk="allergen_id")
    _table(db, "storage_condition", [("storage_id", _I, False), ("name", _T), ("instructions", _T), ("temperature_range", _T)], pk="storage_id")
    _table(db, "dosage_form", [("form_id", _I, False), ("name", _T), ("description", _T), ("route_note", _T)], pk="form_id")
    _table(db, "frequency_schedule", [("freq_id", _I, False), ("name", _T), ("meaning", _T), ("times_per_day", _F)], pk="freq_id")
    _table(db, "dose_unit", [("unit_id", _I, False), ("name", _T), ("description", _T), ("unit_system", _T)], pk="unit_id")
    _table(db, "schedule_class", [("schedule_id", _I, False), ("name", _T), ("description", _T), ("refill_limit", _T)], pk="schedule_id")
    _table(db, "evidence_strength", [("strength_id", _I, False), ("name", _T), ("description", _T), ("rank", _I)], pk="strength_id")
    _table(db, "documentation_level", [("doc_level_id", _I, False), ("name", _T), ("description", _T), ("rank", _I)], pk="doc_level_id")
    _table(db, "reference_source", [("source_id", _I, False), ("name", _T), ("publisher", _T), ("url", _T)], pk="source_id")
    _table(db, "price_tier", [("tier_id", _I, False), ("name", _T), ("description", _T), ("copay_note", _T)], pk="tier_id")
    _table(db, "overdose_symptom", [("symptom_id", _I, False), ("name", _T), ("description", _T), ("system_affected", _T)], pk="symptom_id")
    _table(db, "antidote", [("antidote_id", _I, False), ("name", _T), ("used_for", _T), ("route_note", _T)], pk="antidote_id")
    _table(db, "guideline", [("guideline_id", _I, False), ("name", _T), ("organization", _T), ("year", _I), ("url", _T)], pk="guideline_id")

    # -- core entities -----------------------------------------------------
    _table(
        db,
        "drug",
        [
            ("drug_id", _I, False), ("name", _T, False), ("base_salt", _T),
            ("description", _T), ("atc_code", _T), ("pronunciation", _T),
            ("class_id", _I), ("tc_id", _I),
            ("mfr_id", _I), ("pc_id", _I), ("schedule_id", _I), ("tier_id", _I),
        ],
        pk="drug_id",
        fks=[
            ("class_id", "drug_class", "class_id"),
            ("tc_id", "therapeutic_class", "tc_id"),
            ("mfr_id", "manufacturer", "mfr_id"),
            ("pc_id", "pregnancy_category", "pc_id"),
            ("schedule_id", "schedule_class", "schedule_id"),
            ("tier_id", "price_tier", "tier_id"),
        ],
    )
    _table(db, "indication", [("indication_id", _I, False), ("name", _T, False), ("icd_code", _T), ("description", _T), ("category", _T), ("chronicity", _T)], pk="indication_id")
    _table(db, "finding", [("finding_id", _I, False), ("name", _T, False), ("description", _T), ("loinc_code", _T)], pk="finding_id")
    _table(db, "brand", [("brand_id", _I, False), ("drug_id", _I, False), ("name", _T), ("country", _T), ("launched_year", _I)], pk="brand_id", fks=[("drug_id", "drug", "drug_id")])
    _table(
        db,
        "strength_formulation",
        [("formulation_id", _I, False), ("drug_id", _I, False), ("form_id", _I), ("strength", _F), ("unit_id", _I), ("package_size", _T), ("shelf_life", _T)],
        pk="formulation_id",
        fks=[("drug_id", "drug", "drug_id"), ("form_id", "dosage_form", "form_id"), ("unit_id", "dose_unit", "unit_id")],
    )

    # -- drug-dependent information tables -------------------------------------
    _table(db, "precaution", [("precaution_id", _I, False), ("drug_id", _I, False), ("description", _T), ("population", _T), ("source_note", _T)], pk="precaution_id", fks=[("drug_id", "drug", "drug_id")])
    _table(
        db,
        "adverse_effect",
        [("ae_id", _I, False), ("drug_id", _I, False), ("name", _T), ("frequency", _T), ("onset", _T), ("management_note", _T), ("severity_id", _I)],
        pk="ae_id",
        fks=[("drug_id", "drug", "drug_id"), ("severity_id", "severity", "severity_id")],
    )
    _table(db, "risk", [("risk_id", _I, False), ("drug_id", _I, False), ("name", _T), ("description", _T), ("evidence_note", _T)], pk="risk_id", fks=[("drug_id", "drug", "drug_id")])
    _table(db, "contra_indication", [("risk_id", _I, False), ("note", _T), ("severity_note", _T)], pk="risk_id", fks=[("risk_id", "risk", "risk_id")])
    _table(db, "black_box_warning", [("risk_id", _I, False), ("warning_text", _T), ("issued_year", _I)], pk="risk_id", fks=[("risk_id", "risk", "risk_id")])
    _table(
        db,
        "dosage",
        [
            ("dosage_id", _I, False), ("drug_id", _I, False),
            ("indication_id", _I), ("age_group_id", _I), ("route_id", _I),
            ("description", _T), ("amount", _F), ("max_daily", _F),
            ("duration", _T), ("unit_id", _I), ("freq_id", _I),
        ],
        pk="dosage_id",
        fks=[
            ("drug_id", "drug", "drug_id"),
            ("indication_id", "indication", "indication_id"),
            ("age_group_id", "age_group", "age_group_id"),
            ("route_id", "route", "route_id"),
            ("unit_id", "dose_unit", "unit_id"),
            ("freq_id", "frequency_schedule", "freq_id"),
        ],
    )
    _table(db, "dose_adjustment", [("adjustment_id", _I, False), ("drug_id", _I, False), ("description", _T)], pk="adjustment_id", fks=[("drug_id", "drug", "drug_id")])
    _table(db, "renal_adjustment", [("adjustment_id", _I, False), ("crcl_threshold", _T), ("recommendation", _T), ("dialysis_note", _T)], pk="adjustment_id", fks=[("adjustment_id", "dose_adjustment", "adjustment_id")])
    _table(db, "hepatic_adjustment", [("adjustment_id", _I, False), ("child_pugh_class", _T), ("recommendation", _T), ("monitoring_note", _T)], pk="adjustment_id", fks=[("adjustment_id", "dose_adjustment", "adjustment_id")])
    _table(
        db,
        "drug_interaction",
        [("interaction_id", _I, False), ("drug_id", _I, False), ("name", _T), ("description", _T), ("onset", _T), ("clinical_management", _T), ("severity_id", _I), ("doc_level_id", _I)],
        pk="interaction_id",
        fks=[
            ("drug_id", "drug", "drug_id"),
            ("severity_id", "severity", "severity_id"),
            ("doc_level_id", "documentation_level", "doc_level_id"),
        ],
    )
    _table(
        db,
        "drug_drug_interaction",
        [("interaction_id", _I, False), ("interacting_drug_id", _I), ("mechanism", _T), ("effect_direction", _T)],
        pk="interaction_id",
        fks=[("interaction_id", "drug_interaction", "interaction_id"), ("interacting_drug_id", "drug", "drug_id")],
    )
    _table(
        db,
        "drug_food_interaction",
        [("interaction_id", _I, False), ("food_id", _I), ("mechanism", _T), ("timing_advice", _T)],
        pk="interaction_id",
        fks=[("interaction_id", "drug_interaction", "interaction_id"), ("food_id", "food_item", "food_id")],
    )
    _table(
        db,
        "drug_lab_interaction",
        [("interaction_id", _I, False), ("lab_test_id", _I), ("effect", _T), ("magnitude", _T)],
        pk="interaction_id",
        fks=[("interaction_id", "drug_interaction", "interaction_id"), ("lab_test_id", "lab_test", "lab_test_id")],
    )
    _table(
        db,
        "iv_compatibility",
        [("compat_id", _I, False), ("drug_id", _I, False), ("solution_id", _I), ("compatibility", _T), ("notes", _T), ("study_reference", _T)],
        pk="compat_id",
        fks=[("drug_id", "drug", "drug_id"), ("solution_id", "iv_solution", "solution_id")],
    )
    _table(
        db,
        "administration",
        [("admin_id", _I, False), ("drug_id", _I, False), ("route_id", _I), ("instructions", _T), ("preparation_note", _T)],
        pk="admin_id",
        fks=[("drug_id", "drug", "drug_id"), ("route_id", "route", "route_id")],
    )
    _table(db, "regulatory_status", [("status_id", _I, False), ("drug_id", _I, False), ("status", _T), ("approval_year", _I), ("region", _T), ("review_priority", _T)], pk="status_id", fks=[("drug_id", "drug", "drug_id")])
    _table(
        db,
        "pharmacokinetics",
        [("pk_id", _I, False), ("drug_id", _I, False), ("absorption", _T), ("metabolism", _T), ("half_life", _T), ("excretion", _T), ("protein_binding", _T), ("bioavailability", _T)],
        pk="pk_id",
        fks=[("drug_id", "drug", "drug_id")],
    )
    _table(
        db,
        "toxicology",
        [("tox_id", _I, False), ("drug_id", _I, False), ("symptom_id", _I), ("management", _T), ("onset_note", _T), ("antidote_id", _I)],
        pk="tox_id",
        fks=[
            ("drug_id", "drug", "drug_id"),
            ("symptom_id", "overdose_symptom", "symptom_id"),
            ("antidote_id", "antidote", "antidote_id"),
        ],
    )
    _table(
        db,
        "monitoring",
        [("monitoring_id", _I, False), ("drug_id", _I, False), ("param_id", _I), ("frequency_note", _T), ("target_range", _T)],
        pk="monitoring_id",
        fks=[("drug_id", "drug", "drug_id"), ("param_id", "monitor_parameter", "param_id")],
    )
    _table(
        db,
        "storage",
        [("storage_rec_id", _I, False), ("drug_id", _I, False), ("storage_id", _I), ("note", _T), ("shelf_life", _T)],
        pk="storage_rec_id",
        fks=[("drug_id", "drug", "drug_id"), ("storage_id", "storage_condition", "storage_id")],
    )
    _table(db, "mechanism_of_action", [("moa_id", _I, False), ("drug_id", _I, False), ("description", _T), ("target", _T), ("onset_of_action", _T)], pk="moa_id", fks=[("drug_id", "drug", "drug_id")])
    _table(db, "patient_education", [("edu_id", _I, False), ("drug_id", _I, False), ("instructions", _T), ("missed_dose_advice", _T)], pk="edu_id", fks=[("drug_id", "drug", "drug_id")])
    _table(
        db,
        "allergy_cross_sensitivity",
        [("cross_id", _I, False), ("drug_id", _I, False), ("allergen_id", _I), ("note", _T), ("alternative_note", _T)],
        pk="cross_id",
        fks=[("drug_id", "drug", "drug_id"), ("allergen_id", "allergen", "allergen_id")],
    )
    _table(db, "dialysis_guidance", [("dialysis_id", _I, False), ("drug_id", _I, False), ("dialyzable", _B), ("note", _T), ("method_note", _T)], pk="dialysis_id", fks=[("drug_id", "drug", "drug_id")])
    _table(
        db,
        "clinical_evidence",
        [
            ("evidence_id", _I, False), ("drug_id", _I, False),
            ("indication_id", _I), ("efficacy_id", _I), ("strength_id", _I),
            ("source_id", _I), ("summary", _T), ("population_note", _T),
        ],
        pk="evidence_id",
        fks=[
            ("drug_id", "drug", "drug_id"),
            ("indication_id", "indication", "indication_id"),
            ("efficacy_id", "efficacy", "efficacy_id"),
            ("strength_id", "evidence_strength", "strength_id"),
            ("source_id", "reference_source", "source_id"),
        ],
    )
    _table(
        db,
        "clinical_trial",
        [("trial_id", _I, False), ("drug_id", _I, False), ("indication_id", _I), ("phase", _T), ("outcome", _T), ("enrollment", _I), ("comparator", _T)],
        pk="trial_id",
        fks=[("drug_id", "drug", "drug_id"), ("indication_id", "indication", "indication_id")],
    )
    _table(db, "warning_label", [("label_id", _I, False), ("drug_id", _I, False), ("text", _T), ("region", _T), ("language", _T)], pk="label_id", fks=[("drug_id", "drug", "drug_id")])
    _table(db, "lactation_risk", [("lact_id", _I, False), ("drug_id", _I, False), ("risk_level", _T), ("note", _T), ("relative_infant_dose", _T)], pk="lact_id", fks=[("drug_id", "drug", "drug_id")])
    _table(
        db,
        "guideline_recommendation",
        [("rec_id", _I, False), ("guideline_id", _I, False), ("drug_id", _I), ("indication_id", _I), ("recommendation", _T), ("strength_of_recommendation", _T)],
        pk="rec_id",
        fks=[
            ("guideline_id", "guideline", "guideline_id"),
            ("drug_id", "drug", "drug_id"),
            ("indication_id", "indication", "indication_id"),
        ],
    )

    # -- junction (many-to-many) tables ---------------------------------------
    _table(db, "treats", [("drug_id", _I, False), ("indication_id", _I, False)], fks=[("drug_id", "drug", "drug_id"), ("indication_id", "indication", "indication_id")])
    _table(db, "off_label_treats", [("drug_id", _I, False), ("indication_id", _I, False)], fks=[("drug_id", "drug", "drug_id"), ("indication_id", "indication", "indication_id")])
    _table(db, "prevents", [("drug_id", _I, False), ("indication_id", _I, False)], fks=[("drug_id", "drug", "drug_id"), ("indication_id", "indication", "indication_id")])
    _table(db, "causes_finding", [("drug_id", _I, False), ("finding_id", _I, False)], fks=[("drug_id", "drug", "drug_id"), ("finding_id", "finding", "finding_id")])
    _table(db, "presents_with", [("indication_id", _I, False), ("finding_id", _I, False)], fks=[("indication_id", "indication", "indication_id"), ("finding_id", "finding", "finding_id")])
    return db
