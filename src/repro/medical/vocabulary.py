"""Public medical vocabulary for the synthetic MDX knowledge base.

All names are public-domain drug, brand and condition names (the kind a
real drug reference covers); the *combinations* generated from them are
synthetic.  Each drug entry is ``(generic name, brand name, drug class,
base-with-salt description or None)``; the base-with-salt descriptions
reproduce the §6.1 synonym behaviour ("Cyclogel also has a brand name
Cylate and a base and salt description Cyclopentolate Hydrochloride").
"""

from __future__ import annotations

#: (generic, brand, class, base_with_salt or None)
DRUGS: list[tuple[str, str, str, str | None]] = [
    # Analgesics / anti-inflammatories
    ("Aspirin", "Bayer", "NSAID", "Acetylsalicylic Acid"),
    ("Ibuprofen", "Advil", "NSAID", None),
    ("Acetaminophen", "Tylenol", "Analgesic", None),
    ("Naproxen", "Aleve", "NSAID", "Naproxen Sodium"),
    ("Celecoxib", "Celebrex", "NSAID", None),
    ("Diclofenac", "Voltaren", "NSAID", "Diclofenac Sodium"),
    ("Indomethacin", "Indocin", "NSAID", None),
    ("Meloxicam", "Mobic", "NSAID", None),
    ("Ketorolac", "Toradol", "NSAID", "Ketorolac Tromethamine"),
    ("Tramadol", "Ultram", "Opioid Analgesic", "Tramadol Hydrochloride"),
    ("Morphine", "MS Contin", "Opioid Analgesic", "Morphine Sulfate"),
    ("Oxycodone", "OxyContin", "Opioid Analgesic", "Oxycodone Hydrochloride"),
    ("Codeine", "Tuzistra", "Opioid Analgesic", "Codeine Phosphate"),
    ("Hydromorphone", "Dilaudid", "Opioid Analgesic", "Hydromorphone Hydrochloride"),
    # Antibiotics / anti-infectives
    ("Amoxicillin", "Amoxil", "Penicillin Antibiotic", None),
    ("Azithromycin", "Zithromax", "Macrolide Antibiotic", None),
    ("Ciprofloxacin", "Cipro", "Fluoroquinolone Antibiotic", "Ciprofloxacin Hydrochloride"),
    ("Levofloxacin", "Levaquin", "Fluoroquinolone Antibiotic", None),
    ("Doxycycline", "Vibramycin", "Tetracycline Antibiotic", "Doxycycline Hyclate"),
    ("Cephalexin", "Keflex", "Cephalosporin Antibiotic", None),
    ("Ceftriaxone", "Rocephin", "Cephalosporin Antibiotic", "Ceftriaxone Sodium"),
    ("Clindamycin", "Cleocin", "Lincosamide Antibiotic", "Clindamycin Hydrochloride"),
    ("Metronidazole", "Flagyl", "Nitroimidazole Antibiotic", None),
    ("Vancomycin", "Vancocin", "Glycopeptide Antibiotic", "Vancomycin Hydrochloride"),
    ("Gentamicin", "Garamycin", "Aminoglycoside Antibiotic", "Gentamicin Sulfate"),
    ("Nitrofurantoin", "Macrobid", "Urinary Anti-infective", None),
    ("Fluconazole", "Diflucan", "Azole Antifungal", None),
    ("Acyclovir", "Zovirax", "Antiviral", None),
    ("Oseltamivir", "Tamiflu", "Antiviral", "Oseltamivir Phosphate"),
    ("Hydroxychloroquine", "Plaquenil", "Antimalarial", "Hydroxychloroquine Sulfate"),
    # Cardiovascular
    ("Benazepril", "Lotensin", "ACE Inhibitor", "Benazepril Hydrochloride"),
    ("Lisinopril", "Prinivil", "ACE Inhibitor", None),
    ("Enalapril", "Vasotec", "ACE Inhibitor", "Enalapril Maleate"),
    ("Losartan", "Cozaar", "ARB", "Losartan Potassium"),
    ("Valsartan", "Diovan", "ARB", None),
    ("Metoprolol", "Lopressor", "Beta Blocker", "Metoprolol Tartrate"),
    ("Atenolol", "Tenormin", "Beta Blocker", None),
    ("Carvedilol", "Coreg", "Beta Blocker", None),
    ("Propranolol", "Inderal", "Beta Blocker", "Propranolol Hydrochloride"),
    ("Amlodipine", "Norvasc", "Calcium Channel Blocker", "Amlodipine Besylate"),
    ("Diltiazem", "Cardizem", "Calcium Channel Blocker", "Diltiazem Hydrochloride"),
    ("Verapamil", "Calan", "Calcium Channel Blocker", "Verapamil Hydrochloride"),
    ("Atorvastatin", "Lipitor", "Statin", "Atorvastatin Calcium"),
    ("Simvastatin", "Zocor", "Statin", None),
    ("Rosuvastatin", "Crestor", "Statin", "Rosuvastatin Calcium"),
    ("Warfarin", "Coumadin", "Anticoagulant", "Warfarin Sodium"),
    ("Apixaban", "Eliquis", "Anticoagulant", None),
    ("Rivaroxaban", "Xarelto", "Anticoagulant", None),
    ("Clopidogrel", "Plavix", "Antiplatelet", "Clopidogrel Bisulfate"),
    ("Digoxin", "Lanoxin", "Cardiac Glycoside", None),
    ("Amiodarone", "Cordarone", "Antiarrhythmic", "Amiodarone Hydrochloride"),
    ("Furosemide", "Lasix", "Loop Diuretic", None),
    ("Hydrochlorothiazide", "Microzide", "Thiazide Diuretic", None),
    ("Spironolactone", "Aldactone", "Potassium-Sparing Diuretic", None),
    ("Nitroglycerin", "Nitrostat", "Nitrate", None),
    # Dermatology
    ("Tazarotene", "Tazorac", "Topical Retinoid", None),
    ("Fluocinonide", "Lidex", "Topical Corticosteroid", None),
    ("Hydrocortisone", "Cortaid", "Topical Corticosteroid", "Hydrocortisone Acetate"),
    ("Clobetasol", "Temovate", "Topical Corticosteroid", "Clobetasol Propionate"),
    ("Calcipotriene", "Dovonex", "Vitamin D Analog", None),
    ("Isotretinoin", "Accutane", "Oral Retinoid", None),
    ("Benzoyl Peroxide", "Clearasil", "Topical Antibacterial", None),
    ("Salicylic Acid", "Compound W", "Keratolytic", None),
    ("Acitretin", "Soriatane", "Oral Retinoid", None),
    ("Adalimumab", "Humira", "TNF Inhibitor", None),
    ("Etanercept", "Enbrel", "TNF Inhibitor", None),
    ("Mupirocin", "Bactroban", "Topical Antibiotic", "Mupirocin Calcium"),
    ("Tretinoin", "Retin-A", "Topical Retinoid", None),
    # Gastrointestinal
    ("Omeprazole", "Prilosec", "Proton Pump Inhibitor", "Omeprazole Magnesium"),
    ("Pantoprazole", "Protonix", "Proton Pump Inhibitor", "Pantoprazole Sodium"),
    ("Esomeprazole", "Nexium", "Proton Pump Inhibitor", "Esomeprazole Magnesium"),
    ("Famotidine", "Pepcid", "H2 Blocker", None),
    ("Ondansetron", "Zofran", "Antiemetic", "Ondansetron Hydrochloride"),
    ("Metoclopramide", "Reglan", "Prokinetic", "Metoclopramide Hydrochloride"),
    ("Loperamide", "Imodium", "Antidiarrheal", "Loperamide Hydrochloride"),
    ("Calcium Carbonate", "Tums", "Antacid", None),
    ("Calcium Citrate", "Citracal", "Calcium Supplement", None),
    ("Sucralfate", "Carafate", "Mucosal Protectant", None),
    ("Docusate", "Colace", "Stool Softener", "Docusate Sodium"),
    ("Polyethylene Glycol", "MiraLAX", "Osmotic Laxative", None),
    ("Pancreatin", "Creon", "Pancreatic Enzyme", None),
    # Neurology / psychiatry
    ("Sertraline", "Zoloft", "SSRI", "Sertraline Hydrochloride"),
    ("Fluoxetine", "Prozac", "SSRI", "Fluoxetine Hydrochloride"),
    ("Escitalopram", "Lexapro", "SSRI", "Escitalopram Oxalate"),
    ("Venlafaxine", "Effexor", "SNRI", "Venlafaxine Hydrochloride"),
    ("Duloxetine", "Cymbalta", "SNRI", "Duloxetine Hydrochloride"),
    ("Bupropion", "Wellbutrin", "Atypical Antidepressant", "Bupropion Hydrochloride"),
    ("Alprazolam", "Xanax", "Benzodiazepine", None),
    ("Diazepam", "Valium", "Benzodiazepine", None),
    ("Lorazepam", "Ativan", "Benzodiazepine", None),
    ("Zolpidem", "Ambien", "Sedative-Hypnotic", "Zolpidem Tartrate"),
    ("Gabapentin", "Neurontin", "Anticonvulsant", None),
    ("Pregabalin", "Lyrica", "Anticonvulsant", None),
    ("Levetiracetam", "Keppra", "Anticonvulsant", None),
    ("Phenytoin", "Dilantin", "Anticonvulsant", "Phenytoin Sodium"),
    ("Carbamazepine", "Tegretol", "Anticonvulsant", None),
    ("Lamotrigine", "Lamictal", "Anticonvulsant", None),
    ("Valproate", "Depakote", "Anticonvulsant", "Valproate Sodium"),
    ("Topiramate", "Topamax", "Anticonvulsant", None),
    ("Benztropine Mesylate", "Cogentin", "Anticholinergic", None),
    ("Citicoline", "Cognizin", "Nootropic", "Citicoline Sodium"),
    ("Sumatriptan", "Imitrex", "Triptan", "Sumatriptan Succinate"),
    ("Quetiapine", "Seroquel", "Atypical Antipsychotic", "Quetiapine Fumarate"),
    ("Risperidone", "Risperdal", "Atypical Antipsychotic", None),
    ("Lithium", "Lithobid", "Mood Stabilizer", "Lithium Carbonate"),
    ("Donepezil", "Aricept", "Cholinesterase Inhibitor", "Donepezil Hydrochloride"),
    # Endocrine
    ("Metformin", "Glucophage", "Biguanide", "Metformin Hydrochloride"),
    ("Glipizide", "Glucotrol", "Sulfonylurea", None),
    ("Insulin Glargine", "Lantus", "Long-Acting Insulin", None),
    ("Sitagliptin", "Januvia", "DPP-4 Inhibitor", "Sitagliptin Phosphate"),
    ("Empagliflozin", "Jardiance", "SGLT2 Inhibitor", None),
    ("Levothyroxine", "Synthroid", "Thyroid Hormone", "Levothyroxine Sodium"),
    ("Prednisone", "Deltasone", "Systemic Corticosteroid", None),
    ("Methylprednisolone", "Medrol", "Systemic Corticosteroid", None),
    ("Alendronate", "Fosamax", "Bisphosphonate", "Alendronate Sodium"),
    # Respiratory / allergy
    ("Albuterol", "Ventolin", "Beta-2 Agonist", "Albuterol Sulfate"),
    ("Montelukast", "Singulair", "Leukotriene Antagonist", "Montelukast Sodium"),
    ("Fluticasone", "Flonase", "Inhaled Corticosteroid", "Fluticasone Propionate"),
    ("Budesonide", "Pulmicort", "Inhaled Corticosteroid", None),
    ("Tiotropium", "Spiriva", "Anticholinergic Bronchodilator", "Tiotropium Bromide"),
    ("Cetirizine", "Zyrtec", "Antihistamine", "Cetirizine Hydrochloride"),
    ("Loratadine", "Claritin", "Antihistamine", None),
    ("Diphenhydramine", "Benadryl", "Antihistamine", "Diphenhydramine Hydrochloride"),
    ("Guaifenesin", "Mucinex", "Expectorant", None),
    # Miscellaneous
    ("Allopurinol", "Zyloprim", "Xanthine Oxidase Inhibitor", None),
    ("Colchicine", "Colcrys", "Anti-Gout Agent", None),
    ("Cyclopentolate Hydrochloride", "Cyclogel", "Cycloplegic", None),
    ("Tamsulosin", "Flomax", "Alpha Blocker", "Tamsulosin Hydrochloride"),
    ("Finasteride", "Proscar", "5-Alpha-Reductase Inhibitor", None),
    ("Sildenafil", "Viagra", "PDE5 Inhibitor", "Sildenafil Citrate"),
    ("Methotrexate", "Trexall", "Antimetabolite", "Methotrexate Sodium"),
    ("Azathioprine", "Imuran", "Immunosuppressant", None),
    ("Cyclosporine", "Neoral", "Immunosuppressant", None),
    ("Tacrolimus", "Prograf", "Immunosuppressant", None),
    ("Ferrous Sulfate", "Feosol", "Iron Supplement", None),
    ("Folic Acid", "Folvite", "Vitamin", None),
    ("Potassium Chloride", "K-Dur", "Electrolyte Supplement", None),
    ("Latanoprost", "Xalatan", "Prostaglandin Analog", None),
    ("Timolol", "Timoptic", "Ophthalmic Beta Blocker", "Timolol Maleate"),
]

#: Condition names with the drug classes that plausibly treat them.
CONDITIONS: list[tuple[str, list[str]]] = [
    ("Fever", ["NSAID", "Analgesic"]),
    ("Pain", ["NSAID", "Analgesic", "Opioid Analgesic"]),
    ("Chronic Pain", ["Opioid Analgesic", "Anticonvulsant", "SNRI"]),
    ("Headache", ["NSAID", "Analgesic"]),
    ("Migraine", ["Triptan", "NSAID", "Anticonvulsant"]),
    ("Psoriasis", ["Topical Retinoid", "Topical Corticosteroid", "Vitamin D Analog", "Oral Retinoid", "TNF Inhibitor", "Keratolytic"]),
    ("Plaque Psoriasis", ["Topical Retinoid", "Topical Corticosteroid", "Oral Retinoid"]),
    ("Acne", ["Topical Retinoid", "Topical Antibacterial", "Oral Retinoid", "Keratolytic", "Tetracycline Antibiotic"]),
    ("Eczema", ["Topical Corticosteroid"]),
    ("Dermatitis", ["Topical Corticosteroid"]),
    ("Hypertension", ["ACE Inhibitor", "ARB", "Beta Blocker", "Calcium Channel Blocker", "Thiazide Diuretic", "Loop Diuretic"]),
    ("Heart Failure", ["ACE Inhibitor", "Beta Blocker", "Loop Diuretic", "Potassium-Sparing Diuretic", "Cardiac Glycoside"]),
    ("Atrial Fibrillation", ["Anticoagulant", "Beta Blocker", "Antiarrhythmic", "Cardiac Glycoside", "Calcium Channel Blocker"]),
    ("Angina", ["Beta Blocker", "Calcium Channel Blocker", "Nitrate"]),
    ("Hyperlipidemia", ["Statin"]),
    ("Stroke Prevention", ["Anticoagulant", "Antiplatelet", "Statin"]),
    ("Deep Vein Thrombosis", ["Anticoagulant"]),
    ("Edema", ["Loop Diuretic", "Thiazide Diuretic", "Potassium-Sparing Diuretic"]),
    ("Type 2 Diabetes", ["Biguanide", "Sulfonylurea", "DPP-4 Inhibitor", "SGLT2 Inhibitor", "Long-Acting Insulin"]),
    ("Hypothyroidism", ["Thyroid Hormone"]),
    ("Osteoporosis", ["Bisphosphonate", "Calcium Supplement"]),
    ("Asthma", ["Beta-2 Agonist", "Inhaled Corticosteroid", "Leukotriene Antagonist"]),
    ("COPD", ["Beta-2 Agonist", "Inhaled Corticosteroid", "Anticholinergic Bronchodilator"]),
    ("Allergic Rhinitis", ["Antihistamine", "Inhaled Corticosteroid", "Leukotriene Antagonist"]),
    ("Urticaria", ["Antihistamine"]),
    ("Cough", ["Expectorant", "Antihistamine"]),
    ("Pneumonia", ["Macrolide Antibiotic", "Fluoroquinolone Antibiotic", "Cephalosporin Antibiotic"]),
    ("Bronchitis", ["Macrolide Antibiotic", "Tetracycline Antibiotic", "Expectorant"]),
    ("Sinusitis", ["Penicillin Antibiotic", "Macrolide Antibiotic"]),
    ("Strep Throat", ["Penicillin Antibiotic", "Cephalosporin Antibiotic"]),
    ("Urinary Tract Infection", ["Fluoroquinolone Antibiotic", "Urinary Anti-infective", "Cephalosporin Antibiotic"]),
    ("Skin Infection", ["Cephalosporin Antibiotic", "Lincosamide Antibiotic", "Topical Antibiotic", "Glycopeptide Antibiotic"]),
    ("Anaerobic Infection", ["Nitroimidazole Antibiotic", "Lincosamide Antibiotic"]),
    ("Sepsis", ["Glycopeptide Antibiotic", "Aminoglycoside Antibiotic", "Cephalosporin Antibiotic"]),
    ("Influenza", ["Antiviral"]),
    ("Herpes Simplex", ["Antiviral"]),
    ("Candidiasis", ["Azole Antifungal"]),
    ("Malaria", ["Antimalarial"]),
    ("Depression", ["SSRI", "SNRI", "Atypical Antidepressant"]),
    ("Anxiety", ["SSRI", "SNRI", "Benzodiazepine"]),
    ("Panic Disorder", ["SSRI", "Benzodiazepine"]),
    ("Insomnia", ["Sedative-Hypnotic", "Benzodiazepine", "Antihistamine"]),
    ("Epilepsy", ["Anticonvulsant"]),
    ("Seizure Disorder", ["Anticonvulsant", "Benzodiazepine"]),
    ("Neuropathic Pain", ["Anticonvulsant", "SNRI"]),
    ("Bipolar Disorder", ["Mood Stabilizer", "Anticonvulsant", "Atypical Antipsychotic"]),
    ("Schizophrenia", ["Atypical Antipsychotic"]),
    ("Parkinsonism", ["Anticholinergic"]),
    ("Alzheimer Disease", ["Cholinesterase Inhibitor", "Nootropic"]),
    ("GERD", ["Proton Pump Inhibitor", "H2 Blocker", "Antacid"]),
    ("Peptic Ulcer", ["Proton Pump Inhibitor", "H2 Blocker", "Mucosal Protectant"]),
    ("Heartburn", ["Antacid", "H2 Blocker", "Proton Pump Inhibitor"]),
    ("Nausea", ["Antiemetic", "Prokinetic", "Antihistamine"]),
    ("Diarrhea", ["Antidiarrheal"]),
    ("Constipation", ["Stool Softener", "Osmotic Laxative"]),
    ("Pancreatic Insufficiency", ["Pancreatic Enzyme"]),
    ("Gout", ["Xanthine Oxidase Inhibitor", "Anti-Gout Agent", "NSAID"]),
    ("Rheumatoid Arthritis", ["Antimetabolite", "TNF Inhibitor", "NSAID", "Immunosuppressant", "Antimalarial"]),
    ("Osteoarthritis", ["NSAID", "Analgesic"]),
    ("Lupus", ["Antimalarial", "Systemic Corticosteroid", "Immunosuppressant"]),
    ("Inflammation", ["Systemic Corticosteroid", "NSAID"]),
    ("Organ Transplant Rejection", ["Immunosuppressant"]),
    ("Benign Prostatic Hyperplasia", ["Alpha Blocker", "5-Alpha-Reductase Inhibitor"]),
    ("Erectile Dysfunction", ["PDE5 Inhibitor"]),
    ("Glaucoma", ["Prostaglandin Analog", "Ophthalmic Beta Blocker"]),
    ("Iron Deficiency Anemia", ["Iron Supplement"]),
    ("Folate Deficiency", ["Vitamin"]),
    ("Hypokalemia", ["Electrolyte Supplement", "Potassium-Sparing Diuretic"]),
    ("Mydriasis Induction", ["Cycloplegic"]),
]

FINDINGS: list[str] = [
    "Elevated Blood Pressure", "Tachycardia", "Bradycardia", "Rash",
    "Jaundice", "Elevated INR", "Hyperkalemia", "Hyponatremia",
    "Elevated Liver Enzymes", "Proteinuria", "QT Prolongation",
    "Weight Gain", "Weight Loss", "Tremor", "Fatigue", "Dehydration",
]

ADVERSE_EFFECTS: list[str] = [
    "Nausea", "Vomiting", "Dizziness", "Drowsiness", "Headache",
    "Diarrhea", "Constipation", "Dry Mouth", "Rash", "Pruritus",
    "Insomnia", "Fatigue", "Abdominal Pain", "Blurred Vision",
    "Hypotension", "Bradycardia", "Tachycardia", "Hyperkalemia",
    "Hepatotoxicity", "Nephrotoxicity", "Photosensitivity", "Tinnitus",
    "Peripheral Edema", "Weight Gain", "Tremor", "Anxiety", "Cough",
]

FOOD_ITEMS: list[str] = [
    "Grapefruit Juice", "Dairy Products", "Alcohol", "High-Fat Meals",
    "Leafy Green Vegetables", "Caffeine", "Tyramine-Rich Foods",
    "Calcium-Fortified Juice", "Licorice", "Salt Substitutes",
]

LAB_TESTS: list[tuple[str, str, str]] = [
    ("INR", "Plasma", "ratio"),
    ("Serum Potassium", "Serum", "mmol/L"),
    ("Serum Creatinine", "Serum", "mg/dL"),
    ("ALT", "Serum", "U/L"),
    ("AST", "Serum", "U/L"),
    ("Blood Glucose", "Whole Blood", "mg/dL"),
    ("TSH", "Serum", "mIU/L"),
    ("Digoxin Level", "Serum", "ng/mL"),
    ("Lithium Level", "Serum", "mmol/L"),
    ("Phenytoin Level", "Serum", "mcg/mL"),
    ("Complete Blood Count", "Whole Blood", "cells/uL"),
    ("Uric Acid", "Serum", "mg/dL"),
]

ROUTES: list[str] = [
    "Oral", "Topical", "Intravenous", "Intramuscular", "Subcutaneous",
    "Inhalation", "Ophthalmic", "Rectal", "Transdermal", "Sublingual",
]

AGE_GROUPS: list[str] = ["Adult", "Pediatric", "Geriatric", "Neonatal"]

SEVERITIES: list[str] = ["Mild", "Moderate", "Severe", "Contraindicated"]

EFFICACIES: list[str] = [
    "Effective", "Possibly Effective", "Evidence Favors Efficacy",
    "Evidence Inconclusive", "Ineffective",
]

PREGNANCY_CATEGORIES: list[tuple[str, str]] = [
    ("A", "controlled studies show no risk"),
    ("B", "no evidence of risk in humans"),
    ("C", "risk cannot be ruled out"),
    ("D", "positive evidence of risk"),
    ("X", "contraindicated in pregnancy"),
]

IV_SOLUTIONS: list[str] = [
    "Normal Saline 0.9%", "Dextrose 5% in Water", "Lactated Ringer's",
    "Half Normal Saline 0.45%", "Dextrose 5% in Normal Saline",
    "Sterile Water for Injection",
]

MANUFACTURERS: list[tuple[str, str]] = [
    ("Pfizer", "United States"), ("Novartis", "Switzerland"),
    ("Roche", "Switzerland"), ("Merck", "United States"),
    ("GlaxoSmithKline", "United Kingdom"), ("Sanofi", "France"),
    ("AstraZeneca", "United Kingdom"), ("Johnson & Johnson", "United States"),
    ("AbbVie", "United States"), ("Teva", "Israel"),
    ("Bayer AG", "Germany"), ("Eli Lilly", "United States"),
]

DOSAGE_FORMS: list[str] = [
    "Tablet", "Capsule", "Oral Solution", "Cream", "Gel", "Ointment",
    "Injection Solution", "Inhaler", "Patch", "Suppository", "Eye Drops",
]

FREQUENCIES: list[tuple[str, str]] = [
    ("QD", "once daily"), ("BID", "twice daily"), ("TID", "three times daily"),
    ("QID", "four times daily"), ("Q4H", "every 4 hours"),
    ("Q6H", "every 6 hours"), ("Q8H", "every 8 hours"),
    ("QHS", "every night at bedtime"), ("PRN", "as needed"),
    ("QWK", "once weekly"),
]

DOSE_UNITS: list[str] = ["mg", "mcg", "g", "mL", "units", "mg/kg", "%"]

MONITOR_PARAMETERS: list[str] = [
    "Blood Pressure", "Heart Rate", "Renal Function", "Liver Function",
    "Serum Electrolytes", "Blood Glucose", "Complete Blood Count",
    "Therapeutic Drug Level", "Weight", "Mental Status",
]

ALLERGENS: list[str] = [
    "Penicillins", "Sulfonamides", "Cephalosporins", "Aspirin/NSAIDs",
    "Macrolides", "Latex", "Iodinated Contrast", "Eggs", "Soy",
]

STORAGE_CONDITIONS: list[str] = [
    "Store at room temperature (20-25 C)", "Refrigerate (2-8 C)",
    "Protect from light", "Store in original container",
    "Do not freeze", "Keep container tightly closed",
]

OVERDOSE_SYMPTOMS: list[str] = [
    "Respiratory Depression", "Seizures", "Cardiac Arrhythmia",
    "Severe Hypotension", "Coma", "Metabolic Acidosis",
    "Hepatic Failure", "Acute Kidney Injury", "Severe Bleeding",
    "Serotonin Syndrome",
]

ANTIDOTES: list[tuple[str, str]] = [
    ("Naloxone", "opioid overdose"),
    ("N-Acetylcysteine", "acetaminophen overdose"),
    ("Vitamin K", "warfarin over-anticoagulation"),
    ("Flumazenil", "benzodiazepine overdose"),
    ("Digoxin Immune Fab", "digoxin toxicity"),
    ("Protamine Sulfate", "heparin overdose"),
    ("Activated Charcoal", "recent oral ingestion"),
    ("Calcium Gluconate", "calcium channel blocker overdose"),
]

SCHEDULE_CLASSES: list[tuple[str, str]] = [
    ("Rx", "prescription only"),
    ("OTC", "over the counter"),
    ("C-II", "schedule II controlled substance"),
    ("C-III", "schedule III controlled substance"),
    ("C-IV", "schedule IV controlled substance"),
    ("C-V", "schedule V controlled substance"),
]

THERAPEUTIC_CLASSES: list[str] = [
    "Cardiovascular Agent", "Central Nervous System Agent",
    "Anti-Infective Agent", "Dermatologic Agent",
    "Gastrointestinal Agent", "Endocrine-Metabolic Agent",
    "Respiratory Agent", "Musculoskeletal Agent",
    "Ophthalmic Agent", "Genitourinary Agent", "Hematologic Agent",
    "Immunologic Agent",
]

EVIDENCE_STRENGTHS: list[str] = [
    "Category A", "Category B", "Category C", "Expert Opinion",
]

DOCUMENTATION_LEVELS: list[str] = [
    "Excellent", "Good", "Fair", "Unknown",
]

REFERENCE_SOURCES: list[str] = [
    "AHFS Drug Information", "Clinical Pharmacology Compendium",
    "Cochrane Systematic Review", "FDA Label", "Primary Literature",
    "WHO Model Formulary",
]

GUIDELINES: list[str] = [
    "JNC 8 Hypertension Guideline", "ADA Standards of Medical Care",
    "GOLD COPD Strategy", "GINA Asthma Strategy",
    "ACC/AHA Heart Failure Guideline", "IDSA Pneumonia Guideline",
    "EULAR Rheumatoid Arthritis Recommendations",
    "AAD Psoriasis Guideline", "ACG GERD Guideline",
    "KDIGO Chronic Kidney Disease Guideline",
]

PRICE_TIERS: list[tuple[str, str]] = [
    ("Tier 1", "preferred generic"),
    ("Tier 2", "non-preferred generic"),
    ("Tier 3", "preferred brand"),
    ("Tier 4", "non-preferred brand"),
    ("Tier 5", "specialty"),
]

#: Concept-level synonyms: the domain vocabulary of Table 2.
CONCEPT_SYNONYMS: dict[str, list[str]] = {
    "Adverse Effect": ["side effect", "adverse reaction", "AE", "side effects"],
    "Indication": [
        "condition", "disease", "disorder", "diagnosis",
        "uses", "use", "indications", "used for",
    ],
    "Drug": ["medicine", "meds", "medication", "substance", "agent"],
    "Precaution": ["caution", "safe to give", "warnings to consider"],
    "Dose Adjustment": ["dosing modification", "dose reduction", "dosage adjustment", "modifications to dosing"],
    "Dosage": ["dose", "dosing", "dose amount", "how much to give"],
    "Contra Indication": ["contraindication", "do not use with"],
    "Black Box Warning": ["boxed warning", "serious warning"],
    "Drug Interaction": ["interaction", "interactions"],
    "Iv Compatibility": ["IV compatibility", "intravenous compatibility", "y-site compatibility"],
    "Administration": ["how to give", "how to administer", "administration instructions"],
    "Regulatory Status": ["FDA status", "approval status", "regulatory"],
    "Pharmacokinetics": ["PK", "kinetics", "absorption and metabolism"],
    "Mechanism Of Action": ["MOA", "how it works", "mechanism"],
    "Patient Education": ["counseling points", "patient counseling"],
    "Toxicology": ["overdose information", "poisoning", "toxicity"],
    "Monitoring": ["what to monitor", "follow-up labs"],
    "Age Group": ["population", "age range"],
    "Lab Test": ["laboratory test", "lab", "test"],
    "Risk": ["risks", "safety risks"],
}

#: Glossary entries served by the definition-request repair (§6.3 line 09).
GLOSSARY: dict[str, str] = {
    "effective": (
        "the capacity for beneficial change (or therapeutic effect) of a "
        "given intervention."
    ),
    "contraindication": (
        "a specific situation in which a drug should not be used because "
        "it may be harmful to the patient."
    ),
    "black box warning": (
        "the strongest warning the FDA requires, indicating a serious or "
        "life-threatening risk."
    ),
    "adverse effect": (
        "an undesired harmful effect resulting from a medication at "
        "normal doses."
    ),
    "precaution": (
        "a condition under which a drug should be used with special care."
    ),
    "pharmacokinetics": (
        "the movement of a drug through the body: absorption, "
        "distribution, metabolism and excretion."
    ),
    "dose adjustment": (
        "a modification of the usual dose, typically for renal or "
        "hepatic impairment."
    ),
    "off-label": (
        "use of a drug for an indication not approved by the regulator."
    ),
    "iv compatibility": (
        "whether two products can be mixed or co-administered "
        "intravenously without degradation or precipitation."
    ),
    "half-life": (
        "the time required for the drug concentration to fall to half "
        "its initial value."
    ),
}
