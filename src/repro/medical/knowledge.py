"""SME artifacts for the MDX use case.

Everything a subject-matter expert contributes in §4.2.2/§4.3.2/§6.1:
instance synonyms (brand names, base-with-salt descriptions), prior user
queries labelled with intents, business-friendly intent renames (Table
5's names), and pruning of query patterns unlikely to occur in the real
workload.
"""

from __future__ import annotations

from repro.bootstrap.synonyms import SynonymDictionary
from repro.medical import vocabulary as vocab

#: Generated intent name -> the paper's business name (Table 5 / §6.2).
INTENT_RENAMES: dict[str, str] = {
    "Drug Dosage for Indication": "Drug Dosage for Condition",
    "Administration of Drug": "Administration of Drug",
    "Iv Compatibility of Drug": "IV Compatibility of Drug",
    "Drug that treats Indication": "Drugs That Treat Condition",
    "Indication that Drug treats": "Uses of Drug",
    "Adverse Effect of Drug": "Adverse Effects of Drug",
    "Drug Interaction of Drug": "Drug-Drug Interactions",
    "Dose Adjustment of Drug": "Dose Adjustments for Drug",
    "Regulatory Status of Drug": "Regulatory Status for Drug",
    "Pharmacokinetics of Drug": "Pharmacokinetics",
    "Precaution of Drug": "Precautions of Drug",
    "Risk of Drug": "Risks of Drug",
    "Drug that off label treats Indication": "Off-Label Uses for Condition",
    "Indication that Drug off label treats": "Off-Label Uses of Drug",
    "Drug that prevents Indication": "Drugs That Prevent Condition",
    "Indication that Drug prevents": "Prevention Uses of Drug",
    "Drug Clinical Evidence for Indication": "Clinical Evidence for Condition",
    "Toxicology of Drug": "Toxicology of Drug",
    "Mechanism Of Action of Drug": "Mechanism of Action",
    "Monitoring of Drug": "Monitoring for Drug",
    "Patient Education of Drug": "Patient Education for Drug",
}

#: Intents pruned by SMEs (§4.2.2: "unlikely to be part of a real world
#: workload against the knowledge base").
PRUNED_INTENTS: list[str] = [
    # The generated "Dosage of Drug" lookup duplicates the Dosage Request
    # (Table 4) realized by "Drug Dosage for Indication"; SMEs keep one.
    "Dosage of Drug",
    "Price Tier of Drug",
    "Schedule Class of Drug",
    "Therapeutic Class of Drug",
    "Manufacturer of Drug",
    "Warning Label of Drug",
    "Strength Formulation of Drug",
    "Clinical Trial of Drug",
    "Guideline Recommendation of Drug",
    "Storage of Drug",
    "Dialysis Guidance of Drug",
    "Allergy Cross Sensitivity of Drug",
    "Drug Drug Interaction of Drug",
    "Brand of Drug",
    "Drug Class of Drug",
    "Pregnancy Category of Drug",
    "Finding of Drug",
    "Finding of Indication",
    "Clinical Evidence of Drug",
    "Clinical Evidence of Indication",
    "Clinical Trial of Indication",
    "Guideline Recommendation of Indication",
    "Dosage of Indication",
    "Drug Clinical Trial for Indication",
    "Drug Guideline Recommendation for Indication",
    "Drug Finding for Indication",
    "INDICATION_GENERAL",
]

#: Prior user queries labelled by SMEs (§4.3.2 and Figure 8) — these use
#: phrasings the automatic generator does not produce.
PRIOR_USER_QUERIES: list[tuple[str, str]] = [
    ("Find Dose Adjustment for Aspirin?", "Dose Adjustment of Drug"),
    ("Give me the increased dosage for Aspirin?", "Dose Adjustment of Drug"),
    ("How do I perform a Dose Adjustment for Aspirin?", "Dose Adjustment of Drug"),
    ("I want to see the modifications to dosing for Warfarin?", "Dose Adjustment of Drug"),
    ("renal dosing for gentamicin", "Dose Adjustment of Drug"),
    ("what are the side effects of cogentin", "Adverse Effect of Drug"),
    ("side effects of lisinopril", "Adverse Effect of Drug"),
    ("cogentin adverse effects", "Adverse Effect of Drug"),
    ("does ibuprofen cause stomach problems", "Adverse Effect of Drug"),
    ("is it safe to give aspirin to children", "Precaution of Drug"),
    ("warnings for warfarin", "Precaution of Drug"),
    ("how much tylenol can I give", "Drug Dosage for Indication"),
    ("tylenol dosing", "Drug Dosage for Indication"),
    ("pediatric dose of amoxicillin", "Drug Dosage for Indication"),
    ("max daily dose of ibuprofen", "Drug Dosage for Indication"),
    ("what is amoxicillin used for", "Indication that Drug treats"),
    ("what does metformin treat", "Indication that Drug treats"),
    ("uses of prednisone", "Indication that Drug treats"),
    ("indications for atorvastatin", "Indication that Drug treats"),
    ("what can I take for a headache", "Drug that treats Indication"),
    ("best medication for high blood pressure", "Drug that treats Indication"),
    ("treatment options for psoriasis", "Drug that treats Indication"),
    ("drugs for type 2 diabetes", "Drug that treats Indication"),
    ("does warfarin interact with aspirin", "Drug Interaction of Drug"),
    ("interactions for amiodarone", "Drug Interaction of Drug"),
    ("can I take ibuprofen with lisinopril", "Drug Interaction of Drug"),
    ("is vancomycin compatible with normal saline", "Iv Compatibility of Drug"),
    ("y-site compatibility for furosemide", "Iv Compatibility of Drug"),
    ("how do you give ceftriaxone", "Administration of Drug"),
    ("how should metformin be taken", "Administration of Drug"),
    ("is alprazolam a controlled substance", "Regulatory Status of Drug"),
    ("when was warfarin approved", "Regulatory Status of Drug"),
    ("half life of digoxin", "Pharmacokinetics of Drug"),
    ("how is morphine metabolized", "Pharmacokinetics of Drug"),
    ("overdose of acetaminophen", "Toxicology of Drug"),
    ("what happens if you take too much aspirin", "Toxicology of Drug"),
    ("contraindications for metoprolol", "Risk of Drug"),
    ("black box warning for warfarin", "Risk of Drug"),
    ("how does omeprazole work", "Mechanism Of Action of Drug"),
    ("what labs to check on lithium", "Monitoring of Drug"),
    ("counseling points for warfarin", "Patient Education of Drug"),
    ("what should patients know about metformin", "Patient Education of Drug"),
    ("patient teaching for insulin glargine", "Patient Education of Drug"),
    ("what to tell patients starting sertraline", "Patient Education of Drug"),
    ("education points for albuterol inhaler", "Patient Education of Drug"),
    ("drug and dose that treats fever", "Drug Dosage for Indication"),
    ("dosage for tazarotene for acne", "Drug Dosage for Indication"),
    ("can vancomycin be mixed in dextrose", "Iv Compatibility of Drug"),
    ("can gentamicin be mixed with lactated ringers", "Iv Compatibility of Drug"),
    ("is it ok to run furosemide with normal saline", "Iv Compatibility of Drug"),
    ("ceftriaxone indications", "Indication that Drug treats"),
    ("approved indications of sertraline", "Indication that Drug treats"),
    ("what conditions does lisinopril treat", "Indication that Drug treats"),
    ("indications of carvedilol", "Indication that Drug treats"),
    ("list the indications for naproxen", "Indication that Drug treats"),
    ("labeled indications of fluoxetine", "Indication that Drug treats"),
    ("what are the indications for metoprolol", "Indication that Drug treats"),
    ("looking for digoxin indications", "Indication that Drug treats"),
    ("how is albuterol given", "Administration of Drug"),
    ("route of administration for ondansetron", "Administration of Drug"),
    ("dosing of metformin in adults with type 2 diabetes", "Drug Dosage for Indication"),
    ("how much aspirin for fever for adults", "Drug Dosage for Indication"),
    ("how much ibuprofen for pain in children", "Drug Dosage for Indication"),
    ("dose of amoxicillin for sinusitis pediatric", "Drug Dosage for Indication"),
    ("show me drugs that treat psoriasis in children", "Drug that treats Indication"),
    ("drugs that treat hypertension for adults", "Drug that treats Indication"),
    ("what treats acne in kids", "Drug that treats Indication"),
    ("give me the dosage for tazarotene for acne in adults", "Drug Dosage for Indication"),
    ("pediatric dosing of amoxicillin for strep throat", "Drug Dosage for Indication"),
    ("adult dose of ibuprofen for fever", "Drug Dosage for Indication"),
]


def mdx_concept_synonyms() -> SynonymDictionary:
    """The concept-level synonym dictionary (Table 2)."""
    synonyms = SynonymDictionary()
    for concept, values in vocab.CONCEPT_SYNONYMS.items():
        synonyms.add(concept, values)
    return synonyms


def mdx_instance_synonyms() -> SynonymDictionary:
    """Instance-level synonyms: brand names and base-with-salt
    descriptions for every drug (§6.1)."""
    synonyms = SynonymDictionary()
    for generic, brand, _class, base_salt in vocab.DRUGS:
        values = [brand]
        if base_salt:
            values.append(base_salt)
        synonyms.add(generic, values)
    # A few common lay synonyms for conditions.
    synonyms.add("Hypertension", ["high blood pressure"])
    synonyms.add("Hyperlipidemia", ["high cholesterol"])
    synonyms.add("Type 2 Diabetes", ["diabetes", "T2DM"])
    synonyms.add("GERD", ["acid reflux", "gastroesophageal reflux"])
    synonyms.add("Urinary Tract Infection", ["UTI", "bladder infection"])
    synonyms.add("Atrial Fibrillation", ["afib", "a-fib"])
    synonyms.add("Benign Prostatic Hyperplasia", ["BPH", "enlarged prostate"])
    synonyms.add("Influenza", ["flu"])
    synonyms.add("Deep Vein Thrombosis", ["DVT"])
    synonyms.add("Erectile Dysfunction", ["ED", "impotence"])
    return synonyms


def mdx_glossary() -> dict[str, str]:
    """Glossary served by the definition-request repair."""
    return dict(vocab.GLOSSARY)
