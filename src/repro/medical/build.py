"""One-call constructors for Conversational MDX.

The full §6 pipeline: synthetic KB → data-driven ontology (+ SME
refinement: synonyms, inverse names, descriptions) → bootstrapped
conversation space (+ SME feedback: renames, pruning, prior queries) →
trained conversation agent.
"""

from __future__ import annotations

from repro.bootstrap.entities import Entity, EntityValue
from repro.bootstrap.patterns import PatternKind, QueryPattern
from repro.bootstrap.sme import SMEFeedback
from repro.nlq.templates import StructuredQueryTemplate
from repro.bootstrap.space import ConversationSpace, bootstrap_conversation_space
from repro.engine.agent import ConversationAgent
from repro.kb.database import Database
from repro.medical.generator import GeneratorConfig, populate_mdx
from repro.medical.knowledge import (
    INTENT_RENAMES,
    PRIOR_USER_QUERIES,
    PRUNED_INTENTS,
    mdx_concept_synonyms,
    mdx_glossary,
    mdx_instance_synonyms,
)
from repro.ontology.model import Ontology
from repro.ontology.inference import generate_ontology

#: The key concepts validated by SMEs for MDX.
MDX_KEY_CONCEPTS = ["Drug", "Indication"]


def build_mdx_database(config: GeneratorConfig | None = None) -> Database:
    """The synthetic MDX knowledge base (schema + data)."""
    return populate_mdx(config=config)


def build_mdx_ontology(database: Database) -> Ontology:
    """Generate the MDX ontology and apply SME refinements.

    Refinements (the "hybrid approach" of §3): human-readable inverse
    names for the junction relationships, concept synonyms from the
    domain vocabulary, and concept descriptions for definition repair.
    """
    ontology = generate_ontology(database, "mdx")
    inverse_names = {
        "treats": "is treated by",
        "off label treats": "is treated off-label by",
        "prevents": "is prevented by",
        "causes finding": "is caused by",
        "presents with": "is a finding of",
    }
    for prop in ontology.object_properties():
        better = inverse_names.get(prop.name.lower())
        if better:
            prop.inverse_name = better
    synonyms = mdx_concept_synonyms()
    for concept in ontology.concepts():
        for synonym in synonyms.synonyms_of(concept.name):
            if synonym.lower() not in (s.lower() for s in concept.synonyms):
                concept.synonyms.append(synonym)
    descriptions = {
        "Drug": "a substance used to treat, cure or prevent a condition.",
        "Indication": "a condition for which a drug is an appropriate treatment.",
        "Precaution": "a condition under which a drug should be used with special care.",
        "Adverse Effect": "an undesired harmful effect of a medication at normal doses.",
        "Risk": "a safety concern associated with a drug (contraindication or boxed warning).",
        "Contra Indication": "a situation in which a drug must not be used.",
        "Black Box Warning": "the strongest FDA-required warning for serious risks.",
        "Dosage": "the amount, route and schedule at which a drug is given.",
        "Dose Adjustment": "a modification of the usual dose for organ impairment.",
        "Drug Interaction": "an effect of one substance on another drug's action.",
        "Iv Compatibility": "whether a drug can be co-administered with an IV solution.",
        "Pharmacokinetics": "absorption, distribution, metabolism and excretion of a drug.",
    }
    for name, description in descriptions.items():
        if ontology.has_concept(name):
            ontology.concept(name).description = description
    return ontology


def build_mdx_space(
    database: Database | None = None,
    ontology: Ontology | None = None,
    per_pattern: int = 12,
    seed: int = 17,
    apply_sme_feedback: bool = True,
    with_prior_queries: bool = True,
) -> ConversationSpace:
    """Bootstrap the MDX conversation space, optionally with SME feedback.

    ``apply_sme_feedback=False`` yields the raw ontology-only bootstrap
    (used by the ablation benchmarks); the default applies pruning,
    prior-query augmentation and keeps generated intent names (renames
    are applied by :func:`build_mdx_agent` so Table 5 shows paper names).
    """
    database = database or build_mdx_database()
    ontology = ontology or build_mdx_ontology(database)
    space = bootstrap_conversation_space(
        ontology,
        database,
        key_concepts=list(MDX_KEY_CONCEPTS),
        concept_synonyms=mdx_concept_synonyms(),
        instance_synonyms=mdx_instance_synonyms(),
        prior_queries=PRIOR_USER_QUERIES if with_prior_queries else None,
        per_pattern=per_pattern,
        seed=seed,
    )
    if apply_sme_feedback:
        feedback = SMEFeedback()
        for intent_name in PRUNED_INTENTS:
            if space.has_intent(intent_name):
                feedback.prune_intent(intent_name)
        feedback.apply(space)
        _apply_table4_requirements(space)
    return space


#: Lay synonyms for the Age Group instances, so "in children" or "for
#: adults" binds the Age Group slot.
_AGE_GROUP_SYNONYMS = {
    "Adult": ["adults", "grown-ups", "for adults"],
    "Pediatric": ["children", "child", "kids", "pediatrics", "peds"],
    "Geriatric": ["elderly", "older adults", "seniors"],
    "Neonatal": ["neonates", "newborns", "infants"],
}


def _apply_table4_requirements(space: ConversationSpace) -> None:
    """Apply the Table 4 SME refinements.

    The paper's Treatment Request and Dosage Request both require an Age
    Group ("Adult or pediatric?") on top of the ontology-derived slots.
    SMEs replace the generated patterns with age-aware ones routed
    through the ``dosage`` table, add the iconic elicitation prompts and
    the Table 4 response templates, and register the Age Group entity so
    the recognizer binds "in children" / "for adults".
    """
    if space.has_intent("Drug that treats Indication"):
        treats = space.intent("Drug that treats Indication")
        treats.required_entities = ["Indication", "Age Group"]
        treats.elicitations = {
            "Indication": "For which condition?",
            "Age Group": "Adult or pediatric?",
        }
        treats.response_template = (
            "Here are the drugs that treat {indication} for {age_group}: "
            "{results}"
        )
        treats.patterns = [
            QueryPattern(
                kind=PatternKind.INDIRECT_RELATIONSHIP,
                template="Show me drugs that treat <@Indication> for <@Age Group>?",
                result_concept="Drug",
                filter_concepts=("Age Group", "Indication"),
                intermediate_concepts=("Dosage",),
            )
        ]
        treats.optional_entities = ["Severity", "Efficacy"]
        # SME-refined template: the deployed answer groups treating drugs
        # by their clinical-evidence efficacy rating ("Effective:
        # Acitretin, Adalimumab..." — §6.3 line 05).  The age-group filter
        # rides the dosage table; the efficacy label comes from
        # clinical_evidence for the *same* indication.
        treats.custom_templates = [
            StructuredQueryTemplate(
                intent_name=treats.name,
                sql=(
                    "SELECT DISTINCT oEfficacy.name, oDrug.name "
                    "FROM dosage oDosage "
                    "INNER JOIN drug oDrug ON oDosage.drug_id = oDrug.drug_id "
                    "INNER JOIN age_group oAgeGroup "
                    "ON oDosage.age_group_id = oAgeGroup.age_group_id "
                    "INNER JOIN indication oIndication "
                    "ON oDosage.indication_id = oIndication.indication_id "
                    "INNER JOIN clinical_evidence oCe "
                    "ON oCe.drug_id = oDrug.drug_id "
                    "INNER JOIN efficacy oEfficacy "
                    "ON oCe.efficacy_id = oEfficacy.efficacy_id "
                    "WHERE oIndication.name = :indication "
                    "AND oAgeGroup.name = :age_group "
                    "AND oCe.indication_id = oDosage.indication_id "
                    "ORDER BY oEfficacy.rank"
                ),
                parameters={"indication": "Indication", "age_group": "Age Group"},
                result_concepts=("Efficacy", "Drug"),
                grouped=True,
            )
        ]
    if space.has_intent("Drug Dosage for Indication"):
        dosage = space.intent("Drug Dosage for Indication")
        dosage.required_entities = ["Drug", "Indication", "Age Group"]
        dosage.optional_entities = []
        dosage.elicitations = {
            "Drug": "For which drug?",
            "Indication": "For which condition?",
            "Age Group": "Adult or pediatric?",
        }
        dosage.response_template = (
            "Here is {drug} dosing for {age_group} ({indication}): {results}"
        )
        dosage.patterns = [
            QueryPattern(
                kind=PatternKind.INDIRECT_RELATIONSHIP,
                template=(
                    "Give me the dosage for <@Drug> that treats "
                    "<@Indication> for <@Age Group>?"
                ),
                result_concept="Dosage",
                filter_concepts=("Drug", "Age Group", "Indication"),
                intermediate_concepts=("Dosage",),
                relationship="treats",
            )
        ]
    if space.has_intent("Drug Interaction of Drug"):
        # Table 4's Drug Interaction Request carries an optional Severity
        # entity: "severe interactions for warfarin" filters by it, plain
        # requests do not elicit it.
        interactions = space.intent("Drug Interaction of Drug")
        if "Severity" not in interactions.optional_entities:
            interactions.optional_entities.append("Severity")
        base_sql = (
            "SELECT DISTINCT oDi.name, oDi.description "
            "FROM drug_interaction oDi "
            "INNER JOIN drug oDrug ON oDi.drug_id = oDrug.drug_id "
        )
        interactions.custom_templates = [
            StructuredQueryTemplate(
                intent_name=interactions.name,
                sql=base_sql + "WHERE oDrug.name = :drug",
                parameters={"drug": "Drug"},
                result_concepts=("Drug Interaction",),
            ),
            StructuredQueryTemplate(
                intent_name=interactions.name,
                sql=(
                    base_sql
                    + "INNER JOIN severity oSeverity "
                    "ON oDi.severity_id = oSeverity.severity_id "
                    "WHERE oDrug.name = :drug "
                    "AND oSeverity.name = :severity"
                ),
                parameters={"drug": "Drug", "severity": "Severity"},
                result_concepts=("Drug Interaction",),
            ),
        ]
    if not space.has_entity("Severity"):
        severity_entity = Entity(
            name="Severity", kind="instance", concept="Severity"
        )
        for name, synonyms in (
            ("Mild", ["minor"]),
            ("Moderate", []),
            ("Severe", ["serious", "major"]),
            ("Contraindicated", ["contraindicated interactions"]),
        ):
            severity_entity.values.append(
                EntityValue(value=name, synonyms=synonyms)
            )
        space.entities.append(severity_entity)

    if not space.has_entity("Age Group"):
        entity = Entity(name="Age Group", kind="instance", concept="Age Group")
        for name, synonyms in _AGE_GROUP_SYNONYMS.items():
            entity.values.append(EntityValue(value=name, synonyms=synonyms))
        space.entities.append(entity)

    # Regenerate training examples for the age-aware patterns so the
    # classifier sees "... for <age group>" phrasings beyond the SME set.
    from repro.bootstrap.training import generate_training_examples

    # Only the dosage intent renders well generically ("... Dosage for X
    # for Adult that treats Y"); treats-intent phrasings come from the
    # SME prior queries.
    age_aware = [
        space.intent(name)
        for name in ("Drug Dosage for Indication",)
        if space.has_intent(name)
    ]
    if age_aware:
        extra = generate_training_examples(
            age_aware, space.ontology, space.database, per_pattern=10, seed=23
        )
        seen = {(e.utterance.lower(), e.intent) for e in space.training_examples}
        for example in extra:
            key = (example.utterance.lower(), example.intent)
            if key not in seen:
                seen.add(key)
                space.training_examples.append(example)


def rename_to_paper_intents(space: ConversationSpace) -> dict[str, str]:
    """Apply the SME intent renames (Table 5 names).  Returns the applied
    old → new mapping."""
    applied = {}
    feedback = SMEFeedback()
    for old, new in INTENT_RENAMES.items():
        if not space.has_intent(old):
            continue
        # A case-only rename ("Iv Compatibility" → "IV Compatibility")
        # matches itself under the case-insensitive lookup; only a truly
        # different existing intent blocks the rename.
        if old.lower() != new.lower() and space.has_intent(new):
            continue
        if old == new:
            continue
        feedback.rename_intent(old, new)
        applied[old] = new
    feedback.apply(space)
    return applied


def build_mdx_agent(
    database: Database | None = None,
    space: ConversationSpace | None = None,
    use_paper_intent_names: bool = True,
) -> ConversationAgent:
    """Build the full Conversational MDX agent."""
    database = database or build_mdx_database()
    if space is None:
        space = build_mdx_space(database)
    if use_paper_intent_names:
        rename_to_paper_intents(space)
    return ConversationAgent.build(
        space,
        database,
        glossary=mdx_glossary(),
        agent_name="Micromedex",
        domain="drug reference",
    )
