"""Seeded synthetic data generator for the MDX knowledge base.

Deterministic given its seed.  Free-text fields draw from bounded pools
(reference text in a real drug KB is curated and repetitive), which also
makes the categorical-attribute statistics of §4.2.1 meaningful: the
label columns of dependent concepts have low distinct counts, while key
concepts (drugs, indications) have high-cardinality name columns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.kb.database import Database
from repro.medical import vocabulary as vocab
from repro.medical.schema import create_mdx_schema


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for the synthetic KB size."""

    seed: int = 42
    max_drugs: int | None = None          # None = full vocabulary
    max_conditions: int | None = None
    adverse_effects_per_drug: tuple[int, int] = (2, 5)
    precautions_per_drug: tuple[int, int] = (1, 3)
    interactions_per_drug: tuple[int, int] = (1, 3)


_PRECAUTION_POOL = [
    "Use with caution in patients with renal impairment.",
    "Use with caution in patients with hepatic impairment.",
    "May cause drowsiness; caution when driving.",
    "Monitor blood pressure during initiation.",
    "Take with food to reduce gastrointestinal upset.",
    "Avoid abrupt discontinuation; taper gradually.",
    "Use with caution in the elderly.",
    "May increase risk of bleeding with anticoagulants.",
    "Caution in patients with a history of seizures.",
    "Assess cardiac function before initiating therapy.",
    "Maintain adequate hydration during therapy.",
    "Use with caution in patients with asthma.",
    "May impair glucose control in diabetic patients.",
    "Avoid prolonged sun exposure during therapy.",
    "Use lowest effective dose for the shortest duration.",
    "Not recommended during the first trimester of pregnancy.",
]

_POPULATIONS = ["General", "Elderly", "Renal impairment", "Hepatic impairment", "Pregnancy", "Pediatric"]

_AE_FREQUENCIES = ["common", "uncommon", "rare", "very rare"]

_RISK_NOTES = [
    "Do not use in patients with known hypersensitivity.",
    "Avoid use in severe hepatic disease.",
    "Avoid use in severe renal failure.",
    "Do not combine with MAO inhibitors.",
    "Avoid in patients with active bleeding.",
    "Do not use during pregnancy.",
    "Avoid in children under 2 years of age.",
    "Do not use with concurrent live vaccines.",
]

_BBW_TEXTS = [
    "Increased risk of serious cardiovascular thrombotic events.",
    "Risk of severe hepatotoxicity; monitor liver function.",
    "May cause fetal harm when administered to pregnant women.",
    "Risk of life-threatening respiratory depression.",
    "Increased mortality in elderly patients with dementia-related psychosis.",
    "Serious infections leading to hospitalization may occur.",
    "Risk of suicidal thoughts and behaviors in young adults.",
    "Severe neutropenia may occur; monitor blood counts.",
]

_DOSAGE_TEMPLATES = [
    "initial, {amount} {unit} {route} {freq}; titrate to response",
    "{amount} {unit} {route} {freq}",
    "maintenance, {amount} {unit} {route} {freq}; maximum {maximum} {unit}/day",
]

#: Frequencies used for dosage rows (bounded so dosage descriptions stay
#: categorical, as curated dosing text is in a real drug reference).
_DOSAGE_FREQ_COUNT = 6
_DOSAGE_DURATIONS = ["ongoing", "7 days", "14 days", "until resolution", "as directed"]

_ADJ_DESCRIPTIONS = [
    "Reduce dose by 50% in severe impairment.",
    "Extend dosing interval to every 24 hours.",
    "Avoid use when clearance is severely reduced.",
    "No adjustment required for mild impairment.",
    "Reduce initial dose and titrate slowly.",
    "Maximum daily dose should not be exceeded.",
]

_CRCL_THRESHOLDS = ["CrCl < 30 mL/min", "CrCl 30-60 mL/min", "CrCl < 15 mL/min", "CrCl < 50 mL/min"]
_CHILD_PUGH = ["Child-Pugh A", "Child-Pugh B", "Child-Pugh C"]

_INTERACTION_DESCRIPTIONS = [
    "Concurrent use may increase plasma concentrations.",
    "Concurrent use may decrease therapeutic effect.",
    "Combination increases risk of bleeding.",
    "Combination may prolong the QT interval.",
    "Concurrent use may increase CNS depression.",
    "Combination increases risk of hyperkalemia.",
    "Absorption is reduced when taken together.",
    "Combination may increase risk of myopathy.",
]

_MECHANISMS = [
    "CYP3A4 inhibition", "CYP2D6 inhibition", "CYP450 induction",
    "additive pharmacodynamic effect", "chelation in the gut",
    "protein-binding displacement", "reduced renal clearance",
    "P-glycoprotein inhibition",
]

_LAB_EFFECTS = [
    "may increase the measured value", "may decrease the measured value",
    "may interfere with the assay", "requires more frequent monitoring",
]

_IV_COMPATIBILITY = ["Compatible", "Incompatible", "Variable", "Not tested"]

_IV_NOTES = [
    "Stable for 24 hours at room temperature.",
    "Precipitation observed within 4 hours.",
    "Compatible via Y-site administration only.",
    "Protect admixture from light.",
    "Use within 6 hours of preparation.",
]

_ADMIN_INSTRUCTIONS = [
    "Administer with a full glass of water.",
    "Administer on an empty stomach.",
    "Infuse over 30 to 60 minutes.",
    "Apply a thin layer to the affected area.",
    "Shake well before use.",
    "Administer at the same time each day.",
    "Do not crush or chew.",
    "Rotate injection sites.",
    "Rinse mouth after inhalation.",
    "Administer with food to reduce stomach upset.",
]

_REG_STATUSES = ["Approved", "Approved (OTC available)", "Approved (Rx only)", "Discontinued"]

_ABSORPTION = [
    "Rapidly absorbed; peak in 1-2 hours.",
    "Slowly absorbed; peak in 4-6 hours.",
    "Poor oral bioavailability; given parenterally.",
    "Well absorbed; food delays absorption.",
    "Minimal systemic absorption after topical use.",
]
_METABOLISM = [
    "Hepatic via CYP3A4.", "Hepatic via CYP2D6.", "Hepatic glucuronidation.",
    "Minimal hepatic metabolism.", "Extensive first-pass metabolism.",
]
_HALF_LIFE = ["2-4 hours", "4-6 hours", "6-12 hours", "12-24 hours", "24-48 hours", "over 48 hours"]
_EXCRETION = ["Renal, mostly unchanged.", "Renal as metabolites.", "Biliary/fecal.", "Mixed renal and fecal."]

_TOX_MANAGEMENT = [
    "Supportive care; monitor vital signs.",
    "Gastric decontamination if recent ingestion.",
    "Hemodialysis may enhance elimination.",
    "Administer specific antidote and monitor.",
    "Continuous cardiac monitoring is recommended.",
]

_MONITORING_NOTES = [
    "at baseline and every 3 months", "weekly during initiation",
    "at every visit", "annually", "after each dose change",
]

_MOA_BY_TC = {
    "Cardiovascular Agent": "Modulates vascular tone and cardiac workload.",
    "Central Nervous System Agent": "Alters neurotransmitter signaling in the CNS.",
    "Anti-Infective Agent": "Inhibits growth or survival of the pathogen.",
    "Dermatologic Agent": "Normalizes epidermal proliferation and inflammation.",
    "Gastrointestinal Agent": "Modifies gastric secretion or GI motility.",
    "Endocrine-Metabolic Agent": "Modulates hormonal or metabolic pathways.",
    "Respiratory Agent": "Relaxes airway smooth muscle or reduces inflammation.",
    "Musculoskeletal Agent": "Reduces inflammation in joints and muscles.",
    "Ophthalmic Agent": "Reduces intraocular pressure or ocular inflammation.",
    "Genitourinary Agent": "Modulates urogenital smooth muscle tone.",
    "Hematologic Agent": "Alters coagulation or blood cell production.",
    "Immunologic Agent": "Modulates immune system activity.",
}

_TARGETS = [
    "Cyclooxygenase", "Beta-adrenergic receptor", "Angiotensin system",
    "HMG-CoA reductase", "Serotonin transporter", "GABA-A receptor",
    "Proton pump", "Histamine receptor", "Sodium channel",
    "Bacterial cell wall synthesis", "DNA gyrase", "Retinoid receptor",
]

_EDUCATION = [
    "Take exactly as prescribed; do not skip doses.",
    "Report any unusual bleeding or bruising.",
    "Avoid alcohol while taking this medication.",
    "Do not stop taking without consulting your provider.",
    "Store out of reach of children.",
    "Report rash or difficulty breathing immediately.",
    "Use sun protection while on this medication.",
    "Keep a list of all your medications with you.",
]

_EVIDENCE_SUMMARIES = [
    "Randomized trials demonstrate significant benefit.",
    "Meta-analysis shows moderate effect size.",
    "Open-label studies suggest benefit.",
    "Evidence limited to observational cohorts.",
    "Guideline-endorsed first-line therapy.",
    "Second-line option when first-line fails.",
]

_TRIAL_PHASES = ["Phase I", "Phase II", "Phase III", "Phase IV"]
_TRIAL_OUTCOMES = [
    "Met primary endpoint.", "Failed primary endpoint.",
    "Showed non-inferiority.", "Stopped early for benefit.",
    "Ongoing; interim results favorable.",
]

_WARNING_TEXTS = [
    "May cause dizziness; do not operate machinery.",
    "Keep out of reach of children.",
    "Do not use after the expiration date.",
    "Consult a physician before use if pregnant.",
    "Discontinue and seek help if allergic reaction occurs.",
]

_LACTATION_LEVELS = ["Compatible", "Use caution", "Avoid", "No data"]

_ICD_PREFIXES = ["A", "B", "E", "F", "G", "I", "J", "K", "L", "M", "N", "R"]

_CONDITION_DESCRIPTIONS = [
    "Common condition managed in primary care.",
    "Chronic condition requiring long-term therapy.",
    "Acute condition; short-course therapy is typical.",
    "Condition with significant quality-of-life impact.",
    "Condition requiring specialist management.",
]

_DRUG_DESCRIPTIONS = [
    "Widely used agent with a well-characterized profile.",
    "Established therapy with decades of clinical use.",
    "Newer agent with growing clinical experience.",
    "Agent reserved for refractory cases.",
    "First-line option in current guidelines.",
]


def populate_mdx(
    database: Database | None = None,
    config: GeneratorConfig | None = None,
) -> Database:
    """Create the schema (when needed) and fill it with synthetic data."""
    config = config or GeneratorConfig()
    rng = random.Random(config.seed)
    db = database or create_mdx_schema()

    # -- reference data -----------------------------------------------------
    drugs = vocab.DRUGS[: config.max_drugs] if config.max_drugs else vocab.DRUGS
    conditions = (
        vocab.CONDITIONS[: config.max_conditions]
        if config.max_conditions
        else vocab.CONDITIONS
    )
    class_names = sorted({d[2] for d in drugs})
    class_ids = {}
    for i, name in enumerate(class_names, start=1):
        db.insert("drug_class", {"class_id": i, "name": name, "description": f"Drugs of the {name} class."})
        class_ids[name] = i
    tc_ids = {}
    for i, name in enumerate(vocab.THERAPEUTIC_CLASSES, start=1):
        db.insert("therapeutic_class", {"tc_id": i, "name": name, "description": f"{name}s."})
        tc_ids[name] = i
    for i, (name, country) in enumerate(vocab.MANUFACTURERS, start=1):
        db.insert("manufacturer", {"mfr_id": i, "name": name, "country": country})
    age_bounds = {"Adult": (18.0, 64.0), "Pediatric": (2.0, 17.0), "Geriatric": (65.0, 120.0), "Neonatal": (0.0, 0.1)}
    for i, name in enumerate(vocab.AGE_GROUPS, start=1):
        low, high = age_bounds[name]
        db.insert("age_group", {"age_group_id": i, "name": name, "description": f"{name} patients.", "min_age_years": low, "max_age_years": high})
    route_ids = {}
    for i, name in enumerate(vocab.ROUTES, start=1):
        db.insert("route", {"route_id": i, "name": name, "description": f"{name} administration.", "abbreviation": name[:2].upper()})
        route_ids[name] = i
    for i, name in enumerate(vocab.SEVERITIES, start=1):
        db.insert("severity", {"severity_id": i, "name": name, "rank": i, "description": f"{name} severity."})
    for i, name in enumerate(vocab.EFFICACIES, start=1):
        db.insert("efficacy", {"efficacy_id": i, "name": name, "description": f"Evidence rating: {name}.", "rank": i})
    for i, (name, desc) in enumerate(vocab.PREGNANCY_CATEGORIES, start=1):
        db.insert("pregnancy_category", {"pc_id": i, "name": name, "description": desc})
    for i, name in enumerate(vocab.IV_SOLUTIONS, start=1):
        db.insert("iv_solution", {"solution_id": i, "name": name, "concentration": name.split()[-1]})
    specimen_names = sorted({s for _, s, _ in vocab.LAB_TESTS})
    specimen_ids = {}
    for i, name in enumerate(specimen_names, start=1):
        db.insert("specimen_type", {"specimen_id": i, "name": name, "description": f"{name} specimen."})
        specimen_ids[name] = i
    for i, (name, specimen, units) in enumerate(vocab.LAB_TESTS, start=1):
        db.insert("lab_test", {"lab_test_id": i, "name": name, "units": units, "specimen_id": specimen_ids[specimen]})
    for i, name in enumerate(vocab.FOOD_ITEMS, start=1):
        db.insert("food_item", {"food_id": i, "name": name, "category": "Dietary"})
    for i, name in enumerate(vocab.MONITOR_PARAMETERS, start=1):
        db.insert("monitor_parameter", {"param_id": i, "name": name, "description": f"Monitor {name.lower()}."})
    for i, name in enumerate(vocab.ALLERGENS, start=1):
        db.insert("allergen", {"allergen_id": i, "name": name, "cross_reactivity": "Possible cross-reactivity within the class."})
    for i, name in enumerate(vocab.STORAGE_CONDITIONS, start=1):
        db.insert("storage_condition", {"storage_id": i, "name": name, "instructions": name + "."})
    form_ids = {}
    for i, name in enumerate(vocab.DOSAGE_FORMS, start=1):
        db.insert("dosage_form", {"form_id": i, "name": name, "description": f"{name} dosage form."})
        form_ids[name] = i
    for i, (code, meaning) in enumerate(vocab.FREQUENCIES, start=1):
        times = {"QD": 1.0, "BID": 2.0, "TID": 3.0, "QID": 4.0, "Q4H": 6.0, "Q6H": 4.0, "Q8H": 3.0, "QHS": 1.0, "PRN": 0.0, "QWK": 1.0 / 7.0}
        db.insert("frequency_schedule", {"freq_id": i, "name": code, "meaning": meaning, "times_per_day": times.get(code)})
    unit_ids = {}
    for i, name in enumerate(vocab.DOSE_UNITS, start=1):
        db.insert("dose_unit", {"unit_id": i, "name": name, "description": f"Dose expressed in {name}."})
        unit_ids[name] = i
    schedule_ids = {}
    for i, (name, desc) in enumerate(vocab.SCHEDULE_CLASSES, start=1):
        db.insert("schedule_class", {"schedule_id": i, "name": name, "description": desc})
        schedule_ids[name] = i
    for i, name in enumerate(vocab.EVIDENCE_STRENGTHS, start=1):
        db.insert("evidence_strength", {"strength_id": i, "name": name, "description": f"Strength of evidence: {name}.", "rank": i})
    for i, name in enumerate(vocab.DOCUMENTATION_LEVELS, start=1):
        db.insert("documentation_level", {"doc_level_id": i, "name": name, "description": f"Documentation: {name}.", "rank": i})
    for i, name in enumerate(vocab.REFERENCE_SOURCES, start=1):
        db.insert("reference_source", {"source_id": i, "name": name, "publisher": "Various"})
    for i, (name, desc) in enumerate(vocab.PRICE_TIERS, start=1):
        db.insert("price_tier", {"tier_id": i, "name": name, "description": desc})
    for i, name in enumerate(vocab.OVERDOSE_SYMPTOMS, start=1):
        db.insert("overdose_symptom", {"symptom_id": i, "name": name, "description": f"{name} after overdose."})
    for i, (name, used_for) in enumerate(vocab.ANTIDOTES, start=1):
        db.insert("antidote", {"antidote_id": i, "name": name, "used_for": used_for})
    for i, name in enumerate(vocab.GUIDELINES, start=1):
        db.insert("guideline", {"guideline_id": i, "name": name, "organization": name.split()[0], "year": 2010 + (i % 10)})

    # -- drugs -------------------------------------------------------------------
    tc_by_class = _therapeutic_class_for
    drug_ids: dict[str, int] = {}
    for i, (generic, brand, drug_class, base_salt) in enumerate(drugs, start=1):
        schedule = "Rx"
        if drug_class in ("Opioid Analgesic",):
            schedule = "C-II"
        elif drug_class in ("Benzodiazepine", "Sedative-Hypnotic"):
            schedule = "C-IV"
        elif drug_class in ("Antacid", "Antihistamine", "Analgesic", "NSAID", "Expectorant", "Keratolytic") and rng.random() < 0.6:
            schedule = "OTC"
        db.insert(
            "drug",
            {
                "drug_id": i,
                "name": generic,
                "base_salt": base_salt,
                "description": rng.choice(_DRUG_DESCRIPTIONS),
                "class_id": class_ids[drug_class],
                "tc_id": tc_ids[tc_by_class(drug_class)],
                "mfr_id": rng.randint(1, len(vocab.MANUFACTURERS)),
                "pc_id": rng.randint(1, len(vocab.PREGNANCY_CATEGORIES)),
                "schedule_id": schedule_ids[schedule],
                "tier_id": rng.randint(1, len(vocab.PRICE_TIERS)),
            },
        )
        drug_ids[generic] = i
        db.insert("brand", {"brand_id": i, "drug_id": i, "name": brand, "country": "United States"})

    # -- indications & findings ---------------------------------------------------
    indication_ids: dict[str, int] = {}
    for i, (name, _classes) in enumerate(conditions, start=1):
        db.insert(
            "indication",
            {
                "indication_id": i,
                "name": name,
                "icd_code": f"{rng.choice(_ICD_PREFIXES)}{rng.randint(10, 99)}.{rng.randint(0, 9)}",
                "description": rng.choice(_CONDITION_DESCRIPTIONS),
            },
        )
        indication_ids[name] = i
    for i, name in enumerate(vocab.FINDINGS, start=1):
        db.insert("finding", {"finding_id": i, "name": name, "description": f"Clinical finding: {name.lower()}."})

    # -- treats / prevents / off-label junctions ------------------------------------
    class_of = {d[0]: d[2] for d in drugs}
    treat_pairs: list[tuple[int, int]] = []
    for cond_name, classes in conditions:
        cond_id = indication_ids[cond_name]
        for generic, drug_id in drug_ids.items():
            if class_of[generic] in classes:
                db.insert("treats", {"drug_id": drug_id, "indication_id": cond_id})
                treat_pairs.append((drug_id, cond_id))
    all_cond_ids = list(indication_ids.values())
    seen_off_label: set[tuple[int, int]] = set(treat_pairs)
    for generic, drug_id in drug_ids.items():
        if rng.random() < 0.35:
            cond_id = rng.choice(all_cond_ids)
            if (drug_id, cond_id) not in seen_off_label:
                seen_off_label.add((drug_id, cond_id))
                db.insert("off_label_treats", {"drug_id": drug_id, "indication_id": cond_id})
    prevent_classes = {"Statin", "Anticoagulant", "Antiplatelet", "Bisphosphonate", "Triptan"}
    seen_prevents: set[tuple[int, int]] = set()
    for generic, drug_id in drug_ids.items():
        if class_of[generic] in prevent_classes:
            cond_id = rng.choice(all_cond_ids)
            if (drug_id, cond_id) not in seen_prevents:
                seen_prevents.add((drug_id, cond_id))
                db.insert("prevents", {"drug_id": drug_id, "indication_id": cond_id})
    n_findings = len(vocab.FINDINGS)
    seen_causes: set[tuple[int, int]] = set()
    for generic, drug_id in drug_ids.items():
        for _ in range(rng.randint(0, 2)):
            pair = (drug_id, rng.randint(1, n_findings))
            if pair not in seen_causes:
                seen_causes.add(pair)
                db.insert("causes_finding", {"drug_id": pair[0], "finding_id": pair[1]})
    seen_presents: set[tuple[int, int]] = set()
    for cond_id in all_cond_ids:
        for _ in range(rng.randint(1, 3)):
            pair = (cond_id, rng.randint(1, n_findings))
            if pair not in seen_presents:
                seen_presents.add(pair)
                db.insert("presents_with", {"indication_id": pair[0], "finding_id": pair[1]})

    # -- per-drug information ----------------------------------------------------------
    counters = {"precaution": 0, "ae": 0, "risk": 0, "adjustment": 0,
                "interaction": 0, "compat": 0, "admin": 0, "formulation": 0,
                "monitoring": 0, "cross": 0, "trial": 0, "evidence": 0}

    def next_id(key: str) -> int:
        counters[key] += 1
        return counters[key]

    topical_classes = {
        "Topical Retinoid", "Topical Corticosteroid", "Topical Antibacterial",
        "Keratolytic", "Topical Antibiotic", "Vitamin D Analog",
    }
    iv_classes = {
        "Glycopeptide Antibiotic", "Aminoglycoside Antibiotic",
        "Cephalosporin Antibiotic", "Opioid Analgesic", "Antiemetic",
        "Loop Diuretic", "Antiarrhythmic", "Systemic Corticosteroid",
    }
    all_drug_ids = list(drug_ids.values())
    n_units = len(vocab.DOSE_UNITS)
    n_freqs = len(vocab.FREQUENCIES)
    n_severities = len(vocab.SEVERITIES)
    n_doc_levels = len(vocab.DOCUMENTATION_LEVELS)

    dosage_id = 0
    for generic, drug_id in drug_ids.items():
        drug_class = class_of[generic]
        route = "Topical" if drug_class in topical_classes else (
            "Intravenous" if drug_class in iv_classes and rng.random() < 0.5 else "Oral"
        )

        for _ in range(rng.randint(*config.precautions_per_drug)):
            db.insert("precaution", {
                "precaution_id": next_id("precaution"), "drug_id": drug_id,
                "description": rng.choice(_PRECAUTION_POOL),
                "population": rng.choice(_POPULATIONS),
            })
        for name in rng.sample(vocab.ADVERSE_EFFECTS, rng.randint(*config.adverse_effects_per_drug)):
            db.insert("adverse_effect", {
                "ae_id": next_id("ae"), "drug_id": drug_id, "name": name,
                "frequency": rng.choice(_AE_FREQUENCIES),
                "severity_id": rng.randint(1, n_severities),
            })
        for _ in range(rng.randint(0, 2)):
            risk_id = next_id("risk")
            is_bbw = rng.random() < 0.35
            db.insert("risk", {
                "risk_id": risk_id, "drug_id": drug_id,
                "name": "Black Box Warning" if is_bbw else "Contraindication",
                "description": rng.choice(_RISK_NOTES),
            })
            if is_bbw:
                db.insert("black_box_warning", {"risk_id": risk_id, "warning_text": rng.choice(_BBW_TEXTS)})
            else:
                db.insert("contra_indication", {"risk_id": risk_id, "note": rng.choice(_RISK_NOTES)})
        for _ in range(rng.randint(0, 2)):
            adj_id = next_id("adjustment")
            db.insert("dose_adjustment", {
                "adjustment_id": adj_id, "drug_id": drug_id,
                "description": rng.choice(_ADJ_DESCRIPTIONS),
            })
            if rng.random() < 0.5:
                db.insert("renal_adjustment", {
                    "adjustment_id": adj_id,
                    "crcl_threshold": rng.choice(_CRCL_THRESHOLDS),
                    "recommendation": rng.choice(_ADJ_DESCRIPTIONS),
                })
            else:
                db.insert("hepatic_adjustment", {
                    "adjustment_id": adj_id,
                    "child_pugh_class": rng.choice(_CHILD_PUGH),
                    "recommendation": rng.choice(_ADJ_DESCRIPTIONS),
                })
        for _ in range(rng.randint(*config.interactions_per_drug)):
            interaction_id = next_id("interaction")
            flavor = rng.random()
            name = "Drug-Drug Interaction" if flavor < 0.5 else (
                "Drug-Food Interaction" if flavor < 0.75 else (
                    "Drug-Lab Interaction" if flavor < 0.9 else "General Interaction"
                )
            )
            db.insert("drug_interaction", {
                "interaction_id": interaction_id, "drug_id": drug_id,
                "name": name,
                "description": rng.choice(_INTERACTION_DESCRIPTIONS),
                "severity_id": rng.randint(1, n_severities),
                "doc_level_id": rng.randint(1, n_doc_levels),
            })
            if flavor < 0.5:
                other = rng.choice(all_drug_ids)
                db.insert("drug_drug_interaction", {
                    "interaction_id": interaction_id,
                    "interacting_drug_id": other,
                    "mechanism": rng.choice(_MECHANISMS),
                })
            elif flavor < 0.75:
                db.insert("drug_food_interaction", {
                    "interaction_id": interaction_id,
                    "food_id": rng.randint(1, len(vocab.FOOD_ITEMS)),
                    "mechanism": rng.choice(_MECHANISMS),
                })
            elif flavor < 0.9:
                db.insert("drug_lab_interaction", {
                    "interaction_id": interaction_id,
                    "lab_test_id": rng.randint(1, len(vocab.LAB_TESTS)),
                    "effect": rng.choice(_LAB_EFFECTS),
                })
            # flavor >= 0.9: parent-only row → inheritance, not union.
        if route == "Intravenous" or drug_class in iv_classes:
            for solution_id in rng.sample(range(1, len(vocab.IV_SOLUTIONS) + 1), rng.randint(1, 3)):
                db.insert("iv_compatibility", {
                    "compat_id": next_id("compat"), "drug_id": drug_id,
                    "solution_id": solution_id,
                    "compatibility": rng.choice(_IV_COMPATIBILITY),
                    "notes": rng.choice(_IV_NOTES),
                })
        db.insert("administration", {
            "admin_id": next_id("admin"), "drug_id": drug_id,
            "route_id": route_ids[route],
            "instructions": rng.choice(_ADMIN_INSTRUCTIONS),
        })
        db.insert("regulatory_status", {
            "status_id": drug_id, "drug_id": drug_id,
            "status": rng.choice(_REG_STATUSES),
            "approval_year": rng.randint(1950, 2018), "region": "United States",
        })
        db.insert("pharmacokinetics", {
            "pk_id": drug_id, "drug_id": drug_id,
            "absorption": rng.choice(_ABSORPTION),
            "metabolism": rng.choice(_METABOLISM),
            "half_life": rng.choice(_HALF_LIFE),
            "excretion": rng.choice(_EXCRETION),
            "protein_binding": rng.choice(["< 20%", "20-50%", "50-90%", "> 90%"]),
            "bioavailability": rng.choice(["10-30%", "30-60%", "60-90%", "> 90%"]),
        })
        db.insert("toxicology", {
            "tox_id": drug_id, "drug_id": drug_id,
            "symptom_id": rng.randint(1, len(vocab.OVERDOSE_SYMPTOMS)),
            "management": rng.choice(_TOX_MANAGEMENT),
            "antidote_id": rng.randint(1, len(vocab.ANTIDOTES)) if rng.random() < 0.4 else None,
        })
        for _ in range(rng.randint(1, 2)):
            db.insert("monitoring", {
                "monitoring_id": next_id("monitoring"), "drug_id": drug_id,
                "param_id": rng.randint(1, len(vocab.MONITOR_PARAMETERS)),
                "frequency_note": rng.choice(_MONITORING_NOTES),
            })
        db.insert("storage", {
            "storage_rec_id": drug_id, "drug_id": drug_id,
            "storage_id": rng.randint(1, len(vocab.STORAGE_CONDITIONS)),
            "note": "See label for full storage details.",
        })
        db.insert("mechanism_of_action", {
            "moa_id": drug_id, "drug_id": drug_id,
            "description": _MOA_BY_TC[tc_by_class(drug_class)],
            "target": rng.choice(_TARGETS),
        })
        db.insert("patient_education", {
            "edu_id": drug_id, "drug_id": drug_id,
            "instructions": rng.choice(_EDUCATION),
        })
        if rng.random() < 0.3:
            db.insert("allergy_cross_sensitivity", {
                "cross_id": next_id("cross"), "drug_id": drug_id,
                "allergen_id": rng.randint(1, len(vocab.ALLERGENS)),
                "note": "Screen for allergy history before administration.",
            })
        db.insert("dialysis_guidance", {
            "dialysis_id": drug_id, "drug_id": drug_id,
            "dialyzable": rng.random() < 0.4,
            "note": "Consider supplemental dose after hemodialysis."
            if rng.random() < 0.5 else "No supplemental dose required.",
        })
        db.insert("warning_label", {
            "label_id": drug_id, "drug_id": drug_id,
            "text": rng.choice(_WARNING_TEXTS), "region": "United States",
        })
        db.insert("lactation_risk", {
            "lact_id": drug_id, "drug_id": drug_id,
            "risk_level": rng.choice(_LACTATION_LEVELS),
            "note": "Weigh benefits against potential infant exposure.",
        })
        if rng.random() < 0.5:
            db.insert("strength_formulation", {
                "formulation_id": next_id("formulation"), "drug_id": drug_id,
                "form_id": form_ids["Cream" if route == "Topical" else ("Injection Solution" if route == "Intravenous" else "Tablet")],
                "strength": float(rng.choice([0.05, 0.1, 5, 10, 20, 25, 50, 100, 250, 500])),
                "unit_id": unit_ids["%" if route == "Topical" else "mg"],
            })

    # -- dosage rows per treat edge ------------------------------------------------------
    age_adult, age_pediatric = 1, 2
    for drug_id, cond_id in treat_pairs:
        for age_group_id in ([age_adult, age_pediatric] if rng.random() < 0.7 else [age_adult]):
            dosage_id += 1
            generic = next(g for g, i in drug_ids.items() if i == drug_id)
            drug_class = class_of[generic]
            is_topical = drug_class in topical_classes
            amount = rng.choice([0.05, 0.1] if is_topical else [10, 25, 50, 100])
            unit = "%" if is_topical else "mg"
            freq_idx = rng.randint(1, min(_DOSAGE_FREQ_COUNT, n_freqs))
            freq_meaning = vocab.FREQUENCIES[freq_idx - 1][1]
            route_name = "TOPICALLY" if is_topical else "ORALLY"
            template = rng.choice(_DOSAGE_TEMPLATES)
            description = template.format(
                amount=amount, unit=unit, route=route_name, freq=freq_meaning,
                maximum=amount * 2,
            )
            db.insert("dosage", {
                "dosage_id": dosage_id, "drug_id": drug_id,
                "indication_id": cond_id, "age_group_id": age_group_id,
                "route_id": route_ids["Topical" if is_topical else "Oral"],
                "description": description, "amount": float(amount),
                "max_daily": float(amount) * 2,
                "duration": rng.choice(_DOSAGE_DURATIONS),
                "unit_id": unit_ids[unit], "freq_id": freq_idx,
            })

    # -- clinical evidence / trials / guideline recommendations -----------------------------
    for drug_id, cond_id in treat_pairs:
        db.insert("clinical_evidence", {
            "evidence_id": next_id("evidence"), "drug_id": drug_id,
            "indication_id": cond_id,
            "efficacy_id": rng.randint(1, len(vocab.EFFICACIES)),
            "strength_id": rng.randint(1, len(vocab.EVIDENCE_STRENGTHS)),
            "source_id": rng.randint(1, len(vocab.REFERENCE_SOURCES)),
            "summary": rng.choice(_EVIDENCE_SUMMARIES),
        })
        if rng.random() < 0.15:
            db.insert("clinical_trial", {
                "trial_id": next_id("trial"), "drug_id": drug_id,
                "indication_id": cond_id,
                "phase": rng.choice(_TRIAL_PHASES),
                "outcome": rng.choice(_TRIAL_OUTCOMES),
            })
    for rec_id, guideline_idx in enumerate(range(1, len(vocab.GUIDELINES) + 1), start=1):
        drug_id, cond_id = rng.choice(treat_pairs)
        db.insert("guideline_recommendation", {
            "rec_id": rec_id, "guideline_id": guideline_idx,
            "drug_id": drug_id, "indication_id": cond_id,
            "recommendation": "Recommended as part of standard therapy.",
        })
    return db


def _therapeutic_class_for(drug_class: str) -> str:
    """Map a pharmacologic class to its broad therapeutic class."""
    mapping = {
        "Cardiovascular Agent": {
            "ACE Inhibitor", "ARB", "Beta Blocker", "Calcium Channel Blocker",
            "Statin", "Cardiac Glycoside", "Antiarrhythmic", "Loop Diuretic",
            "Thiazide Diuretic", "Potassium-Sparing Diuretic", "Nitrate",
        },
        "Hematologic Agent": {"Anticoagulant", "Antiplatelet", "Iron Supplement"},
        "Central Nervous System Agent": {
            "Opioid Analgesic", "Analgesic", "SSRI", "SNRI",
            "Atypical Antidepressant", "Benzodiazepine", "Sedative-Hypnotic",
            "Anticonvulsant", "Anticholinergic", "Nootropic", "Triptan",
            "Atypical Antipsychotic", "Mood Stabilizer", "Cholinesterase Inhibitor",
        },
        "Anti-Infective Agent": {
            "Penicillin Antibiotic", "Macrolide Antibiotic",
            "Fluoroquinolone Antibiotic", "Tetracycline Antibiotic",
            "Cephalosporin Antibiotic", "Lincosamide Antibiotic",
            "Nitroimidazole Antibiotic", "Glycopeptide Antibiotic",
            "Aminoglycoside Antibiotic", "Urinary Anti-infective",
            "Azole Antifungal", "Antiviral", "Antimalarial", "Topical Antibiotic",
        },
        "Dermatologic Agent": {
            "Topical Retinoid", "Topical Corticosteroid", "Vitamin D Analog",
            "Oral Retinoid", "Topical Antibacterial", "Keratolytic",
        },
        "Gastrointestinal Agent": {
            "Proton Pump Inhibitor", "H2 Blocker", "Antiemetic", "Prokinetic",
            "Antidiarrheal", "Antacid", "Mucosal Protectant", "Stool Softener",
            "Osmotic Laxative", "Pancreatic Enzyme",
        },
        "Endocrine-Metabolic Agent": {
            "Biguanide", "Sulfonylurea", "Long-Acting Insulin",
            "DPP-4 Inhibitor", "SGLT2 Inhibitor", "Thyroid Hormone",
            "Systemic Corticosteroid", "Bisphosphonate", "Calcium Supplement",
            "Electrolyte Supplement", "Vitamin",
        },
        "Respiratory Agent": {
            "Beta-2 Agonist", "Leukotriene Antagonist", "Inhaled Corticosteroid",
            "Anticholinergic Bronchodilator", "Antihistamine", "Expectorant",
        },
        "Musculoskeletal Agent": {
            "NSAID", "Xanthine Oxidase Inhibitor", "Anti-Gout Agent",
            "Antimetabolite",
        },
        "Ophthalmic Agent": {
            "Cycloplegic", "Prostaglandin Analog", "Ophthalmic Beta Blocker",
        },
        "Genitourinary Agent": {
            "Alpha Blocker", "5-Alpha-Reductase Inhibitor", "PDE5 Inhibitor",
        },
        "Immunologic Agent": {"TNF Inhibitor", "Immunosuppressant"},
    }
    for tc, classes in mapping.items():
        if drug_class in classes:
            return tc
    return "Central Nervous System Agent"
