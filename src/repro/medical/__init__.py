"""The Micromedex (MDX) use case — §6 of the paper.

The paper deploys the ontology-driven pipeline over IBM Micromedex, a
proprietary evidence-based drug-reference KB.  We substitute a
deterministic, seeded synthetic medical KB built from public drug and
condition names, with the same structural features: a drug-centric
schema with PK/FK constraints, union semantics (Risk = Contra Indication
∪ Black Box Warning; Dose Adjustment = Renal ∪ Hepatic), inheritance
(Drug Interaction ⊃ drug-drug / drug-food / drug-lab), junction-table
relationships (treats, prevents, ...), brand/base-salt synonyms, and
categorical attribute tables.

* :mod:`repro.medical.vocabulary` — public drug/condition/etc. name lists,
* :mod:`repro.medical.schema` — the MDX relational schema (≥59 concepts),
* :mod:`repro.medical.generator` — the seeded data generator,
* :mod:`repro.medical.knowledge` — SME artifacts: synonyms, glossary,
  prior user queries, intent renames,
* :mod:`repro.medical.build` — one-call constructors for the KB, the
  ontology, the conversation space and the Conversational MDX agent.
"""

from repro.medical.build import (
    build_mdx_agent,
    build_mdx_database,
    build_mdx_ontology,
    build_mdx_space,
    rename_to_paper_intents,
)
from repro.medical.generator import GeneratorConfig, populate_mdx
from repro.medical.schema import create_mdx_schema

__all__ = [
    "GeneratorConfig",
    "build_mdx_agent",
    "build_mdx_database",
    "build_mdx_ontology",
    "build_mdx_space",
    "create_mdx_schema",
    "rename_to_paper_intents",
    "populate_mdx",
]
