"""ASCII renderers for the paper's tables and bar figures."""

from __future__ import annotations

from typing import Sequence

from repro.eval.success import IntentSuccess


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a simple aligned text table."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_bar_figure(
    successes: Sequence[IntentSuccess],
    title: str,
    width: int = 46,
) -> str:
    """Render a Figure 11/12-style horizontal bar chart.

    Bar length is proportional to interaction count; the shaded tail
    marks the negative share; the success rate is printed at the right.
    """
    if not successes:
        return f"{title}\n(no interactions)"
    label_width = max(len(s.intent) for s in successes)
    max_count = max(s.interactions for s in successes)
    lines = [title]
    for s in successes:
        bar_len = max(1, round(width * s.interactions / max_count))
        neg_len = min(bar_len, round(bar_len * s.negative / max(s.interactions, 1)))
        pos_len = bar_len - neg_len
        bar = "█" * pos_len + "░" * neg_len
        lines.append(
            f"{s.intent.ljust(label_width)} |{bar.ljust(width)}| "
            f"{s.success_rate * 100:5.1f}%  (n={s.interactions})"
        )
    lines.append(f"{'':{label_width}}  {'█ positive  ░ negative':{width}}")
    return "\n".join(lines)
