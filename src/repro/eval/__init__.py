"""Evaluation harness for §7 of the paper.

* :mod:`repro.eval.workload` — a seeded workload simulator producing the
  7-month usage mix of Table 5 (intent frequencies, keyword-style
  queries, misspellings, gibberish),
* :mod:`repro.eval.simulate` — replays the workload against an agent,
  with a user-feedback model (thumbs up/down) and an SME-judgement
  model, yielding the interaction log of §7.2,
* :mod:`repro.eval.success` — Equation 1 success rates, total and
  per-intent,
* :mod:`repro.eval.classifier_eval` — the §7.1 bootstrapping evaluation
  (stratified split → per-intent F1, Table 5),
* :mod:`repro.eval.reports` — ASCII renderers for the paper's tables and
  bar figures,
* :mod:`repro.eval.ablation` — ablations of the design choices
  (training volume, SME augmentation, synonyms, persistent context).
"""

from repro.eval.classifier_eval import evaluate_bootstrap_classifier
from repro.eval.reports import render_bar_figure, render_table
from repro.eval.simulate import SimulationResult, simulate_usage
from repro.eval.success import per_intent_success, success_rate
from repro.eval.workload import PAPER_USAGE_MIX, SimulatedQuery, WorkloadGenerator

__all__ = [
    "PAPER_USAGE_MIX",
    "SimulatedQuery",
    "SimulationResult",
    "WorkloadGenerator",
    "evaluate_bootstrap_classifier",
    "per_intent_success",
    "render_bar_figure",
    "render_table",
    "simulate_usage",
    "success_rate",
]
