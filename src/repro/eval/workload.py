"""Seeded workload simulator.

Substitutes the paper's 7 months of real clinician traffic (§7.2).  The
generated mix matches Table 5's reported intent frequencies, and the
noise channels reproduce the behaviours the paper observed: keyword-only
queries ("cogentin"), heavy misspellings, gibberish ("apfjhd"),
synonym-heavy phrasings ("side effects" for adverse effects), and
management chatter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bootstrap.space import ConversationSpace
from repro.bootstrap.training import instance_values

#: Table 5 usage mix (intent name → share of interactions).  The listed
#: top-10 account for 75%; the remainder spreads over the other intents.
PAPER_USAGE_MIX: dict[str, float] = {
    "Drug Dosage for Condition": 0.15,
    "Administration of Drug": 0.12,
    "IV Compatibility of Drug": 0.11,
    "Drugs That Treat Condition": 0.10,
    "Uses of Drug": 0.09,
    "Adverse Effects of Drug": 0.05,
    "Drug-Drug Interactions": 0.04,
    "DRUG_GENERAL": 0.04,
    "Dose Adjustments for Drug": 0.03,
    "Regulatory Status for Drug": 0.02,
}

#: Paraphrase heads used by the *simulated users* — deliberately a
#: different distribution from the training generator's initial phrases,
#: so evaluation is not a memorization test.
_USER_HEADS = [
    "", "please show", "can you tell me", "i need", "looking for",
    "what about", "need to know", "pull up", "check", "find me",
]

#: Templates per intent family, keyed by the paper intent name.  ``{drug}``
#: / ``{condition}`` / ``{age}`` are replaced by instance values.
_UTTERANCE_TEMPLATES: dict[str, list[str]] = {
    "Drug Dosage for Condition": [
        "dosage for {drug} for {condition} in {age}",
        "{drug} dose for {condition} {age}",
        "how much {drug} for {condition} for {age}",
        "dosing of {drug} in {age} with {condition}",
        "{drug} dosage {condition}",
    ],
    "Administration of Drug": [
        "how to administer {drug}",
        "administration of {drug}",
        "how do you give {drug}",
        "how should {drug} be taken",
        "{drug} administration instructions",
    ],
    "IV Compatibility of Drug": [
        "iv compatibility of {drug}",
        "is {drug} compatible with normal saline",
        "y-site compatibility for {drug}",
        "can {drug} be mixed in dextrose",
        "{drug} iv compatibility",
    ],
    "Drugs That Treat Condition": [
        "show me drugs that treat {condition} in {age}",
        "what treats {condition} for {age}",
        "drugs for {condition} {age}",
        "treatment options for {condition} in {age}",
        "medication for {condition} for {age}",
    ],
    "Uses of Drug": [
        "what is {drug} used for",
        "uses of {drug}",
        "what does {drug} treat",
        "indications for {drug}",
        "{drug} indications",
    ],
    "Adverse Effects of Drug": [
        "adverse effects of {drug}",
        "side effects of {drug}",
        "what are the side effects of {drug}",
        "{drug} adverse reactions",
        "does {drug} have side effects",
    ],
    "Drug-Drug Interactions": [
        "drug interactions for {drug}",
        "what interacts with {drug}",
        "{drug} interactions",
        "interactions of {drug}",
        "does anything interact with {drug}",
    ],
    "DRUG_GENERAL": [
        "{drug}",
        "{drug} info",
        "{drug} information",
    ],
    "Dose Adjustments for Drug": [
        "dose adjustment for {drug}",
        "renal dosing for {drug}",
        "dosing modification for {drug}",
        "{drug} dose reduction",
        "hepatic adjustment for {drug}",
    ],
    "Regulatory Status for Drug": [
        "regulatory status for {drug}",
        "is {drug} fda approved",
        "approval status of {drug}",
        "when was {drug} approved",
    ],
    "Pharmacokinetics": [
        "pharmacokinetics of {drug}",
        "half life of {drug}",
        "how is {drug} metabolized",
        "{drug} pk profile",
    ],
    "Precautions of Drug": [
        "precautions for {drug}",
        "is {drug} safe to give",
        "{drug} precautions",
        "cautions for {drug}",
    ],
    "Risks of Drug": [
        "contraindications for {drug}",
        "black box warning for {drug}",
        "risks of {drug}",
        "{drug} contraindications",
    ],
    "Toxicology of Drug": [
        "overdose of {drug}",
        "toxicology of {drug}",
        "what happens with too much {drug}",
    ],
    "Monitoring for Drug": [
        "what to monitor on {drug}",
        "monitoring for {drug}",
        "labs to check for {drug}",
    ],
    "Mechanism of Action": [
        "how does {drug} work",
        "mechanism of action of {drug}",
        "{drug} moa",
    ],
    "Patient Education for Drug": [
        "counseling points for {drug}",
        "patient education for {drug}",
        "what should patients know about {drug}",
    ],
}

_GIBBERISH = ["apfjhd", "xkcd123", "qwertyuiop", "zzzz", "asdf asdf", "mmmm...", "lkjhg"]

_MANAGEMENT_SAMPLES = [
    ("thanks", "thanks"), ("thank you", "thanks"),
    ("thanks for that", "thanks"), ("thank you kindly", "thanks"),
    ("hello", "greeting"), ("hi assistant", "greeting"),
    ("hey good morning", "greeting"),
    ("goodbye", "goodbye"), ("bye now", "goodbye"),
    ("ok bye", "goodbye"),
    ("help", "help"), ("i could use some help", "help"),
    ("help me with this", "help"),
    ("ok", "positive_ack"), ("ok great", "positive_ack"),
    ("got it thanks", "positive_ack"),
    ("what can you do", "capabilities"),
    ("what else can you do", "capabilities"),
    ("what kinds of things can i ask", "capabilities"),
    ("can you repeat that", "repeat_request"),
    ("say again", "repeat_request"),
    ("what do you mean", "paraphrase_request"),
    ("i did not understand that", "paraphrase_request"),
    ("what does contraindication mean", "definition_request"),
    ("define black box warning", "definition_request"),
    ("never mind", "abort"), ("cancel this", "abort"),
    ("yes", "affirmative"), ("yes that one", "affirmative"),
    ("no", "negative"), ("no not that", "negative"),
    ("that is wrong", "complaint"), ("bad response", "complaint"),
    ("who are you", "chitchat"), ("are you a bot", "chitchat"),
]


@dataclass(frozen=True)
class SimulatedQuery:
    """One simulated user query with its ground truth."""

    utterance: str
    true_intent: str
    entities: dict[str, str] = field(default_factory=dict)
    noise: str = "clean"  # clean | misspelled | keyword | gibberish | management


def _misspell(text: str, rng: random.Random) -> str:
    """Introduce one realistic typo into a word of length >= 5."""
    words = text.split()
    candidates = [i for i, w in enumerate(words) if len(w) >= 5 and w.isalpha()]
    if not candidates:
        return text
    idx = rng.choice(candidates)
    word = words[idx]
    pos = rng.randint(1, len(word) - 2)
    kind = rng.random()
    if kind < 0.4:  # drop a character
        word = word[:pos] + word[pos + 1 :]
    elif kind < 0.8:  # swap two adjacent characters
        word = word[:pos] + word[pos + 1] + word[pos] + word[pos + 2 :]
    else:  # duplicate a character
        word = word[:pos] + word[pos] + word[pos:]
    words[idx] = word
    return " ".join(words)


class WorkloadGenerator:
    """Generates a deterministic stream of simulated user queries.

    Parameters
    ----------
    space:
        The (MDX) conversation space — instance values come from its KB.
    usage_mix:
        Intent share of traffic; defaults to the Table 5 mix, with the
        residual 25% spread uniformly over the other known templates.
    misspelling_rate / gibberish_rate / management_rate:
        Noise channel probabilities (gibberish and management replace the
        domain query; misspelling perturbs it).
    """

    def __init__(
        self,
        space: ConversationSpace,
        usage_mix: dict[str, float] | None = None,
        misspelling_rate: float = 0.08,
        gibberish_rate: float = 0.01,
        management_rate: float = 0.05,
        seed: int = 99,
    ) -> None:
        self.space = space
        self.misspelling_rate = misspelling_rate
        self.gibberish_rate = gibberish_rate
        self.management_rate = management_rate
        self._rng = random.Random(seed)

        mix = dict(usage_mix or PAPER_USAGE_MIX)
        available = {i.name for i in space.intents}
        mix = {name: share for name, share in mix.items() if name in available}
        residual_intents = [
            name
            for name in _UTTERANCE_TEMPLATES
            if name in available and name not in mix
        ]
        residual = max(0.0, 1.0 - sum(mix.values()))
        for name in residual_intents:
            mix[name] = residual / max(len(residual_intents), 1)
        total = sum(mix.values())
        self.usage_mix = {name: share / total for name, share in mix.items()}

        self._drugs = instance_values(space.ontology, space.database, "Drug")
        self._conditions = instance_values(space.ontology, space.database, "Indication")
        self._ages = ["adults", "children", "adult", "pediatric"]
        self._drug_synonyms = space.instance_synonyms
        # Clinicians overwhelmingly ask about real treatment pairs; sample
        # (drug, condition) from the KB's treats relationship, with a small
        # incoherent tail.
        self._treat_pairs: list[tuple[str, str]] = []
        if space.database is not None and space.database.has_table("treats"):
            result = space.database.query(
                "SELECT d.name, i.name AS condition FROM treats t "
                "INNER JOIN drug d ON t.drug_id = d.drug_id "
                "INNER JOIN indication i ON t.indication_id = i.indication_id"
            )
            self._treat_pairs = [(row[0], row[1]) for row in result.rows]
        # IV-compatibility questions are asked about drugs that are
        # actually given intravenously.
        self._iv_drugs: list[str] = []
        if space.database is not None and space.database.has_table("iv_compatibility"):
            result = space.database.query(
                "SELECT DISTINCT d.name FROM iv_compatibility c "
                "INNER JOIN drug d ON c.drug_id = d.drug_id"
            )
            self._iv_drugs = [row[0] for row in result.rows]

    def _drug_surface(self) -> tuple[str, str]:
        """A drug mention (possibly a brand/salt synonym) and its canonical
        name."""
        canonical = self._rng.choice(self._drugs)
        synonyms = self._drug_synonyms.synonyms_of(canonical)
        if synonyms and self._rng.random() < 0.3:
            return self._rng.choice(synonyms), canonical
        return canonical, canonical

    def _age_binding(self, surface: str) -> str:
        return {
            "adults": "Adult", "adult": "Adult",
            "children": "Pediatric", "pediatric": "Pediatric",
        }[surface]

    def generate(self, count: int) -> list[SimulatedQuery]:
        """Generate ``count`` simulated queries."""
        queries = []
        intents = list(self.usage_mix)
        weights = [self.usage_mix[i] for i in intents]
        for _ in range(count):
            roll = self._rng.random()
            if roll < self.gibberish_rate:
                queries.append(
                    SimulatedQuery(
                        utterance=self._rng.choice(_GIBBERISH),
                        true_intent="<gibberish>",
                        noise="gibberish",
                    )
                )
                continue
            if roll < self.gibberish_rate + self.management_rate:
                utterance, intent = self._rng.choice(_MANAGEMENT_SAMPLES)
                queries.append(
                    SimulatedQuery(
                        utterance=utterance, true_intent=intent, noise="management"
                    )
                )
                continue
            intent = self._rng.choices(intents, weights=weights, k=1)[0]
            queries.append(self._domain_query(intent))
        return queries

    def _domain_query(self, intent: str) -> SimulatedQuery:
        rng = self._rng
        template = rng.choice(_UTTERANCE_TEMPLATES[intent])
        entities: dict[str, str] = {}
        utterance = template
        needs_pair = "{drug}" in template and "{condition}" in template
        if needs_pair and self._treat_pairs and rng.random() < 0.9:
            canonical, condition = rng.choice(self._treat_pairs)
            surface = canonical
            synonyms = self._drug_synonyms.synonyms_of(canonical)
            if synonyms and rng.random() < 0.3:
                surface = rng.choice(synonyms)
            utterance = utterance.replace("{drug}", surface)
            utterance = utterance.replace("{condition}", condition)
            entities["Drug"] = canonical
            entities["Indication"] = condition
        if "{drug}" in utterance:
            if intent == "IV Compatibility of Drug" and self._iv_drugs and rng.random() < 0.85:
                canonical = rng.choice(self._iv_drugs)
                surface = canonical
                synonyms = self._drug_synonyms.synonyms_of(canonical)
                if synonyms and rng.random() < 0.3:
                    surface = rng.choice(synonyms)
            else:
                surface, canonical = self._drug_surface()
            utterance = utterance.replace("{drug}", surface)
            entities["Drug"] = canonical
        if "{condition}" in utterance:
            condition = rng.choice(self._conditions)
            utterance = utterance.replace("{condition}", condition)
            entities["Indication"] = condition
        if "{age}" in template:
            age = rng.choice(self._ages)
            utterance = utterance.replace("{age}", age)
            entities["Age Group"] = self._age_binding(age)
        head = rng.choice(_USER_HEADS)
        if head and intent != "DRUG_GENERAL":
            utterance = f"{head} {utterance}"
        noise = "keyword" if intent == "DRUG_GENERAL" else "clean"
        if noise == "clean" and rng.random() < self.misspelling_rate:
            utterance = _misspell(utterance, rng)
            noise = "misspelled"
        return SimulatedQuery(
            utterance=utterance, true_intent=intent, entities=entities, noise=noise
        )
