"""Replay a simulated workload against an agent, with feedback models.

§7.2's measurement setup, reconstructed: every interaction is logged;
*users* occasionally press thumbs down (mostly after genuinely bad
answers, rarely by accident — the paper observed thumbs-up is rarely
used and negative feedback is the credible signal); *SMEs* review a
random sample and mark every interaction positive/negative, which is
stricter than user feedback (90.8% vs 97.9% on the paper's sample).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.engine.agent import AgentResponse, ConversationAgent
from repro.engine.feedback import InteractionRecord
from repro.engine.kinds import ResponseKind
from repro.eval.workload import SimulatedQuery

#: Maximum cooperative turns a simulated user spends on one query
#: (initial utterance + elicitation answers + proposal confirmations).
MAX_FOLLOWUPS = 4


@dataclass
class UserFeedbackModel:
    """Probabilities governing thumbs-up/down behaviour."""

    down_when_wrong: float = 0.55
    down_when_empty: float = 0.15
    down_when_correct: float = 0.004   # accidental presses (§7.2)
    down_when_gibberish: float = 0.35  # users thumb down their own noise
    up_when_correct: float = 0.02      # "positive feedback is rarely used"


@dataclass
class SMEJudgementModel:
    """SME review: negative iff the interaction was actually mishandled,
    with a small judgement-noise flip rate."""

    sample_fraction: float = 0.10
    noise: float = 0.02


@dataclass
class SimulationOutcome:
    """The agent-side outcome of one simulated query."""

    query: SimulatedQuery
    final_response: AgentResponse
    turns: int
    correct: bool
    record: InteractionRecord
    #: Pipeline stage that produced the final response (from the turn
    #: trace), so ablations can report *where* turns die.
    deciding_stage: str | None = None


@dataclass
class SimulationResult:
    """Everything produced by :func:`simulate_usage`."""

    outcomes: list[SimulationOutcome] = field(default_factory=list)

    @property
    def records(self) -> list[InteractionRecord]:
        return [o.record for o in self.outcomes]

    def sampled_records(self) -> list[InteractionRecord]:
        """Records that received an SME label (the review sample)."""
        return [o.record for o in self.outcomes if o.record.sme_label is not None]

    @property
    def accuracy(self) -> float:
        """Fraction of interactions the agent actually handled correctly."""
        if not self.outcomes:
            return 1.0
        return sum(1 for o in self.outcomes if o.correct) / len(self.outcomes)

    def stage_decisions(self, only_incorrect: bool = False) -> dict[str, int]:
        """Deciding-stage counts over the final turn of each interaction.

        With ``only_incorrect=True`` this is the "where do turns die"
        report: which pipeline stage produced the response for the
        interactions the agent mishandled.
        """
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            if only_incorrect and outcome.correct:
                continue
            stage = outcome.deciding_stage or "<untraced>"
            counts[stage] = counts.get(stage, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))

    def stage_latency(self) -> dict[str, float]:
        """Mean per-stage latency (seconds) across every traced turn."""
        totals: dict[str, list[float]] = {}
        for outcome in self.outcomes:
            trace = outcome.final_response.trace
            if trace is None:
                continue
            for stage in trace.stages:
                totals.setdefault(stage.stage, []).append(stage.duration)
        return {
            name: sum(values) / len(values)
            for name, values in totals.items()
        }


def _is_correct(query: SimulatedQuery, response: AgentResponse) -> bool:
    """Ground-truth check of the agent's final behaviour for one query."""
    if query.noise == "gibberish":
        # Correct handling of gibberish is *not* answering: fallback or a
        # clarification is right.
        return response.kind in (
            ResponseKind.FALLBACK,
            ResponseKind.MANAGEMENT,
            ResponseKind.DISAMBIGUATE,
        )
    if query.noise == "management":
        return (
            response.kind == ResponseKind.MANAGEMENT
            and response.intent == query.true_intent
        )
    if query.true_intent == "DRUG_GENERAL":
        # Keyword-only input: proposing a query pattern (or answering a
        # confirmed proposal) is the designed behaviour.
        return response.kind in (
            ResponseKind.PROPOSAL,
            ResponseKind.ANSWER,
            ResponseKind.DISAMBIGUATE,
        )
    if response.kind not in (ResponseKind.ANSWER, ResponseKind.ANSWER_EMPTY):
        return False
    if response.intent != query.true_intent:
        return False
    # Entities the user supplied must have been bound correctly.
    bound = {k.lower(): v.lower() for k, v in response.entities.items()}
    for concept, value in query.entities.items():
        got = bound.get(concept.lower())
        if got is not None and got != value.lower():
            return False
    return True


def _followup_for(
    response: AgentResponse,
    query: SimulatedQuery,
    agent: ConversationAgent,
    rng: random.Random,
) -> str | None:
    """What a cooperative user says next, or None to stop."""
    if response.kind == ResponseKind.ELICIT and response.elicit_concept:
        concept = response.elicit_concept
        value = query.entities.get(concept)
        if value is None:
            options = agent.recognizer.values_for_concept(concept)
            value = rng.choice(options) if options else None
        return value
    if response.kind == ResponseKind.PROPOSAL:
        return "yes" if rng.random() < 0.7 else "no"
    if response.kind == ResponseKind.DISAMBIGUATE:
        # Pick the canonical value the user meant, if known.
        for value in query.entities.values():
            return value
        return None
    return None


def simulate_usage(
    agent: ConversationAgent,
    queries: list[SimulatedQuery],
    user_model: UserFeedbackModel | None = None,
    sme_model: SMEJudgementModel | None = None,
    seed: int = 5,
) -> SimulationResult:
    """Run every query through its own session and log feedback.

    Each query is one *interaction*: the initial utterance plus up to
    :data:`MAX_FOLLOWUPS` cooperative follow-up turns (elicitation
    answers, proposal confirmations).  Feedback and SME labels are
    attached per interaction.
    """
    user_model = user_model or UserFeedbackModel()
    sme_model = sme_model or SMEJudgementModel()
    rng = random.Random(seed)
    result = SimulationResult()

    for query in queries:
        session = agent.session()
        response = session.ask(query.utterance)
        turns = 1
        while turns < MAX_FOLLOWUPS and response.kind in (
            ResponseKind.ELICIT,
            ResponseKind.PROPOSAL,
            ResponseKind.DISAMBIGUATE,
        ):
            followup = _followup_for(response, query, agent, rng)
            if followup is None:
                break
            response = session.ask(followup)
            turns += 1

        correct = _is_correct(query, response)
        feedback = None
        if query.noise == "gibberish":
            if rng.random() < user_model.down_when_gibberish:
                feedback = "down"
        elif not correct:
            if rng.random() < user_model.down_when_wrong:
                feedback = "down"
        elif response.kind == ResponseKind.ANSWER_EMPTY:
            if rng.random() < user_model.down_when_empty:
                feedback = "down"
        elif rng.random() < user_model.down_when_correct:
            feedback = "down"
        elif rng.random() < user_model.up_when_correct:
            feedback = "up"

        sme_label = None
        if rng.random() < sme_model.sample_fraction:
            judged_negative = not correct
            if rng.random() < sme_model.noise:
                judged_negative = not judged_negative
            sme_label = "negative" if judged_negative else "positive"

        record = InteractionRecord(
            utterance=query.utterance,
            response=response.text,
            intent=(
                query.true_intent
                if query.noise != "gibberish"
                else "<gibberish>"
            ),
            confidence=response.confidence,
            outcome_kind=response.kind,
            feedback=feedback,
            session_id=session.id,
            sme_label=sme_label,
        )
        trace = response.trace
        result.outcomes.append(
            SimulationOutcome(
                query=query,
                final_response=response,
                turns=turns,
                correct=correct,
                record=record,
                deciding_stage=trace.deciding_stage if trace else None,
            )
        )
    return result
