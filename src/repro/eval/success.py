"""Success-rate computation (§7.2, Equation 1).

    success rate = (#interactions - #negative interactions) / #interactions

computed in total and per intent, from either user feedback (thumbs
down) or SME judgement, matching Figures 11 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.feedback import InteractionRecord
from repro.errors import EvaluationError


@dataclass(frozen=True)
class IntentSuccess:
    """Per-intent interaction counts and success rate."""

    intent: str
    interactions: int
    negative: int

    @property
    def success_rate(self) -> float:
        if self.interactions == 0:
            return 1.0
        return 1.0 - self.negative / self.interactions


def _is_negative(record: InteractionRecord, judge: str) -> bool:
    if judge == "user":
        return record.feedback == "down"
    if judge == "sme":
        return record.sme_label == "negative"
    raise EvaluationError(f"unknown judge {judge!r}; use 'user' or 'sme'")


def success_rate(records: list[InteractionRecord], judge: str = "user") -> float:
    """Overall Equation 1 success rate over ``records``."""
    if not records:
        return 1.0
    negative = sum(1 for r in records if _is_negative(r, judge))
    return 1.0 - negative / len(records)


def per_intent_success(
    records: list[InteractionRecord],
    judge: str = "user",
    top_k: int | None = None,
) -> list[IntentSuccess]:
    """Per-intent success rates, ordered by descending interaction count.

    ``top_k`` truncates to the most frequent intents (the paper shows the
    top 10).  Records with no detected intent are grouped under
    ``"<none>"``.
    """
    totals: dict[str, list[int]] = {}
    for record in records:
        key = record.intent or "<none>"
        bucket = totals.setdefault(key, [0, 0])
        bucket[0] += 1
        if _is_negative(record, judge):
            bucket[1] += 1
    ranked = sorted(
        (
            IntentSuccess(intent=k, interactions=v[0], negative=v[1])
            for k, v in totals.items()
        ),
        key=lambda s: (-s.interactions, s.intent),
    )
    return ranked[:top_k] if top_k is not None else ranked
