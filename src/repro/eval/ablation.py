"""Ablations of the design choices DESIGN.md calls out.

Each function builds reduced variants of the MDX pipeline and returns a
small dict of comparable numbers, so the corresponding benchmark can
print a table: training volume vs F1, SME augmentation on/off, synonym
dictionaries on/off, persistent context on/off, and union/inheritance
pattern augmentation on/off.
"""

from __future__ import annotations

import random

from repro.bootstrap.space import ConversationSpace
from repro.engine.agent import ConversationAgent
from repro.engine.recognizer import EntityRecognizer
from repro.eval.classifier_eval import evaluate_bootstrap_classifier
from repro.medical.build import (
    build_mdx_database,
    build_mdx_ontology,
    build_mdx_space,
)
from repro.medical.generator import GeneratorConfig
from repro.medical.knowledge import PRIOR_USER_QUERIES


def _small_database():
    return build_mdx_database(GeneratorConfig(max_drugs=45, max_conditions=24))


def ablate_training_volume(
    per_pattern_values: tuple[int, ...] = (2, 4, 8, 12, 20),
) -> dict[int, float]:
    """Macro F1 as a function of generated examples per pattern (§4.3.1)."""
    database = _small_database()
    ontology = build_mdx_ontology(database)
    results: dict[int, float] = {}
    for per_pattern in per_pattern_values:
        space = build_mdx_space(
            database, ontology, per_pattern=per_pattern, with_prior_queries=False
        )
        evaluation = evaluate_bootstrap_classifier(space, include_management=False)
        results[per_pattern] = evaluation.average_f1
    return results


def _sme_style_test_set(space: ConversationSpace) -> tuple[list[str], list[str]]:
    """A test set phrased like real prior user queries (never used for
    training in the ablated variant)."""
    utterances, labels = [], []
    intent_names = {i.name for i in space.intents}
    for utterance, intent in PRIOR_USER_QUERIES:
        if intent in intent_names:
            utterances.append(utterance)
            labels.append(intent)
    return utterances, labels


def ablate_sme_augmentation() -> dict[str, float]:
    """Classifier accuracy on SME-style phrasings, with and without the
    §4.3.2 prior-query augmentation.

    The augmented classifier holds out half of the prior queries for
    testing; the ablated one sees none of them.
    """
    database = _small_database()
    ontology = build_mdx_ontology(database)
    rng = random.Random(3)

    space_plain = build_mdx_space(database, ontology, with_prior_queries=False)
    test_x, test_y = _sme_style_test_set(space_plain)
    indices = list(range(len(test_x)))
    rng.shuffle(indices)
    half = len(indices) // 2
    train_idx, test_idx = set(indices[:half]), indices[half:]

    def accuracy(space: ConversationSpace) -> float:
        classifier = space.train_classifier()
        xs = [test_x[i] for i in test_idx]
        ys = [test_y[i] for i in test_idx]
        predictions = classifier.classify_batch(xs)
        return sum(p.intent == y for p, y in zip(predictions, ys)) / len(ys)

    plain_accuracy = accuracy(space_plain)

    space_augmented = build_mdx_space(database, ontology, with_prior_queries=False)
    for i in sorted(train_idx):
        space_augmented.add_training_examples(test_y[i], [test_x[i]])
    augmented_accuracy = accuracy(space_augmented)
    return {
        "without_sme_augmentation": plain_accuracy,
        "with_sme_augmentation": augmented_accuracy,
    }


def ablate_synonyms() -> dict[str, float]:
    """Entity-recognition recall on brand-name mentions, with and without
    the synonym dictionaries (§4.5: "crucial ... for a greater recall")."""
    database = _small_database()
    ontology = build_mdx_ontology(database)
    space = build_mdx_space(database, ontology)

    full = EntityRecognizer(space.entities)
    stripped_entities = []
    for entity in space.entities:
        clone = type(entity)(name=entity.name, kind=entity.kind, concept=entity.concept)
        for value in entity.values:
            clone.values.append(type(value)(value=value.value, synonyms=[]))
        stripped_entities.append(clone)
    bare = EntityRecognizer(stripped_entities)

    probes: list[tuple[str, str]] = []  # (utterance with brand, canonical drug)
    for entity in space.entities:
        if entity.kind != "instance" or entity.concept != "Drug":
            continue
        for value in entity.values:
            for synonym in value.synonyms:
                probes.append((f"side effects of {synonym}", value.value))
    if not probes:
        return {"with_synonyms": 1.0, "without_synonyms": 1.0}

    def recall(recognizer: EntityRecognizer) -> float:
        hits = 0
        for utterance, canonical in probes:
            result = recognizer.recognize(utterance)
            if result.values.get("Drug", "").lower() == canonical.lower():
                hits += 1
        return hits / len(probes)

    return {"with_synonyms": recall(full), "without_synonyms": recall(bare)}


def ablate_persistent_context() -> dict[str, float]:
    """Fraction of two-turn requests answered, with and without the
    persistent context (§5.2: entities from prior turns are "remembered").

    Scenario: the user first asks for drugs treating a condition (binding
    condition + age group), then says only "dosage for <drug>" — the
    paper's lines 12–13.  Without context the second turn cannot be
    completed in one shot.
    """
    database = _small_database()
    space = build_mdx_space(database)
    agent = ConversationAgent.build(
        space, database, agent_name="MDX", domain="drug reference"
    )
    # Pairs restricted to the reduced vocabulary of ``_small_database``
    # (both the condition and the drug are within the size caps).
    pairs = [
        ("Fever", "Aspirin"), ("Pain", "Ibuprofen"),
        ("Headache", "Acetaminophen"), ("Migraine", "Naproxen"),
        ("Hypertension", "Lisinopril"), ("Heart Failure", "Metoprolol"),
        ("Hyperlipidemia", "Atorvastatin"), ("Angina", "Amlodipine"),
    ]

    def answered_with_context() -> float:
        hits = 0
        for condition, drug in pairs:
            session = agent.session()
            session.ask(f"show me drugs that treat {condition}")
            session.ask("adult")
            response = session.ask(f"dosage for {drug}")
            if response.kind in ("answer", "answer_empty"):
                hits += 1
        return hits / len(pairs)

    def answered_without_context() -> float:
        hits = 0
        for condition, drug in pairs:
            session = agent.session()
            session.ask(f"show me drugs that treat {condition}")
            session.ask("adult")
            session.context.reset()  # ablate: drop the persistent context
            response = session.ask(f"dosage for {drug}")
            if response.kind in ("answer", "answer_empty"):
                hits += 1
        return hits / len(pairs)

    return {
        "with_context": answered_with_context(),
        "without_context": answered_without_context(),
    }


def ablate_confidence_threshold(
    thresholds: tuple[float, ...] = (0.05, 0.1, 0.2, 0.35, 0.5, 0.7),
    interactions: int = 400,
) -> dict[float, dict[str, float]]:
    """Accuracy and fallback rate as the irrelevance threshold moves.

    Too low and gibberish triggers intents; too high and correct but
    under-confident classifications fall back.  The deployed value (0.2,
    Watson Assistant's default) should sit near the accuracy plateau.
    """
    from repro.eval.simulate import simulate_usage
    from repro.eval.workload import WorkloadGenerator

    database = _small_database()
    space = build_mdx_space(database)
    from repro.medical.build import rename_to_paper_intents

    rename_to_paper_intents(space)
    generator = WorkloadGenerator(space, seed=13)
    queries = generator.generate(interactions)

    results: dict[float, dict[str, float]] = {}
    for threshold in thresholds:
        agent = ConversationAgent.build(
            space, database, agent_name="MDX", domain="drug reference",
            confidence_threshold=threshold,
        )
        sim = simulate_usage(agent, queries, seed=3)
        fallbacks = sum(
            1 for o in sim.outcomes if o.final_response.kind == "fallback"
        )
        results[threshold] = {
            "accuracy": sim.accuracy,
            "fallback_rate": fallbacks / len(sim.outcomes),
        }
    return results


def seed_sensitivity(
    seeds: tuple[int, ...] = (1, 2, 3),
    interactions: int = 500,
) -> dict[str, tuple[float, float]]:
    """Mean and spread of the headline metrics across simulation seeds.

    Returns metric -> (mean, max-min spread) for agent accuracy and the
    Equation-1 user success rate.
    """
    from repro.eval.simulate import simulate_usage
    from repro.eval.success import success_rate
    from repro.eval.workload import WorkloadGenerator
    from repro.medical.build import rename_to_paper_intents

    database = _small_database()
    space = build_mdx_space(database)
    rename_to_paper_intents(space)
    agent = ConversationAgent.build(
        space, database, agent_name="MDX", domain="drug reference"
    )
    accuracies, successes = [], []
    for seed in seeds:
        queries = WorkloadGenerator(space, seed=seed).generate(interactions)
        sim = simulate_usage(agent, queries, seed=seed + 100)
        accuracies.append(sim.accuracy)
        successes.append(success_rate(sim.records))

    def stats(values: list[float]) -> tuple[float, float]:
        return (sum(values) / len(values), max(values) - min(values))

    return {
        "accuracy": stats(accuracies),
        "user_success": stats(successes),
    }


def ablate_special_semantics() -> dict[str, int]:
    """Pattern counts with and without union/inheritance augmentation
    (§4.2.1 Figure 4): how many query patterns the special semantics add."""
    database = _small_database()
    ontology = build_mdx_ontology(database)
    space = build_mdx_space(database, ontology, apply_sme_feedback=False)
    total = sum(len(i.patterns) for i in space.intents)
    augmented = sum(
        1
        for intent in space.intents
        for pattern in intent.patterns
        if pattern.augmented_from is not None
    )
    return {
        "patterns_with_augmentation": total,
        "patterns_without_augmentation": total - augmented,
        "augmentation_patterns": augmented,
    }
