"""The §7.1 bootstrapping-process evaluation.

"We split the augmented set of training examples into training and test
sets, covering a total number of 36 intents ... The average F1-score of
the trained classifier across all intents is 0.85."  This module runs
the same protocol over a conversation space and reports per-intent F1
(Table 5's right column).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bootstrap.space import ConversationSpace
from repro.dialogue.management import management_training_examples
from repro.nlp.classifier import IntentClassifier
from repro.nlp.metrics import ClassificationReport, classification_report
from repro.nlp.split import stratified_split


@dataclass
class BootstrapEvaluation:
    """Outcome of the train/test evaluation."""

    report: ClassificationReport
    n_intents: int
    n_train: int
    n_test: int
    predictions: list[tuple[str, str, str]] = field(default_factory=list)
    # (utterance, true intent, predicted intent)

    @property
    def average_f1(self) -> float:
        return self.report.macro_f1

    def f1_for(self, intent: str) -> float:
        return self.report.f1(intent)


def evaluate_bootstrap_classifier(
    space: ConversationSpace,
    test_fraction: float = 0.25,
    include_management: bool = True,
    classifier: IntentClassifier | None = None,
    seed: int = 7,
    usage_test_set: list[tuple[str, str]] | None = None,
) -> BootstrapEvaluation:
    """Split the space's (augmented) examples, train, and report F1.

    The split is stratified per intent, and ``usage_test_set`` —
    (utterance, intent) pairs drawn from the simulated workload — extends
    the held-out side, so "the distribution of the training and test sets
    are similar to the real intent statistics" (§7.1).  Management
    intents are included by default, matching the paper's 36 evaluated
    intents (22 domain + 14 management).
    """
    utterances = [e.utterance for e in space.training_examples]
    labels = [e.intent for e in space.training_examples]
    if include_management:
        existing = {(u.lower(), i) for u, i in zip(utterances, labels)}
        for utterance, intent_name in management_training_examples():
            if (utterance.lower(), intent_name) not in existing:
                utterances.append(utterance)
                labels.append(intent_name)

    train_x, train_y, test_x, test_y = stratified_split(
        utterances, labels, test_fraction=test_fraction, seed=seed
    )
    if usage_test_set:
        known = {i.name for i in space.intents}
        train_set = {u.lower() for u in train_x}
        for utterance, intent_name in usage_test_set:
            if intent_name in known and utterance.lower() not in train_set:
                test_x.append(utterance)
                test_y.append(intent_name)
    model = classifier or IntentClassifier()
    model.fit(train_x, train_y)
    predicted = [p.intent for p in model.classify_batch(test_x)]
    report = classification_report(test_y, predicted)
    return BootstrapEvaluation(
        report=report,
        n_intents=len(set(labels)),
        n_train=len(train_x),
        n_test=len(test_x),
        predictions=list(zip(test_x, test_y, predicted)),
    )
