"""Free-text interpretation over the ontology (Athena-style, simplified).

Maps an utterance to the concepts and instance values it mentions, then
generates a SQL query: mentioned concepts become the SELECT side, and
mentioned instances become filter conditions on their concepts — the
paper's "interprets it over the domain ontology to produce a structured
query" (§2, reference [29]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bootstrap.entities import Entity
from repro.bootstrap.training import instance_values
from repro.errors import InterpretationError
from repro.kb.database import Database
from repro.nlp.tokenizer import stem, tokenize
from repro.nlq.sql_generator import ConceptQuery, build_concept_query
from repro.ontology.model import Ontology


#: Phrasings that turn a concept query into a count query.
_COUNT_MARKERS = ("how many", "number of", "count of", "total number")


@dataclass
class Interpretation:
    """The outcome of interpreting an utterance over the ontology."""

    utterance: str
    result_concepts: list[str] = field(default_factory=list)
    filters: dict[str, str] = field(default_factory=dict)  # concept -> value
    aggregate: str | None = None  # "count" for "how many ..." questions
    query: ConceptQuery | None = None

    @property
    def sql(self) -> str | None:
        return self.query.sql if self.query else None


def _surface_index(
    ontology: Ontology,
    database: Database | None,
    entities: list[Entity] | None,
) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """Build lookup maps: surface → concept, and surface → (concept, value).

    Multi-word surfaces are keyed by their token join, so matching can
    run over utterance token n-grams.
    """
    concept_surfaces: dict[str, str] = {}
    for concept in ontology.concepts():
        for form in [concept.name] + list(concept.synonyms):
            concept_surfaces[" ".join(tokenize(form))] = concept.name
            # Inflection-tolerant: "Precautions" must hit "Precaution".
            stemmed = " ".join(stem(t) for t in tokenize(form))
            concept_surfaces.setdefault(stemmed, concept.name)

    instance_surfaces: dict[str, tuple[str, str]] = {}
    if entities is not None:
        for entity in entities:
            if entity.kind != "instance" or not entity.concept:
                continue
            for value in entity.values:
                for form in value.surface_forms():
                    instance_surfaces.setdefault(
                        " ".join(tokenize(form)), (entity.concept, value.value)
                    )
    elif database is not None:
        for concept in ontology.concepts():
            for value in instance_values(ontology, database, concept.name):
                instance_surfaces.setdefault(
                    " ".join(tokenize(value)), (concept.name, value)
                )
    concept_surfaces.pop("", None)
    instance_surfaces.pop("", None)
    return concept_surfaces, instance_surfaces


def _match_spans(
    tokens: list[str],
    concept_surfaces: dict[str, str],
    instance_surfaces: dict[str, tuple[str, str]],
    max_len: int = 5,
) -> tuple[list[str], dict[str, str]]:
    """Greedy longest-first matching of token n-grams against surfaces.

    Instance matches win over concept matches of the same span (a drug
    named like a concept should filter, not project).
    """
    concepts: list[str] = []
    filters: dict[str, str] = {}
    used = [False] * len(tokens)
    for length in range(min(max_len, len(tokens)), 0, -1):
        for start in range(len(tokens) - length + 1):
            if any(used[start : start + length]):
                continue
            gram = " ".join(tokens[start : start + length])
            stemmed_gram = " ".join(
                stem(t) for t in tokens[start : start + length]
            )
            if gram in instance_surfaces:
                concept, value = instance_surfaces[gram]
                filters.setdefault(concept, value)
                for i in range(start, start + length):
                    used[i] = True
            elif gram in concept_surfaces or stemmed_gram in concept_surfaces:
                concept = concept_surfaces.get(
                    gram, concept_surfaces.get(stemmed_gram)
                )
                if concept not in concepts:
                    concepts.append(concept)
                for i in range(start, start + length):
                    used[i] = True
    return concepts, filters


def interpret(
    utterance: str,
    ontology: Ontology,
    database: Database | None = None,
    entities: list[Entity] | None = None,
    generate_sql: bool = True,
) -> Interpretation:
    """Interpret ``utterance`` over the ontology and generate SQL.

    Mentioned concepts (not also filtered by an instance) become result
    concepts; mentioned instance values become filters on their concepts.
    When no concept is mentioned but instances are, the filtered concepts'
    related information cannot be inferred — an
    :class:`~repro.errors.InterpretationError` is raised, matching the
    paper's observation that entity-only utterances ("cogentin") are
    "inadequate for the conversation space" (§6.3).
    """
    tokens = tokenize(utterance)
    concept_surfaces, instance_surfaces = _surface_index(ontology, database, entities)
    concepts, filters = _match_spans(tokens, concept_surfaces, instance_surfaces)

    lowered = " ".join(tokens)
    aggregate = (
        "count" if any(marker in lowered for marker in _COUNT_MARKERS) else None
    )
    result_concepts = [c for c in concepts if c not in filters]
    interpretation = Interpretation(
        utterance=utterance,
        result_concepts=result_concepts,
        filters=dict(filters),
        aggregate=aggregate,
    )
    if not result_concepts:
        raise InterpretationError(
            f"utterance {utterance!r} mentions no result concept "
            f"(filters found: {sorted(filters) or 'none'})"
        )
    if generate_sql:
        interpretation.query = build_concept_query(
            ontology,
            result_concepts=result_concepts,
            filter_concepts=sorted(filters),
            database=database,
            filter_values=filters,
            aggregate=aggregate,
        )
    return interpretation
