"""Ontology-driven natural-language-query (NLQ) service.

The paper uses the Athena NLQ system [29] to turn one natural-language
example per intent into a SQL query, which is then parameterized into a
*structured query template* (§4.4, Figure 9).  This package provides the
same capability:

* :mod:`repro.nlq.join_path` — join-path discovery over the ontology's
  relational bindings,
* :mod:`repro.nlq.sql_generator` — SQL generation for concept queries,
* :mod:`repro.nlq.templates` — :class:`StructuredQueryTemplate` and
  per-intent template generation,
* :mod:`repro.nlq.interpreter` — free-text interpretation over the
  ontology (utterance → concepts/instances → SQL).
"""

from repro.nlq.interpreter import Interpretation, interpret
from repro.nlq.join_path import find_join_path, table_join_graph
from repro.nlq.sql_generator import ConceptQuery, build_concept_query
from repro.nlq.templates import (
    StructuredQueryTemplate,
    template_for_intent,
    templates_for_intent,
)

__all__ = [
    "ConceptQuery",
    "Interpretation",
    "StructuredQueryTemplate",
    "build_concept_query",
    "find_join_path",
    "interpret",
    "table_join_graph",
    "template_for_intent",
    "templates_for_intent",
]
