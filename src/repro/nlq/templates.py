"""Structured query templates: one parameterized SQL query per intent.

§4.4: "We associate each identified intent with a Structured Query
Template ... parameterize[d] ... The identified entities in the user
utterance are used to populate the template to generate the actual SQL
query" (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bootstrap.intents import Intent
from repro.bootstrap.patterns import PatternKind, QueryPattern
from repro.errors import MissingBindingsError, TemplateError
from repro.kb.database import Database
from repro.kb.sql.result import ResultSet
from repro.nlq.sql_generator import build_concept_query, build_relationship_query
from repro.ontology.model import Ontology


@dataclass(frozen=True)
class StructuredQueryTemplate:
    """A parameterized SQL query bound to an intent (or one of its patterns).

    ``parameters`` maps SQL parameter name → the concept whose instance
    value fills it.  :meth:`instantiate` checks that every parameter is
    bound, mirroring slot filling.
    """

    intent_name: str
    sql: str
    parameters: dict[str, str] = field(default_factory=dict)
    result_concepts: tuple[str, ...] = ()
    #: When True, the first result column is a category label and the
    #: response groups the remaining columns under it ("Effective: A, B").
    grouped: bool = False

    def required_concepts(self) -> list[str]:
        """The concepts that must be bound to instantiate this template."""
        seen: dict[str, None] = {}
        for concept in self.parameters.values():
            seen.setdefault(concept)
        return list(seen)

    def instantiate(self, bindings: dict[str, str]) -> dict[str, Any]:
        """Produce the SQL parameter dict from concept → value bindings.

        ``bindings`` maps concept name → instance value (case-insensitive
        concept names).  Raises :class:`MissingBindingsError` naming
        *every* unbound concept at once, so one round trip surfaces the
        full set of missing slots.
        """
        lowered = {k.lower(): v for k, v in bindings.items()}
        params: dict[str, Any] = {}
        missing: list[str] = []
        for param, concept in self.parameters.items():
            value = lowered.get(concept.lower())
            if value is None:
                if concept.lower() not in (c.lower() for c in missing):
                    missing.append(concept)
            else:
                params[param] = value
        if missing:
            raise MissingBindingsError(self.intent_name, missing)
        return params

    def execute(self, database: Database, bindings: dict[str, str]) -> ResultSet:
        """Instantiate and run the template against ``database``.

        Prefers the database's prepared-plan API when available
        (:meth:`~repro.kb.database.Database.prepare`), so serving the
        same template repeatedly never re-parses or re-plans its SQL;
        plain ``query`` is the fallback for minimal database stand-ins.
        """
        params = self.instantiate(bindings)
        prepare = getattr(database, "prepare", None)
        if prepare is not None:
            return prepare(self.sql).execute(params)
        return database.query(self.sql, params)


def _template_for_pattern(
    pattern: QueryPattern,
    intent: Intent,
    ontology: Ontology,
    database: Database | None,
) -> StructuredQueryTemplate:
    if pattern.kind is PatternKind.DIRECT_RELATIONSHIP and pattern.relationship:
        # Route along the object property's own join binding, never an
        # accidental alternative path between the same two concepts.
        if pattern.inverse:
            source, target = pattern.filter_concepts[0], pattern.result_concept
        else:
            source, target = pattern.result_concept, pattern.filter_concepts[0]
        query = build_relationship_query(
            ontology,
            relationship=pattern.relationship,
            source=source,
            target=target,
            inverse=pattern.inverse,
        )
        return StructuredQueryTemplate(
            intent_name=intent.name,
            sql=query.sql,
            parameters=query.parameters,
            result_concepts=tuple(query.result_concepts),
        )
    if pattern.kind is PatternKind.INDIRECT_RELATIONSHIP and len(
        pattern.filter_concepts
    ) == 1:
        # Figure 6 pattern 1: return key1 and the intermediate together.
        results = [pattern.result_concept, pattern.intermediate_concepts[0]]
    else:
        results = [pattern.result_concept]
    query = build_concept_query(
        ontology,
        result_concepts=results,
        filter_concepts=list(pattern.filter_concepts),
        database=database,
    )
    return StructuredQueryTemplate(
        intent_name=intent.name,
        sql=query.sql,
        parameters=query.parameters,
        result_concepts=tuple(query.result_concepts),
    )


def template_for_intent(
    intent: Intent,
    ontology: Ontology,
    database: Database | None = None,
) -> StructuredQueryTemplate:
    """Generate the structured query template for ``intent``'s primary
    pattern.  Keyword/management intents have no template."""
    pattern = intent.primary_pattern()
    if pattern is None:
        raise TemplateError(f"intent {intent.name!r} has no query pattern")
    return _template_for_pattern(pattern, intent, ontology, database)


def templates_for_intent(
    intent: Intent,
    ontology: Ontology,
    database: Database | None = None,
) -> list[StructuredQueryTemplate]:
    """Generate templates for *every* pattern of ``intent``.

    Union/inheritance-augmented lookup intents get one template per
    member pattern; indirect intents get both Figure 6 variants.
    """
    if not intent.patterns:
        raise TemplateError(f"intent {intent.name!r} has no query pattern")
    return [
        _template_for_pattern(pattern, intent, ontology, database)
        for pattern in intent.patterns
    ]
