"""SQL generation for concept queries over the ontology bindings.

Produces the paper's Figure 9 shape::

    SELECT oPrecautions.description
    FROM precautions oPrecautions INNER JOIN drug oDrug ON ...
    WHERE oDrug.name = :drug

A *concept query* asks for the display columns of one or more concepts,
filtered by instance values (or parameter markers) of other concepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import JoinPathError, NLQError
from repro.kb.database import Database
from repro.kb.types import DataType
from repro.nlq.join_path import find_join_path, table_join_graph
from repro.ontology.model import Concept, JoinStep, Ontology


@dataclass
class ConceptQuery:
    """A generated SQL query with its parameter map.

    ``parameters`` maps parameter name → filter concept name, so callers
    can bind recognized entity values to the right markers.
    """

    sql: str
    parameters: dict[str, str] = field(default_factory=dict)
    select_columns: list[str] = field(default_factory=list)
    result_concepts: list[str] = field(default_factory=list)


def _alias_for(table: str) -> str:
    return "o" + "".join(part.capitalize() for part in table.split("_"))


def display_columns(concept: Concept) -> list[str]:
    """The columns shown when a concept answers a query.

    Label column first, then the remaining bound TEXT properties; falls
    back to every bound property when no TEXT ones exist.
    """
    label = concept.label_column()
    text_cols = [
        p.column
        for p in concept.data_properties.values()
        if p.column and p.data_type is DataType.TEXT and p.column != label
    ]
    if label:
        return [label] + text_cols
    if text_cols:
        return text_cols
    return [p.column for p in concept.data_properties.values() if p.column]


def _require_table(concept: Concept) -> str:
    if not concept.table:
        raise NLQError(f"concept {concept.name!r} has no relational binding")
    return concept.table


def _param_name(concept_name: str, used: set[str]) -> str:
    base = concept_name.lower().replace(" ", "_")
    name = base
    suffix = 2
    while name in used:
        name = f"{base}_{suffix}"
        suffix += 1
    used.add(name)
    return name


def build_relationship_query(
    ontology: Ontology,
    relationship: str,
    source: str,
    target: str,
    inverse: bool = False,
    filter_value: str | None = None,
) -> ConceptQuery:
    """Generate SQL for a direct relationship pattern along the property's
    own join path (never an alternative route between the same concepts).

    Forward reading returns the *source* concept filtered by a *target*
    instance ("What Drug treats <@Indication>?"); the inverse reading
    swaps the roles.  ``filter_value`` inlines a literal; otherwise a
    parameter marker is emitted.
    """
    prop = None
    for candidate in ontology.properties_between(source, target):
        if candidate.name.lower() == relationship.lower():
            prop = candidate
            break
    if prop is None:
        raise NLQError(
            f"no object property {relationship!r} from {source!r} to {target!r}"
        )
    if not prop.join_path:
        raise NLQError(f"object property {relationship!r} has no join binding")

    result = ontology.concept(target if inverse else source)
    filter_concept = ontology.concept(source if inverse else target)
    steps = list(prop.reversed_path() if inverse else prop.join_path)

    anchor_table = _require_table(result)
    if steps[0].left_table.lower() != anchor_table.lower():
        raise NLQError(
            f"join path of {relationship!r} does not start at "
            f"{result.name!r}'s table"
        )
    aliases: dict[str, str] = {anchor_table.lower(): _alias_for(anchor_table)}
    join_clauses = []
    for step in steps:
        right_low = step.right_table.lower()
        if right_low in aliases:
            continue
        alias = _alias_for(step.right_table)
        existing = set(aliases.values())
        counter = 2
        candidate_alias = alias
        while candidate_alias in existing:
            candidate_alias = f"{alias}{counter}"
            counter += 1
        aliases[right_low] = candidate_alias
        join_clauses.append(
            f"INNER JOIN {step.right_table} {candidate_alias} "
            f"ON {aliases[step.left_table.lower()]}.{step.left_column} = "
            f"{candidate_alias}.{step.right_column}"
        )

    columns = display_columns(result)
    if not columns:
        raise NLQError(f"concept {result.name!r} has no displayable columns")
    anchor_alias = aliases[anchor_table.lower()]
    select_parts = [f"{anchor_alias}.{col}" for col in columns]

    label = filter_concept.label_column()
    if label is None:
        raise NLQError(
            f"filter concept {filter_concept.name!r} has no label column"
        )
    filter_table = _require_table(filter_concept)
    filter_alias = aliases.get(filter_table.lower())
    if filter_alias is None:
        raise NLQError(
            f"join path of {relationship!r} does not reach "
            f"{filter_concept.name!r}'s table"
        )
    parameters: dict[str, str] = {}
    if filter_value is not None:
        escaped = filter_value.replace("'", "''")
        where = f"{filter_alias}.{label} = '{escaped}'"
    else:
        param = filter_concept.name.lower().replace(" ", "_")
        parameters[param] = filter_concept.name
        where = f"{filter_alias}.{label} = :{param}"

    sql = f"SELECT DISTINCT {', '.join(select_parts)} FROM {anchor_table} {anchor_alias}"
    if join_clauses:
        sql += " " + " ".join(join_clauses)
    sql += f" WHERE {where}"
    return ConceptQuery(
        sql=sql,
        parameters=parameters,
        select_columns=columns,
        result_concepts=[result.name],
    )


def build_concept_query(
    ontology: Ontology,
    result_concepts: list[str],
    filter_concepts: list[str],
    database: Database | None = None,
    filter_values: dict[str, str] | None = None,
    aggregate: str | None = None,
) -> ConceptQuery:
    """Generate a SQL query answering a concept query.

    Parameters
    ----------
    result_concepts:
        Concepts whose display columns form the SELECT list (order kept).
    filter_concepts:
        Concepts filtered by their label column.  With ``filter_values``
        given, literal values are inlined; otherwise ``:param`` markers
        are emitted (template mode).
    database:
        Used for isA join steps (primary-key metadata).
    aggregate:
        ``"count"`` replaces the SELECT list with a distinct count of the
        first result concept's label ("how many drugs treat fever").

    Raises :class:`NLQError` for unbound concepts and
    :class:`~repro.errors.JoinPathError` when tables cannot be connected.
    """
    if aggregate is not None and aggregate != "count":
        raise NLQError(f"unsupported aggregate {aggregate!r}")
    if not result_concepts:
        raise NLQError("a concept query needs at least one result concept")
    graph = table_join_graph(ontology, database)
    resolved_results = [ontology.concept(name) for name in result_concepts]
    resolved_filters = [ontology.concept(name) for name in filter_concepts]

    anchor = resolved_results[0]
    anchor_table = _require_table(anchor)

    joined: dict[str, str] = {anchor_table.lower(): _alias_for(anchor_table)}
    join_clauses: list[str] = []

    def ensure_joined(table: str) -> str:
        """Join ``table`` into the query if needed; return its alias."""
        low = table.lower()
        if low in joined:
            return joined[low]
        # Walk from the nearest already-joined table.
        best_steps: list[JoinStep] | None = None
        for source in joined:
            try:
                steps = find_join_path(ontology, source, table, database, graph=graph)
            except JoinPathError:
                continue  # this anchor cannot reach the table; try the next
            if best_steps is None or len(steps) < len(best_steps):
                best_steps = steps
        if best_steps is None:
            raise NLQError(
                f"cannot connect table {table!r} to the query join tree"
            )
        for step in best_steps:
            right_low = step.right_table.lower()
            if right_low in joined:
                continue
            left_alias = joined[step.left_table.lower()]
            right_alias = _alias_for(step.right_table)
            # Guard against alias collision from different tables.
            existing = set(joined.values())
            candidate = right_alias
            counter = 2
            while candidate in existing:
                candidate = f"{right_alias}{counter}"
                counter += 1
            joined[right_low] = candidate
            join_clauses.append(
                f"INNER JOIN {step.right_table} {candidate} "
                f"ON {left_alias}.{step.left_column} = "
                f"{candidate}.{step.right_column}"
            )
        return joined[low]

    # SELECT list from all result concepts.
    select_parts: list[str] = []
    select_columns: list[str] = []
    if aggregate == "count":
        anchor_alias = ensure_joined(anchor_table)
        count_column = anchor.label_column() or (
            database.table(anchor_table).schema.primary_key
            if database is not None and database.has_table(anchor_table)
            else None
        )
        if count_column is None:
            raise NLQError(
                f"concept {anchor.name!r} has no countable column"
            )
        select_parts.append(
            f"COUNT(DISTINCT {anchor_alias}.{count_column}) AS n"
        )
        select_columns.append("n")
    else:
        for concept in resolved_results:
            table = _require_table(concept)
            alias = ensure_joined(table)
            columns = display_columns(concept)
            if not columns:
                raise NLQError(
                    f"concept {concept.name!r} has no displayable columns"
                )
            for column in columns:
                select_parts.append(f"{alias}.{column}")
                select_columns.append(column)

    # WHERE clauses from filter concepts.
    where_parts: list[str] = []
    parameters: dict[str, str] = {}
    used_params: set[str] = set()
    for concept in resolved_filters:
        table = _require_table(concept)
        alias = ensure_joined(table)
        label = concept.label_column()
        if label is None:
            raise NLQError(
                f"filter concept {concept.name!r} has no label column to filter on"
            )
        if filter_values is not None:
            value = filter_values.get(concept.name)
            if value is None:
                raise NLQError(f"no filter value provided for {concept.name!r}")
            escaped = value.replace("'", "''")
            where_parts.append(f"{alias}.{label} = '{escaped}'")
        else:
            param = _param_name(concept.name, used_params)
            parameters[param] = concept.name
            where_parts.append(f"{alias}.{label} = :{param}")

    keyword = "SELECT" if aggregate == "count" else "SELECT DISTINCT"
    sql = f"{keyword} {', '.join(select_parts)} FROM {anchor_table} " + joined[
        anchor_table.lower()
    ]
    if join_clauses:
        sql += " " + " ".join(join_clauses)
    if where_parts:
        sql += " WHERE " + " AND ".join(where_parts)
    return ConceptQuery(
        sql=sql,
        parameters=parameters,
        select_columns=select_columns,
        result_concepts=[c.name for c in resolved_results],
    )
