"""Join-path discovery over the ontology's relational bindings.

The NLQ service must connect the tables of the concepts mentioned in a
query.  Every object property contributes its bound equi-join steps, and
every isA edge contributes a primary-key-to-primary-key step (a child
concept's rows are identified by parent keys).  A shortest path over the
resulting table graph yields the JOIN chain.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import JoinPathError
from repro.kb.database import Database
from repro.ontology.model import JoinStep, Ontology


def table_join_graph(ontology: Ontology, database: Database | None = None) -> nx.Graph:
    """Build an undirected graph of tables; edges carry a normalized
    :class:`JoinStep` (attribute ``step``, oriented left→right as stored)."""
    graph = nx.Graph()
    for concept in ontology.concepts():
        if concept.table:
            graph.add_node(concept.table.lower(), concept=concept.name)
    for prop in ontology.object_properties():
        for step in prop.join_path:
            graph.add_edge(
                step.left_table.lower(), step.right_table.lower(), step=step
            )
    # isA edges: child PK == parent PK (requires schema access for PK names).
    if database is not None:
        for child_name, parent_name in ontology.isa_edges():
            child = ontology.concept(child_name)
            parent = ontology.concept(parent_name)
            if not child.table or not parent.table:
                continue
            if not database.has_table(child.table) or not database.has_table(
                parent.table
            ):
                continue
            child_pk = database.table(child.table).schema.primary_key
            parent_pk = database.table(parent.table).schema.primary_key
            if child_pk is None or parent_pk is None:
                continue
            graph.add_edge(
                child.table.lower(),
                parent.table.lower(),
                step=JoinStep(child.table, child_pk, parent.table, parent_pk),
            )
    return graph


def find_join_path(
    ontology: Ontology,
    from_table: str,
    to_table: str,
    database: Database | None = None,
    graph: nx.Graph | None = None,
) -> list[JoinStep]:
    """Shortest chain of join steps from ``from_table`` to ``to_table``.

    Steps are oriented along the walk (each step's ``left_table`` is the
    table already reached).  Returns an empty list when source and target
    are the same table.  Raises :class:`JoinPathError` when no path exists.
    """
    graph = graph if graph is not None else table_join_graph(ontology, database)
    src = from_table.lower()
    dst = to_table.lower()
    if src == dst:
        return []
    if src not in graph or dst not in graph:
        raise JoinPathError(
            f"no join path: table {from_table!r} or {to_table!r} is not bound "
            "in the ontology"
        )
    try:
        node_path = nx.shortest_path(graph, src, dst)
    except nx.NetworkXNoPath:
        raise JoinPathError(
            f"no join path between {from_table!r} and {to_table!r}"
        ) from None
    steps: list[JoinStep] = []
    for left, right in zip(node_path, node_path[1:]):
        step: JoinStep = graph.edges[left, right]["step"]
        if step.left_table.lower() != left:
            step = step.reversed()
        steps.append(step)
    return steps
